"""Performance-engine benchmarks and the ``BENCH_PR1.json`` baseline.

Two uses:

* ``pytest benchmarks/bench_perf_engine.py`` — pytest-benchmark targets
  for the hot paths the fast-path engine optimizes (kernel dispatch,
  broadcast fan-out, metrics-off runs, parallel sweep parity).
* ``python benchmarks/bench_perf_engine.py`` — regenerate
  ``BENCH_PR1.json`` at the repository root: current numbers for every
  tracked metric, the frozen pre-optimization *seed* baseline measured on
  the same workloads, and the resulting speedups.  Later PRs re-run this
  to defend the perf trajectory.

The seed baseline below was measured on the unoptimized seed revision
(commit ``93e12d6``) via a git worktree, interleaved back-to-back with
the optimized tree on the same host (best of two rounds per revision, to
cancel load drift on this 1-CPU container); it is frozen here so
speedups stay comparable run-over-run.
"""

import json
import sys
import time
from pathlib import Path

import pytest

#: Pre-optimization numbers measured on the seed revision (same host,
#: same workloads as ``collect_metrics``).  Times are seconds per
#: operation; rates are per second.
SEED_BASELINE = {
    "kernel_events_per_sec": 837002.7,
    "write_op_cost_n4": 1.819164800e-04,
    "write_op_cost_n16": 7.811933550e-04,
    "write_op_cost_n32": 1.819780390e-03,
    "snapshot_op_cost_n8": 2.572122200e-03,
    "model_checker_schedules_per_sec": 1827.60,
    "sweep_serial_seconds": 9.3233,
}

#: Keys BENCH_PR1.json must carry (CI validates this set).
REQUIRED_METRICS = (
    "kernel_events_per_sec",
    "write_op_cost_n4",
    "write_op_cost_n16",
    "write_op_cost_n32",
    "snapshot_op_cost_n8",
    "model_checker_schedules_per_sec",
    "sweep_serial_seconds",
    "sweep_jobs4_seconds",
)

_SWEEP_SEEDS = (0, 1, 2, 3)


# -- measurement workloads (shared by pytest targets and the JSON writer) ----


def _best(fn, repeats=3):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def kernel_tick_workload(events=20_000):
    """The raw scheduler loop: one self-rearming timer, ``events`` firings."""
    from repro.sim.kernel import Kernel

    kernel = Kernel()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < events:
            kernel.call_later(0.001, tick)

    kernel.call_later(0.001, tick)
    kernel.run()
    return count


def measure_write_op_cost(n, ops=100, warmup=20):
    """Mean seconds per completed write on an idle n-node cluster."""
    from repro import ClusterConfig, SnapshotCluster

    cluster = SnapshotCluster(
        "ss-nonblocking", ClusterConfig(n=n, seed=0), start=False
    )
    counter = iter(range(10**9))
    for _ in range(warmup):
        cluster.write_sync(0, next(counter))
    start = time.perf_counter()
    for _ in range(ops):
        cluster.write_sync(0, next(counter))
    return (time.perf_counter() - start) / ops


def measure_snapshot_op_cost(n=8, ops=50, warmup=5):
    """Mean seconds per completed snapshot (ss-always, δ=2)."""
    from repro import ClusterConfig, SnapshotCluster

    cluster = SnapshotCluster("ss-always", ClusterConfig(n=n, seed=0, delta=2))
    cluster.write_sync(0, b"x")
    for _ in range(warmup):
        cluster.snapshot_sync(1)
    start = time.perf_counter()
    for _ in range(ops):
        cluster.snapshot_sync(1)
    return (time.perf_counter() - start) / ops


def model_checker_workload(max_runs=50):
    from repro.verify import explore_snapshot_scenario

    result = explore_snapshot_scenario(
        "dgfr-nonblocking",
        [("write", 0, "v"), ("snapshot", 1, None)],
        n=3,
        max_runs=max_runs,
        max_depth=10,
        start_loops=False,
    )
    assert result.runs == max_runs or result.exhausted
    return result


def measure_sweep(jobs):
    """Wall-clock seconds for the 4-seed E01–E15 sweep at a job count."""
    from repro.harness.experiments import EXPERIMENTS
    from repro.harness.parallel import experiment_cells, run_cells

    cells = experiment_cells(sorted(EXPERIMENTS), seeds=_SWEEP_SEEDS)
    start = time.perf_counter()
    results = run_cells(cells, jobs=jobs)
    elapsed = time.perf_counter() - start
    assert len(results) == len(cells) and all(r for r in results)
    return elapsed, results


def collect_metrics():
    """Measure every tracked metric; returns the BENCH_PR1 metrics dict."""
    metrics = {}
    events = 20_000
    metrics["kernel_events_per_sec"] = events / _best(
        lambda: kernel_tick_workload(events), repeats=5
    )
    for n in (4, 16, 32):
        metrics[f"write_op_cost_n{n}"] = min(
            measure_write_op_cost(n, ops=200 if n <= 16 else 100)
            for _ in range(2)
        )
    metrics["snapshot_op_cost_n8"] = min(
        measure_snapshot_op_cost() for _ in range(2)
    )
    metrics["model_checker_schedules_per_sec"] = 50 / _best(
        lambda: model_checker_workload(50), repeats=3
    )
    serial_elapsed, serial_rows = measure_sweep(jobs=1)
    parallel_elapsed, parallel_rows = measure_sweep(jobs=4)
    assert parallel_rows == serial_rows, "parallel sweep diverged from serial"
    metrics["sweep_serial_seconds"] = serial_elapsed
    metrics["sweep_jobs4_seconds"] = parallel_elapsed
    return metrics


# -- pytest-benchmark targets -------------------------------------------------


def test_kernel_batch_dispatch(benchmark):
    """Same-instant burst dispatch: 200 callbacks per instant, 100 instants."""
    from repro.sim.kernel import Kernel

    def run():
        kernel = Kernel()
        hits = 0

        def hit():
            nonlocal hits
            hits += 1

        for instant in range(100):
            for _ in range(200):
                kernel.call_at(float(instant), hit)
        kernel.run()
        return hits

    assert benchmark(run) == 20_000


def test_sleep_timer_pool(benchmark):
    """Timer churn: many concurrent sleepers re-arming repeatedly."""
    from repro.sim.kernel import Kernel

    def run():
        kernel = Kernel()
        wakes = 0

        async def sleeper(period):
            nonlocal wakes
            for _ in range(100):
                await kernel.sleep(period)
                wakes += 1

        async def main():
            await kernel.gather([sleeper(0.1 * (i + 1)) for i in range(20)])

        kernel.run_until_complete(main())
        return wakes

    assert benchmark(run) == 2_000


def test_broadcast_fanout_cost(benchmark):
    """Per-broadcast cost at n=32 (cached wire_size across 31 channels)."""
    from repro import ClusterConfig, SnapshotCluster

    cluster = SnapshotCluster(
        "ss-nonblocking", ClusterConfig(n=32, seed=0), start=False
    )
    counter = iter(range(10**9))

    def one_write():
        cluster.write_sync(0, next(counter))

    benchmark(one_write)


def test_metrics_disabled_run(benchmark):
    """Write cost with the collector disabled (the near-free path)."""
    from repro import ClusterConfig, SnapshotCluster

    cluster = SnapshotCluster(
        "ss-nonblocking", ClusterConfig(n=16, seed=0), start=False
    )
    cluster.metrics.disable()
    counter = iter(range(10**9))

    def one_write():
        cluster.write_sync(0, next(counter))

    benchmark(one_write)


def test_model_checker_throughput(benchmark):
    result = benchmark(model_checker_workload)
    assert result.runs == 50 or result.exhausted


@pytest.mark.slow
def test_parallel_sweep_matches_serial():
    """--jobs 4 sweep returns exactly the serial rows (determinism gate)."""
    serial_elapsed, serial_rows = measure_sweep(jobs=1)
    parallel_elapsed, parallel_rows = measure_sweep(jobs=4)
    assert parallel_rows == serial_rows


# -- BENCH_PR1.json writer ----------------------------------------------------


def write_baseline(path):
    """Measure everything and write the BENCH_PR1.json baseline file."""
    import multiprocessing
    import platform

    metrics = collect_metrics()
    speedup = {
        "kernel_events_per_sec": metrics["kernel_events_per_sec"]
        / SEED_BASELINE["kernel_events_per_sec"],
        "write_op_cost_n4": SEED_BASELINE["write_op_cost_n4"]
        / metrics["write_op_cost_n4"],
        "write_op_cost_n16": SEED_BASELINE["write_op_cost_n16"]
        / metrics["write_op_cost_n16"],
        "write_op_cost_n32": SEED_BASELINE["write_op_cost_n32"]
        / metrics["write_op_cost_n32"],
        "snapshot_op_cost_n8": SEED_BASELINE["snapshot_op_cost_n8"]
        / metrics["snapshot_op_cost_n8"],
        "model_checker_schedules_per_sec": metrics[
            "model_checker_schedules_per_sec"
        ]
        / SEED_BASELINE["model_checker_schedules_per_sec"],
        "sweep_serial_seconds": SEED_BASELINE["sweep_serial_seconds"]
        / metrics["sweep_serial_seconds"],
        "sweep_jobs4_vs_serial": metrics["sweep_serial_seconds"]
        / metrics["sweep_jobs4_seconds"],
        "sweep_jobs4_vs_seed_serial": SEED_BASELINE["sweep_serial_seconds"]
        / metrics["sweep_jobs4_seconds"],
    }
    payload = {
        "pr": 1,
        "description": (
            "Fast-path simulation engine + parallel experiment runner: "
            "current measurements, the frozen pre-optimization seed "
            "baseline, and speedups (rates: higher is better; *_cost/"
            "*_seconds: baseline/current, so >1 is faster)."
        ),
        "host": {
            "python": platform.python_version(),
            "cpu_count": multiprocessing.cpu_count(),
            "platform": platform.platform(),
        },
        "sweep": {
            "experiments": "e01-e15",
            "seeds": list(_SWEEP_SEEDS),
            "jobs_parallel": 4,
            "note": (
                "--jobs 4 wall-clock only beats serial on multi-core "
                "hosts; on a 1-CPU host (see host.cpu_count) the pool "
                "adds pure overhead, so the parity assertion (parallel "
                "rows == serial rows) is the meaningful gate there."
            ),
        },
        "metrics": {key: metrics[key] for key in REQUIRED_METRICS},
        "seed_baseline": dict(SEED_BASELINE),
        "speedup": speedup,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv):
    out = argv[1] if len(argv) > 1 else str(
        Path(__file__).resolve().parent.parent / "BENCH_PR1.json"
    )
    payload = write_baseline(out)
    print(f"wrote {out}")
    for key, value in payload["speedup"].items():
        print(f"  speedup {key}: {value:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
