"""Performance-engine benchmarks and the ``BENCH_PR1.json`` baseline.

Two uses:

* ``pytest benchmarks/bench_perf_engine.py`` — pytest-benchmark targets
  for the hot paths the fast-path engine optimizes (kernel dispatch,
  broadcast fan-out, metrics-off runs, parallel sweep parity).
* ``python benchmarks/bench_perf_engine.py`` — regenerate
  ``BENCH_PR1.json`` at the repository root: current numbers for every
  tracked metric, the frozen pre-optimization *seed* baseline measured on
  the same workloads, and the resulting speedups.  Later PRs re-run this
  to defend the perf trajectory.

The seed baseline below was measured on the unoptimized seed revision
(commit ``93e12d6``) via a git worktree, interleaved back-to-back with
the optimized tree on the same host (best of two rounds per revision, to
cancel load drift on this 1-CPU container); it is frozen here so
speedups stay comparable run-over-run.
"""

import json
import sys
import time
from pathlib import Path

import pytest

#: Pre-optimization numbers measured on the seed revision (same host,
#: same workloads as ``collect_metrics``).  Times are seconds per
#: operation; rates are per second.
SEED_BASELINE = {
    "kernel_events_per_sec": 837002.7,
    "write_op_cost_n4": 1.819164800e-04,
    "write_op_cost_n16": 7.811933550e-04,
    "write_op_cost_n32": 1.819780390e-03,
    "snapshot_op_cost_n8": 2.572122200e-03,
    "model_checker_schedules_per_sec": 1827.60,
    "sweep_serial_seconds": 9.3233,
}

#: Keys BENCH_PR1.json must carry (CI validates this set).
REQUIRED_METRICS = (
    "kernel_events_per_sec",
    "write_op_cost_n4",
    "write_op_cost_n16",
    "write_op_cost_n32",
    "snapshot_op_cost_n8",
    "model_checker_schedules_per_sec",
    "sweep_serial_seconds",
    "sweep_jobs4_seconds",
)

_SWEEP_SEEDS = (0, 1, 2, 3)


# -- measurement workloads (shared by pytest targets and the JSON writer) ----


def _best(fn, repeats=3):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def kernel_tick_workload(events=20_000, kernel=None):
    """The raw scheduler loop: one self-rearming timer, ``events`` firings."""
    from repro.sim.kernel import Kernel

    if kernel is None:
        kernel = Kernel()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < events:
            kernel.call_later(0.001, tick)

    kernel.call_later(0.001, tick)
    kernel.run()
    return count


def _pre_obs_kernel_cls():
    """A :class:`Kernel` whose ``run()`` is the pre-observability loop.

    Verbatim copy of the dispatch loop from before ``kernel.obs`` existed
    (no ``self.obs`` test, no batch accounting) — the reference the
    obs-overhead case compares against.  Kept in the benchmark rather than
    the kernel so the production code carries exactly one loop per path.
    """
    import heapq

    from repro.sim.kernel import Kernel

    heappop = heapq.heappop

    class _PreObsKernel(Kernel):
        def run(self, until_time=None, max_events=None, until=None):
            heap = self._heap
            scripted = self._scripted
            processed = 0
            try:
                while heap:
                    if until is not None and until._state != "pending":
                        return
                    when = heap[0][0]
                    if until_time is not None and when > until_time:
                        self._now = until_time
                        return
                    if scripted:
                        entry = self._pop_next()
                    else:
                        entry = heappop(heap)
                    self._now = when
                    entry[3](*entry[4])
                    processed += 1
                    if max_events is not None and processed >= max_events:
                        return
                    if not scripted:
                        while heap and heap[0][0] == when:
                            if until is not None and until._state != "pending":
                                return
                            entry = heappop(heap)
                            entry[3](*entry[4])
                            processed += 1
                            if (
                                max_events is not None
                                and processed >= max_events
                            ):
                                return
            finally:
                self._events_processed += processed

    return _PreObsKernel


def measure_obs_overhead(events=100_000, rounds=7):
    """Kernel-dispatch cost with observability *disabled* vs the pre-obs loop.

    Interleaves the two variants round by round (cancelling load drift on
    a busy host) and compares best-of-``rounds`` times.  Returns
    ``(overhead_pct, current_best, reference_best)``; the contract —
    asserted by ``test_obs_disabled_overhead`` — is that the disabled path
    pays only one ``self.obs is None`` test per ``run()`` call (the
    dispatch loop itself is the verbatim pre-obs loop), ≤ 2% of kernel
    throughput.  The default workload is sized so one round is ~50ms:
    sub-10ms rounds measure scheduler jitter, not the loop.
    """
    from repro.sim.kernel import Kernel

    pre_obs_cls = _pre_obs_kernel_cls()

    def timed(cls):
        start = time.perf_counter()
        kernel_tick_workload(events, kernel=cls())
        return time.perf_counter() - start

    # Warmup: the first dispatch of each loop pays bytecode-cache and
    # branch-predictor cold costs that would bias whichever variant the
    # measured rounds happened to run first.
    timed(Kernel)
    timed(pre_obs_cls)
    current_best = float("inf")
    reference_best = float("inf")
    for r in range(rounds):
        first, second = (
            (Kernel, pre_obs_cls) if r % 2 == 0 else (pre_obs_cls, Kernel)
        )
        a, b = timed(first), timed(second)
        cur, ref = (a, b) if first is Kernel else (b, a)
        current_best = min(current_best, cur)
        reference_best = min(reference_best, ref)
    overhead_pct = (current_best / reference_best - 1.0) * 100.0
    return overhead_pct, current_best, reference_best


def dispatch_line_events(cls, events):
    """Traced line-event count inside ``cls.run`` for a tick workload.

    Deterministic proxy for dispatch-loop cost: ``sys.settrace`` counts
    every source line the run loop executes (callback frames are not
    traced).  Two loops that execute the same lines per event cost the
    same per event, regardless of how noisy the host's wall clock is.
    """
    import sys

    target = cls.run.__code__
    count = 0

    def tracer(frame, event, arg):
        nonlocal count
        if frame.f_code is target:
            if event == "line":
                count += 1
            return tracer
        return None

    sys.settrace(tracer)
    try:
        kernel_tick_workload(events, kernel=cls())
    finally:
        sys.settrace(None)
    return count


def measure_write_op_cost(n, ops=100, warmup=20):
    """Mean seconds per completed write on an idle n-node cluster."""
    from repro import ClusterConfig, SimBackend

    cluster = SimBackend(
        "ss-nonblocking", ClusterConfig(n=n, seed=0), start=False
    )
    counter = iter(range(10**9))
    for _ in range(warmup):
        cluster.write_sync(0, next(counter))
    start = time.perf_counter()
    for _ in range(ops):
        cluster.write_sync(0, next(counter))
    return (time.perf_counter() - start) / ops


def measure_snapshot_op_cost(n=8, ops=50, warmup=5):
    """Mean seconds per completed snapshot (ss-always, δ=2)."""
    from repro import ClusterConfig, SimBackend

    cluster = SimBackend("ss-always", ClusterConfig(n=n, seed=0, delta=2))
    cluster.write_sync(0, b"x")
    for _ in range(warmup):
        cluster.snapshot_sync(1)
    start = time.perf_counter()
    for _ in range(ops):
        cluster.snapshot_sync(1)
    return (time.perf_counter() - start) / ops


def model_checker_workload(max_runs=50):
    from repro.verify import explore_snapshot_scenario

    result = explore_snapshot_scenario(
        "dgfr-nonblocking",
        [("write", 0, "v"), ("snapshot", 1, None)],
        n=3,
        max_runs=max_runs,
        max_depth=10,
        start_loops=False,
    )
    assert result.runs == max_runs or result.exhausted
    return result


def measure_sweep(jobs):
    """Wall-clock seconds for the 4-seed E01–E15 sweep at a job count."""
    from repro.harness.experiments import EXPERIMENTS
    from repro.harness.parallel import experiment_cells, run_cells

    cells = experiment_cells(sorted(EXPERIMENTS), seeds=_SWEEP_SEEDS)
    start = time.perf_counter()
    results = run_cells(cells, jobs=jobs)
    elapsed = time.perf_counter() - start
    assert len(results) == len(cells) and all(r for r in results)
    return elapsed, results


def collect_metrics():
    """Measure every tracked metric; returns the BENCH_PR1 metrics dict."""
    metrics = {}
    events = 20_000
    metrics["kernel_events_per_sec"] = events / _best(
        lambda: kernel_tick_workload(events), repeats=5
    )
    for n in (4, 16, 32):
        metrics[f"write_op_cost_n{n}"] = min(
            measure_write_op_cost(n, ops=200 if n <= 16 else 100)
            for _ in range(2)
        )
    metrics["snapshot_op_cost_n8"] = min(
        measure_snapshot_op_cost() for _ in range(2)
    )
    metrics["model_checker_schedules_per_sec"] = 50 / _best(
        lambda: model_checker_workload(50), repeats=3
    )
    serial_elapsed, serial_rows = measure_sweep(jobs=1)
    parallel_elapsed, parallel_rows = measure_sweep(jobs=4)
    assert parallel_rows == serial_rows, "parallel sweep diverged from serial"
    metrics["sweep_serial_seconds"] = serial_elapsed
    metrics["sweep_jobs4_seconds"] = parallel_elapsed
    return metrics


# -- pytest-benchmark targets -------------------------------------------------


def test_kernel_batch_dispatch(benchmark):
    """Same-instant burst dispatch: 200 callbacks per instant, 100 instants."""
    from repro.sim.kernel import Kernel

    def run():
        kernel = Kernel()
        hits = 0

        def hit():
            nonlocal hits
            hits += 1

        for instant in range(100):
            for _ in range(200):
                kernel.call_at(float(instant), hit)
        kernel.run()
        return hits

    assert benchmark(run) == 20_000


def test_sleep_timer_pool(benchmark):
    """Timer churn: many concurrent sleepers re-arming repeatedly."""
    from repro.sim.kernel import Kernel

    def run():
        kernel = Kernel()
        wakes = 0

        async def sleeper(period):
            nonlocal wakes
            for _ in range(100):
                await kernel.sleep(period)
                wakes += 1

        async def main():
            await kernel.gather([sleeper(0.1 * (i + 1)) for i in range(20)])

        kernel.run_until_complete(main())
        return wakes

    assert benchmark(run) == 2_000


def test_broadcast_fanout_cost(benchmark):
    """Per-broadcast cost at n=32 (cached wire_size across 31 channels)."""
    from repro import ClusterConfig, SimBackend

    cluster = SimBackend(
        "ss-nonblocking", ClusterConfig(n=32, seed=0), start=False
    )
    counter = iter(range(10**9))

    def one_write():
        cluster.write_sync(0, next(counter))

    benchmark(one_write)


def test_metrics_disabled_run(benchmark):
    """Write cost with the collector disabled (the near-free path)."""
    from repro import ClusterConfig, SimBackend

    cluster = SimBackend(
        "ss-nonblocking", ClusterConfig(n=16, seed=0), start=False
    )
    cluster.metrics.disable()
    counter = iter(range(10**9))

    def one_write():
        cluster.write_sync(0, next(counter))

    benchmark(one_write)


def test_model_checker_throughput(benchmark):
    result = benchmark(model_checker_workload)
    assert result.runs == 50 or result.exhausted


def test_obs_enabled_counting():
    """KernelStats attached: the tick workload is one single-event batch
    per instant, so the batch counters must track the event count exactly
    (and the first sleep-free workload never touches the timer pool)."""
    from repro.obs.observe import KernelStats
    from repro.sim.kernel import Kernel

    kernel = Kernel()
    kernel.obs = KernelStats()
    assert kernel_tick_workload(2_000, kernel=kernel) == 2_000
    assert kernel.obs.batches == 2_000
    assert kernel.obs.batch_events == 2_000
    assert kernel.obs.largest_batch == 1


def test_obs_disabled_path_is_pre_obs_loop():
    """The obs-off dispatch loop does zero extra work per event.

    Compares traced line-event counts against the verbatim pre-obs loop
    at two workload sizes: the difference must be a small constant (the
    once-per-``run()`` ``self.obs`` test), NOT grow with the event count.
    This is the deterministic form of the ≤ 2% overhead contract — it
    cannot be fooled by a noisy host clock.
    """
    from repro.sim.kernel import Kernel

    pre_obs_cls = _pre_obs_kernel_cls()
    deltas = [
        dispatch_line_events(Kernel, ev) - dispatch_line_events(pre_obs_cls, ev)
        for ev in (1_000, 2_000)
    ]
    assert deltas[0] == deltas[1], (
        f"obs-off dispatch executes {deltas[1] - deltas[0]} extra lines per "
        "1000 events vs the pre-obs loop; the disabled path must match it "
        "line for line"
    )
    assert 0 <= deltas[0] <= 4, (
        f"obs-off run() prefix costs {deltas[0]} line events; expected the "
        "single per-call `self.obs is None` test"
    )


def test_obs_disabled_hotpaths_stay_lean():
    """The per-packet and per-round obs hooks cost a guard test when off.

    The attribution layer hooks two more hot paths than the kernel loop:
    ``Process.deliver`` (one ``obs is not None`` test per arriving
    packet) and ``AckCollector.__enter__`` (one per quorum round).  This
    traces both over a seeded run with observability disabled and pins
    the executed-lines-per-call budget, so any future fattening of the
    disabled path fails structurally — no wall clock involved.
    """
    import sys as _sys

    from repro.config import scenario_config
    from repro.backend.sim import SimBackend
    from repro.net.node import Process
    from repro.net.quorum import AckCollector

    targets = {
        Process.deliver.__code__: "deliver",
        AckCollector.__enter__.__code__: "round_open",
    }
    counts = {"deliver": [0, 0], "round_open": [0, 0]}

    def tracer(frame, event, arg):
        name = targets.get(frame.f_code)
        if name is None:
            return None
        if event == "call":
            counts[name][1] += 1
        elif event == "line":
            counts[name][0] += 1
        return tracer

    cluster = SimBackend("ss-nonblocking", scenario_config(n=4, seed=0))
    assert cluster.obs is None  # no ambient session: the disabled path
    _sys.settrace(tracer)
    try:
        for i in range(6):
            cluster.write_sync(i % 4, f"w{i}".encode())
    finally:
        _sys.settrace(None)

    deliver_lines, deliver_calls = counts["deliver"]
    round_lines, round_calls = counts["round_open"]
    assert deliver_calls > 50 and round_calls == 6
    # deliver: crash test, obs guard, handler dispatch, ack-sink loop.
    assert deliver_lines / deliver_calls <= 8.0, (
        f"obs-off deliver executes {deliver_lines / deliver_calls:.2f} "
        "lines per packet; the disabled path budget is 8"
    )
    # round open: obs guard + sink registration + return.
    assert round_lines / round_calls <= 4.0, (
        f"obs-off AckCollector.__enter__ executes "
        f"{round_lines / round_calls:.2f} lines per round; budget is 4"
    )


@pytest.mark.slow
def test_obs_disabled_overhead():
    """Observability off costs ≤ 2% kernel throughput vs the pre-obs loop.

    Wall-clock backstop for ``test_obs_disabled_path_is_pre_obs_loop``.
    The container's clock jitters by several percent even on best-of
    measurements, so the structural test above is the authoritative gate;
    here we take the best of a few attempts before asserting.
    """
    overhead_pct = current_best = reference_best = None
    for _ in range(5):
        overhead_pct, current_best, reference_best = measure_obs_overhead()
        if overhead_pct <= 2.0:
            break
    assert overhead_pct <= 2.0, (
        f"obs-disabled kernel dispatch {overhead_pct:.2f}% slower than the "
        f"pre-observability loop ({current_best:.4f}s vs "
        f"{reference_best:.4f}s); the disabled path must pay only one "
        "`self.obs is None` test per run() call"
    )


@pytest.mark.slow
def test_parallel_sweep_matches_serial():
    """--jobs 4 sweep returns exactly the serial rows (determinism gate)."""
    serial_elapsed, serial_rows = measure_sweep(jobs=1)
    parallel_elapsed, parallel_rows = measure_sweep(jobs=4)
    assert parallel_rows == serial_rows


# -- BENCH_PR1.json writer ----------------------------------------------------


def write_baseline(path):
    """Measure everything and write the BENCH_PR1.json baseline file."""
    import multiprocessing
    import platform

    metrics = collect_metrics()
    speedup = {
        "kernel_events_per_sec": metrics["kernel_events_per_sec"]
        / SEED_BASELINE["kernel_events_per_sec"],
        "write_op_cost_n4": SEED_BASELINE["write_op_cost_n4"]
        / metrics["write_op_cost_n4"],
        "write_op_cost_n16": SEED_BASELINE["write_op_cost_n16"]
        / metrics["write_op_cost_n16"],
        "write_op_cost_n32": SEED_BASELINE["write_op_cost_n32"]
        / metrics["write_op_cost_n32"],
        "snapshot_op_cost_n8": SEED_BASELINE["snapshot_op_cost_n8"]
        / metrics["snapshot_op_cost_n8"],
        "model_checker_schedules_per_sec": metrics[
            "model_checker_schedules_per_sec"
        ]
        / SEED_BASELINE["model_checker_schedules_per_sec"],
        "sweep_serial_seconds": SEED_BASELINE["sweep_serial_seconds"]
        / metrics["sweep_serial_seconds"],
        "sweep_jobs4_vs_serial": metrics["sweep_serial_seconds"]
        / metrics["sweep_jobs4_seconds"],
        "sweep_jobs4_vs_seed_serial": SEED_BASELINE["sweep_serial_seconds"]
        / metrics["sweep_jobs4_seconds"],
    }
    payload = {
        "pr": 1,
        "description": (
            "Fast-path simulation engine + parallel experiment runner: "
            "current measurements, the frozen pre-optimization seed "
            "baseline, and speedups (rates: higher is better; *_cost/"
            "*_seconds: baseline/current, so >1 is faster)."
        ),
        "host": {
            "python": platform.python_version(),
            "cpu_count": multiprocessing.cpu_count(),
            "platform": platform.platform(),
        },
        "sweep": {
            "experiments": "e01-e15",
            "seeds": list(_SWEEP_SEEDS),
            "jobs_parallel": 4,
            "note": (
                "--jobs 4 wall-clock only beats serial on multi-core "
                "hosts; on a 1-CPU host (see host.cpu_count) the pool "
                "adds pure overhead, so the parity assertion (parallel "
                "rows == serial rows) is the meaningful gate there."
            ),
        },
        "metrics": {key: metrics[key] for key in REQUIRED_METRICS},
        "seed_baseline": dict(SEED_BASELINE),
        "speedup": speedup,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv):
    out = argv[1] if len(argv) > 1 else str(
        Path(__file__).resolve().parent.parent / "BENCH_PR1.json"
    )
    payload = write_baseline(out)
    print(f"wrote {out}")
    for key, value in payload["speedup"].items():
        print(f"  speedup {key}: {value:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
