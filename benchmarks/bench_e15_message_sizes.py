"""E15 (Contribution 1): message sizes — O(n·ν) operations vs O(ν) gossip.

Sweeps the object size ν and cluster size n, measuring serialized bytes
per WRITE (carries the whole register array) and per GOSSIP (carries one
entry).
"""

from conftest import run_and_report

from repro.harness.costs import e15_message_sizes


def test_e15_message_sizes(benchmark):
    rows = run_and_report(
        benchmark,
        e15_message_sizes,
        "E15 — message sizes: O(n*nu) ops vs O(nu) gossip",
    )
    by_key = {(row["n"], row["nu_bytes"]): row for row in rows}
    # Gossip is O(ν): independent of n for the same ν.
    for nu in (16, 64, 256, 1024):
        assert (
            by_key[(4, nu)]["gossip_msg_bytes"]
            == by_key[(12, nu)]["gossip_msg_bytes"]
        )
    # Write messages are O(n·ν): scale ~3x from n=4 to n=12 at large ν.
    big = 1024
    ratio = (
        by_key[(12, big)]["write_msg_bytes"]
        / by_key[(4, big)]["write_msg_bytes"]
    )
    assert 2.5 <= ratio <= 3.5
    # Both scale linearly in ν at fixed n.
    r4 = by_key[(4, 1024)]["write_msg_bytes"] / by_key[(4, 64)]["write_msg_bytes"]
    assert 10 <= r4 <= 20  # 16x nu growth, minus constant headers
