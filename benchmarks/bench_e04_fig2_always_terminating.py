"""E4 (Figure 2): Algorithm 2 uses O(n²) messages per snapshot.

Every node serves every snapshot task through its own majority query
rounds, and SNAP/END travel by reliable broadcast — the quadratic totals
the paper's Figure 2 illustrates.
"""

from conftest import run_and_report

from repro.harness.costs import e04_always_terminating_costs


def test_e04_fig2_always_terminating(benchmark):
    rows = run_and_report(
        benchmark,
        e04_always_terminating_costs,
        "E4 / Fig.2 — Algorithm 2 snapshot costs",
    )
    # Quadratic growth: doubling-ish n must grow totals superlinearly.
    first, last = rows[0], rows[-1]
    n_ratio = last["n"] / first["n"]
    assert last["total_msgs"] / first["total_msgs"] > n_ratio * 1.5
    for row in rows:
        # Query traffic alone is at least n * 2(n-1) style quadratic.
        assert row["query_msgs"] >= row["n"] * (row["n"] - 1)
