"""E10 (Contribution 2): the δ latency/communication/throughput trade-off.

Small δ: snapshots finish fast and cheap for the snapshotter but block
writers (low write rate).  Large δ: writers run free but snapshots cost
more messages and time — unboundedly at δ=∞.
"""

import math

from conftest import run_and_report

from repro.harness.latency import e10_delta_tradeoff


def test_e10_delta_tradeoff(benchmark):
    rows = run_and_report(
        benchmark,
        e10_delta_tradeoff,
        "E10 — delta trade-off: messages vs write throughput",
        rounds=1,
    )
    # Write throughput increases with delta.
    rates = [row["write_rate"] for row in rows]
    assert rates[-1] > rates[0]
    # Snapshot latency increases with delta; infinite at delta=inf.
    latencies = [row["snap_latency"] for row in rows]
    assert math.isinf(latencies[-1])
    finite = [value for value in latencies if not math.isinf(value)]
    assert finite == sorted(finite)
