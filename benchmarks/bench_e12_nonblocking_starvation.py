"""E12 (Section 3): snapshot liveness per algorithm under write load.

The non-blocking algorithms (and Algorithm 3 at δ=∞) may starve while
writes keep coming, yet complete once writes cease; the
always-terminating algorithms (and finite δ) never starve.
"""

from conftest import run_and_report

from repro.harness.latency import e12_nonblocking_starvation


def test_e12_nonblocking_starvation(benchmark):
    rows = run_and_report(
        benchmark,
        e12_nonblocking_starvation,
        "E12 — snapshot liveness under saturating writes",
        rounds=1,
    )
    outcome = {row["algorithm"]: row for row in rows}
    assert outcome["dgfr-nonblocking"]["starved_under_load"]
    assert outcome["ss-nonblocking"]["starved_under_load"]
    assert outcome["ss-always (delta=inf)"]["starved_under_load"]
    assert not outcome["ss-always (delta=4)"]["starved_under_load"]
    assert not outcome["dgfr-always"]["starved_under_load"]
    # Non-blocking: every snapshot completed once writes ceased.
    assert all(row["completed_after_writes_ceased"] for row in rows)
