"""E8 (Theorem 2): Algorithm 3 reaches a Definition-1 consistent state
within O(1) asynchronous cycles from an arbitrary state (including
corrupted pndTsk entries and vector clocks)."""

from conftest import run_and_report

from repro.harness.recovery import e08_recovery_always


def test_e08_recovery_always(benchmark):
    rows = run_and_report(
        benchmark,
        e08_recovery_always,
        "E8 / Theorem 2 — Algorithm 3 recovery cycles",
    )
    for row in rows:
        for column, value in row.items():
            if column == "n":
                continue
            assert isinstance(value, int) and value <= 6, (column, value)
