"""CI gate: BENCH_PR10.json must show the amortized-batching win.

Usage: ``python benchmarks/check_batch_series.py [path]`` (defaults to
the repository-root ``BENCH_PR10.json``).  The file is written by
``python -m repro load --batch-series`` and carries three sweeps on one
offered-rate ladder: the ``ss-nonblocking`` baseline, the ``amortized``
variant, and amortized plus a transport batch window.

Beyond structural checks (every rung linearizable and error-free, the
ladder sorted, a knee located per sweep), the gate asserts the PR 10
headline claims:

* **capacity** — the best amortized sweep saturates above
  ``CAPACITY_FLOOR`` ops per simulated time unit at n=4, and beats the
  baseline's capacity by at least ``CAPACITY_GAIN``×;
* **knee flattening** — at the top (most oversaturated) rung of the
  shared ladder, the amortized p50 stays below ``P50_CEILING`` and
  below half the baseline's p50 at that same rung.  The baseline's
  open-loop queue diverges past its knee (p50 1.9u → 230u); shared
  rounds keep the amortized pipeline's median flat.

Exits non-zero, printing one line per problem, if anything is off.
"""

import json
import sys
from pathlib import Path

#: Minimum saturated capacity (op/u) for the best amortized sweep at n=4.
CAPACITY_FLOOR = 1.5
#: Minimum capacity ratio of best amortized sweep over the baseline.
CAPACITY_GAIN = 1.5
#: Top-rung p50 ceiling (simulated time units) for the amortized sweeps.
P50_CEILING = 50.0

POINT_KEYS = (
    "backend", "algorithm", "n", "mode", "offered_rate", "submitted",
    "completed", "errors", "elapsed", "throughput", "p50", "p99",
    "linearizable",
)


def _check_point(label, point, problems):
    if not isinstance(point, dict):
        problems.append(f"{label}: point is not an object")
        return
    for key in POINT_KEYS:
        if key not in point:
            problems.append(f"{label}: point missing {key!r}")
    if point.get("linearizable") is not True:
        problems.append(f"{label}: rung at offered_rate="
                        f"{point.get('offered_rate')} not linearizable")
    if point.get("errors"):
        problems.append(f"{label}: rung at offered_rate="
                        f"{point.get('offered_rate')} had operation errors")
    throughput = point.get("throughput")
    if not isinstance(throughput, (int, float)) or throughput <= 0:
        problems.append(f"{label}: non-positive throughput")


def _check_sweep(label, sweep, problems):
    if not isinstance(sweep, dict):
        problems.append(f"{label}: sweep is not an object")
        return
    if "batch" not in sweep:
        problems.append(f"{label}: sweep missing 'batch' (window or null)")
    points = sweep.get("points")
    if not isinstance(points, list) or not points:
        problems.append(f"{label}: missing or empty 'points'")
        return
    for index, point in enumerate(points):
        _check_point(f"{label} point {index}", point, problems)
    knee = sweep.get("knee_rate")
    if not isinstance(knee, (int, float)) or knee <= 0:
        problems.append(f"{label}: no knee located (knee_rate={knee!r})")
    offers = [p.get("offered_rate") for p in points if isinstance(p, dict)]
    if offers != sorted(offers):
        problems.append(f"{label}: points not sorted by offered_rate")


def _top_p50(sweep):
    """p50 latency at the sweep's highest offered rung."""
    points = sweep.get("points") or []
    if not points:
        return None
    top = max(points, key=lambda p: p.get("offered_rate") or 0)
    return top.get("p50")


def check(path):
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        return [f"{path}: not found"]
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON ({exc})"]
    problems = []
    if payload.get("pr") != 10:
        problems.append(f"{path}: expected 'pr': 10")
    for section in ("description", "host", "headline"):
        if not payload.get(section):
            problems.append(f"{path}: missing {section!r} section")
    sweeps = payload.get("sweeps")
    if not isinstance(sweeps, list) or not sweeps:
        problems.append(f"{path}: missing or empty 'sweeps'")
        return problems
    for index, sweep in enumerate(sweeps):
        name = (
            f"{sweep.get('algorithm', '?')}/batch={sweep.get('batch')}"
            if isinstance(sweep, dict)
            else index
        )
        _check_sweep(f"{path} sweep[{name}]", sweep, problems)

    baseline = next(
        (s for s in sweeps
         if isinstance(s, dict) and s.get("algorithm") != "amortized"),
        None,
    )
    amortized = [
        s for s in sweeps
        if isinstance(s, dict) and s.get("algorithm") == "amortized"
    ]
    if baseline is None or not amortized:
        problems.append(
            f"{path}: series needs a non-amortized baseline sweep and at "
            "least one amortized sweep"
        )
        return problems

    best = max(amortized, key=lambda s: s.get("saturated_throughput") or 0)
    capacity = best.get("saturated_throughput") or 0
    base_capacity = baseline.get("saturated_throughput") or 0
    if capacity < CAPACITY_FLOOR:
        problems.append(
            f"{path}: amortized capacity {capacity} op/u below the "
            f"{CAPACITY_FLOOR} op/u floor"
        )
    if base_capacity and capacity < CAPACITY_GAIN * base_capacity:
        problems.append(
            f"{path}: amortized capacity {capacity} op/u is not "
            f"{CAPACITY_GAIN}x the baseline's {base_capacity} op/u"
        )
    base_p50 = _top_p50(baseline)
    for sweep in amortized:
        p50 = _top_p50(sweep)
        label = f"amortized/batch={sweep.get('batch')}"
        if not isinstance(p50, (int, float)):
            problems.append(f"{path}: {label} has no top-rung p50")
            continue
        if p50 > P50_CEILING:
            problems.append(
                f"{path}: {label} top-rung p50 {p50}u exceeds the "
                f"{P50_CEILING}u knee-flattening ceiling"
            )
        if isinstance(base_p50, (int, float)) and p50 > base_p50 / 2:
            problems.append(
                f"{path}: {label} top-rung p50 {p50}u is not below half "
                f"the baseline's {base_p50}u — the knee did not flatten"
            )
    return problems


def main(argv):
    default = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"
    path = argv[1] if len(argv) > 1 else str(default)
    problems = check(path)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    payload = json.loads(Path(path).read_text())
    sweeps = payload["sweeps"]
    rungs = sum(len(s["points"]) for s in sweeps)
    headline = payload["headline"]
    print(
        f"{path}: ok ({len(sweeps)} sweeps, {rungs} rungs, capacity "
        f"{headline['saturated_throughput']} op/u via "
        f"{headline['algorithm']}/batch={headline['batch']})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
