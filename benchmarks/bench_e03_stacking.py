"""E3 (related work): stacked ABD+scan vs DGFR non-stacking snapshot.

Paper claim (via Delporte-Gallet et al.): stacking the shared-memory
snapshot on the ABD register emulation costs ≈8n messages over 4 round
trips per snapshot, versus 2n messages over a single round trip for the
non-stacking approach — a 4× message ratio.
"""

from conftest import run_and_report

from repro.harness.costs import e03_stacking_comparison


def test_e03_stacking(benchmark):
    rows = run_and_report(
        benchmark,
        e03_stacking_comparison,
        "E3 — stacked (8n, 4RT) vs DGFR (2n, 1RT)",
    )
    for row in rows:
        assert row["stacked_rtts"] == 4
        assert row["dgfr_rtts"] == 1
        assert 3.0 <= row["ratio"] <= 5.0  # ~4x
