"""E1 (Figure 1, upper): DGFR non-blocking per-operation costs.

Paper claim: each write and each uncontended snapshot completes in one
round trip of ≈2n messages (2(n−1) over the wire; the self-loopback is
free), each of O(n·ν) bits.
"""

from conftest import run_and_report

from repro.harness.costs import e01_nonblocking_op_costs


def test_e01_fig1_messages(benchmark):
    rows = run_and_report(
        benchmark,
        e01_nonblocking_op_costs,
        "E1 / Fig.1 upper — DGFR non-blocking per-op costs",
    )
    for row in rows:
        assert row["write_msgs"] == row["theory_2(n-1)"]
        assert row["snapshot_msgs"] == row["theory_2(n-1)"]
        assert row["write_rtts"] == 1
        assert row["snapshot_rtts"] == 1
