"""Ablation benchmarks A1–A4: robustness of the reproduced results.

Each sweeps a design knob or the seed space and asserts the conclusion
survives the sweep (see :mod:`repro.harness.ablations`).
"""

from conftest import run_and_report

from repro.harness.ablations import (
    a1_recovery_seed_sweep,
    a2_gossip_interval_ablation,
    a3_loss_retransmission_cost,
    a4_delta_latency_distribution,
)


def test_a1_recovery_seed_sweep(benchmark):
    rows = run_and_report(
        benchmark,
        a1_recovery_seed_sweep,
        "A1 — recovery cycles across 20 seeds",
        rounds=1,
    )
    for row in rows:
        assert row["max"] <= 6  # O(1) distributionally, not just on average
        assert row["p95"] <= 4


def test_a2_gossip_interval(benchmark):
    rows = run_and_report(
        benchmark,
        a2_gossip_interval_ablation,
        "A2 — gossip-interval ablation",
        rounds=1,
    )
    # Cycles stay bounded regardless of loop period…
    assert all(row["recovery_cycles_max"] <= 6 for row in rows)
    # …while wall-clock recovery scales with the period.
    assert rows[-1]["recovery_time_mean"] > rows[0]["recovery_time_mean"]


def test_a3_loss_retransmission(benchmark):
    rows = run_and_report(
        benchmark,
        a3_loss_retransmission_cost,
        "A3 — retransmission inflation under loss",
        rounds=1,
    )
    lossless = rows[0]
    assert lossless["inflation"] == 1.0  # exactly 2(n-1) with no loss
    heavy = rows[-1]
    assert heavy["write_msgs_max"] > lossless["write_msgs_max"]


def test_a4_delta_latency_distribution(benchmark):
    rows = run_and_report(
        benchmark,
        a4_delta_latency_distribution,
        "A4 — snapshot latency percentiles vs delta",
        rounds=1,
    )
    p95 = [row["latency_p95"] for row in rows]
    assert p95 == sorted(p95)  # grows with delta
    for row in rows:
        assert row["latency_max"] <= 6.0 * (row["delta"] + 2)


def test_a5_recovery_flatness(benchmark):
    from repro.harness.ablations import a5_recovery_flatness_in_n

    rows = run_and_report(
        benchmark,
        a5_recovery_flatness_in_n,
        "A5 — recovery cycles vs n: regression slope",
        rounds=1,
    )
    row = rows[0]
    assert row["flat"], row  # slope indistinguishable from growth-free
    assert row["max_cycles"] <= 6
