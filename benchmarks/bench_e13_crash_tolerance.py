"""E13 (fault model): crash tolerance at the 2f < n bound.

Operations terminate iff a majority survives; safety (linearizability of
the completed history) holds regardless of how many nodes crash.
"""

from conftest import run_and_report

from repro.harness.faults import e13_crash_tolerance


def test_e13_crash_tolerance(benchmark):
    rows = run_and_report(
        benchmark,
        e13_crash_tolerance,
        "E13 — crash tolerance at the 2f < n bound",
        rounds=1,
    )
    for row in rows:
        assert row["ops_terminate"] == row["majority_alive"], row
        assert row["history_safe"], row
