"""E2 (Figure 1, lower / Contribution 1): self-stabilizing gossip overhead.

Paper claim: the SS variant adds O(n²) gossip messages of O(ν) bits per
asynchronous cycle, while per-operation costs stay those of the baseline.
"""

from conftest import run_and_report

from repro.harness.costs import e02_gossip_overhead


def test_e02_gossip_overhead(benchmark):
    rows = run_and_report(
        benchmark,
        e02_gossip_overhead,
        "E2 / Fig.1 lower — SS gossip overhead",
    )
    for row in rows:
        n = row["n"]
        # n(n-1) gossip messages per cycle (±1 cycle-boundary slack).
        assert abs(row["gossip_msgs_per_cycle"] - n * (n - 1)) <= n * (n - 1) * 0.4
        # Gossip payload is O(ν): much smaller than a write payload and
        # independent of n; write payload grows with n.
        assert row["gossip_bytes_each"] < row["write_bytes_each"]
        # Operation cost unchanged vs the baseline's 2(n-1).
        assert row["write_msgs"] == 2 * (n - 1)
