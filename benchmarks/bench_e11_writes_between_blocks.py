"""E11 (Contribution 2): ≥δ writes between consecutive blocking periods.

The δ-counting guarantees helpers only engage after observing δ writes
concurrent with a snapshot task, so between two helping (write-blocking)
episodes at least δ write operations complete.
"""

from conftest import run_and_report

from repro.harness.latency import e11_writes_between_blocks


def test_e11_writes_between_blocks(benchmark):
    rows = run_and_report(
        benchmark,
        e11_writes_between_blocks,
        "E11 — writes between blocking periods (delta=6)",
        rounds=1,
    )
    assert rows, "no blocking episodes observed"
    for row in rows:
        assert row["claim_met"], row
