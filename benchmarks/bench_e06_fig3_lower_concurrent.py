"""E6 (Figure 3, lower): all-nodes-concurrent snapshot invocations.

Paper claim: Algorithm 2 serves one task at a time at O(n²) messages
each; Algorithm 3's many-jobs stealing batches all concurrent tasks, so
total messages (and effective throughput) improve with n.
"""

from conftest import run_and_report

from repro.harness.costs import e06_concurrent_snapshots


def test_e06_fig3_lower_concurrent(benchmark):
    rows = run_and_report(
        benchmark,
        e06_concurrent_snapshots,
        "E6 / Fig.3 lower — concurrent snapshots, Alg 2 vs Alg 3",
    )
    for row in rows:
        assert row["alg3_msgs"] < row["alg2_msgs"]
    # The advantage grows with n.
    assert rows[-1]["msg_ratio"] >= rows[0]["msg_ratio"]
