"""CI gate: consensus-backed reset recovery no worse than coordinator.

ROADMAP item 5 replaced the bounded variants' fixed-coordinator reset
commit (the paper's sketch) with a decision on the self-stabilizing
consensus layer. The consensus path must not regress recovery speed in
the healthy case — the case the legacy sketch was actually good at.
This gate re-runs the E7/E8 recovery drills (the same deterministic
cells recorded in EXPERIMENTS.md) at a small n in *both* reset modes
and asserts, per corruption class:

* the ``bounded+consensus`` cell recovered at all (an integer cycle
  count, not the ``>CAP`` marker), within ``MAX_CONSENSUS_CYCLES``;
* it is no more than ``TOLERANCE`` asynchronous cycles slower than the
  ``bounded+coordinator`` cell — consensus adds at most one decision
  round trip to a reset, so anything beyond that is a regression.

A coordinator cell that failed to recover cannot bound the consensus
cell (the crash-liveness cases where consensus is strictly better are
E20's subject, not this gate's).

Usage: ``python benchmarks/check_recovery_series.py [--n N] [--seed S]``
"""

import argparse
import sys

#: Consensus may cost at most this many extra cycles per recovery.
TOLERANCE = 2

#: Absolute ceiling for any consensus-mode recovery (the paper's O(1)
#: claim with the decision round trip included; tests pin the same
#: bound).
MAX_CONSENSUS_CYCLES = 8


def _cells(row):
    """The corruption-class cycle cells of an E7/E8 row."""
    return {
        key: value
        for key, value in row.items()
        if key not in ("variant", "n", "detections")
    }


def _by_variant(rows, n):
    return {
        row["variant"]: row for row in rows if row["n"] == n
    }


def check_experiment(label, rows, n):
    problems = []
    variants = _by_variant(rows, n)
    for wanted in ("bounded+consensus", "bounded+coordinator"):
        if wanted not in variants:
            problems.append(f"{label}: missing variant {wanted!r}")
    if problems:
        return problems
    consensus = _cells(variants["bounded+consensus"])
    coordinator = _cells(variants["bounded+coordinator"])
    for name, cycles in consensus.items():
        if not isinstance(cycles, int):
            problems.append(
                f"{label}/{name}: consensus-mode recovery did not "
                f"complete ({cycles})"
            )
            continue
        if cycles > MAX_CONSENSUS_CYCLES:
            problems.append(
                f"{label}/{name}: consensus-mode recovery took {cycles} "
                f"cycles (> {MAX_CONSENSUS_CYCLES})"
            )
        baseline = coordinator.get(name)
        if isinstance(baseline, int) and cycles > baseline + TOLERANCE:
            problems.append(
                f"{label}/{name}: consensus {cycles} cycles vs "
                f"coordinator {baseline} (tolerance +{TOLERANCE})"
            )
    return problems


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv[1:])

    from repro.harness.recovery import (
        e07_recovery_nonblocking,
        e08_recovery_always,
    )

    problems = []
    summaries = []
    for label, runner in (
        ("E07", e07_recovery_nonblocking),
        ("E08", e08_recovery_always),
    ):
        rows = runner(n_values=(args.n,), seed=args.seed)
        problems.extend(check_experiment(label, rows, args.n))
        consensus = _cells(_by_variant(rows, args.n)["bounded+consensus"])
        summaries.append(
            f"{label} n={args.n}: "
            + ", ".join(f"{k}={v}" for k, v in consensus.items())
        )
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    for summary in summaries:
        print(summary)
    print(
        "recovery gate ok: consensus-backed reset within "
        f"+{TOLERANCE} cycles of the coordinator baseline, all cells "
        f"<= {MAX_CONSENSUS_CYCLES} cycles"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
