"""Shared helpers for the benchmark suite.

Each ``bench_eXX_*.py`` regenerates one experiment from DESIGN.md §4:
it benchmarks the experiment runner, prints the measured table (run
pytest with ``-s`` to see it), and asserts the paper's qualitative claim
so the benchmarks double as reproduction regression checks.
"""

from repro.harness.report import format_table


def run_and_report(benchmark, runner, title, rounds=3, **kwargs):
    """Benchmark ``runner`` and print its result table."""
    rows = benchmark.pedantic(
        lambda: runner(**kwargs), rounds=rounds, iterations=1
    )
    print()
    print(format_table(rows, title=title))
    return rows
