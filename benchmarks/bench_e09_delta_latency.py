"""E9 (Theorem 3): snapshot termination within O(δ) cycles under load.

Saturating writers plus one snapshot; latency (in asynchronous cycles)
must stay bounded by a small multiple of δ+1 and grow at most linearly.
"""

from conftest import run_and_report

from repro.harness.latency import e09_delta_latency


def test_e09_delta_latency(benchmark):
    rows = run_and_report(
        benchmark,
        e09_delta_latency,
        "E9 / Theorem 3 — snapshot latency under load vs delta",
    )
    for row in rows:
        # O(δ): latency ≤ c·(δ+1) with a small constant.
        assert row["latency_cycles"] <= 4 * (row["delta"] + 1)
    # All finite: the snapshot always terminated.
    assert all(row["latency_time"] < 1000 for row in rows)
