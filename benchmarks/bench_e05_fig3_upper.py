"""E5 (Figure 3, upper): Algorithm 3 snapshot messages vs δ.

Paper claim: with large δ an uncontended snapshot costs O(n) messages
(Algorithm 1-like); with δ=0 every node helps (Algorithm 2-like, O(n²));
either way it undercuts Algorithm 2's reliable-broadcast-heavy totals.
"""

from conftest import run_and_report

from repro.harness.costs import e05_delta_snapshot_costs


def test_e05_fig3_upper(benchmark):
    rows = run_and_report(
        benchmark,
        e05_delta_snapshot_costs,
        "E5 / Fig.3 upper — Algorithm 3 snapshot messages vs delta",
    )
    for row in rows:
        n = row["n"]
        # δ=∞: O(n) — a single query round plus one SAVE round.
        assert row["dinf_msgs"] <= 6 * n
        # δ=0 engages helpers: strictly more traffic than δ=∞.
        assert row["d0_msgs"] > row["dinf_msgs"]
        # And still cheaper than Algorithm 2 for the same task.
        assert row["alg2_msgs"] > row["d0_msgs"]
    # δ=∞ grows linearly; δ=0 superlinearly.
    first, last = rows[0], rows[-1]
    n_ratio = last["n"] / first["n"]
    assert last["dinf_msgs"] / first["dinf_msgs"] <= n_ratio * 1.5
    assert last["d0_msgs"] / first["d0_msgs"] > n_ratio * 1.2
