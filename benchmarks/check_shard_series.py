"""CI gate: BENCH_PR8.json must carry a well-formed, scaling K-series.

Usage: ``python benchmarks/check_shard_series.py [path]`` (defaults to
the repository-root ``BENCH_PR8.json``).  Exits non-zero if the file is
missing, malformed, records a non-linearizable rung, fails to scale
monotonically in K, or misses the headline acceptance bar (K=8 must
reach >= 5x the recorded single-cluster BENCH_PR5 capacity).
"""

import json
import sys
from pathlib import Path

ROW_KEYS = (
    "backend", "algorithm", "n", "shards", "epoch", "mode", "skew",
    "offered_rate", "submitted", "completed", "errors", "elapsed",
    "throughput", "p50", "p99", "imbalance", "composes",
    "fenced_composes", "linearizable", "speedup_vs_k1",
    "vs_pr5_capacity",
)

HEADLINE_KEYS = (
    "backend", "algorithm", "n", "max_shards", "k1_throughput",
    "max_throughput", "speedup_vs_k1", "vs_pr5_capacity",
    "linearizable",
)

#: The acceptance bar: the K=8 rung must beat the single-cluster
#: capacity by at least this factor (near-linear scaling leaves slack
#: for composed-cut and routing overhead).
MIN_VS_PR5 = 5.0

#: Each doubling of K must gain at least this factor — strictly
#: increasing, but tolerant of measurement noise at the top rung.
MIN_STEP_GAIN = 1.05


def _check_row(label, row, problems):
    if not isinstance(row, dict):
        problems.append(f"{label}: row is not an object")
        return
    for key in ROW_KEYS:
        if key not in row:
            problems.append(f"{label}: row missing {key!r}")
    if row.get("linearizable") is not True:
        problems.append(f"{label}: K={row.get('shards')} rung not "
                        "linearizable")
    if row.get("errors"):
        problems.append(f"{label}: K={row.get('shards')} rung had "
                        "operation errors")
    throughput = row.get("throughput")
    if not isinstance(throughput, (int, float)) or throughput <= 0:
        problems.append(f"{label}: non-positive throughput")
    composes = row.get("composes")
    if not isinstance(composes, int) or composes < 1:
        problems.append(f"{label}: no composed cuts taken "
                        f"(composes={composes!r})")
    p50, p99 = row.get("p50"), row.get("p99")
    if isinstance(p50, (int, float)) and isinstance(p99, (int, float)):
        if p99 < p50:
            problems.append(f"{label}: p99 < p50 ({p99} < {p50})")
    imbalance = row.get("imbalance")
    if imbalance is not None and not (
        isinstance(imbalance, (int, float)) and imbalance >= 1.0
    ):
        problems.append(f"{label}: imbalance {imbalance!r} below 1.0")


def _check_series(label, series, problems):
    ks = [row.get("shards") for row in series if isinstance(row, dict)]
    if ks != sorted(ks) or len(set(ks)) != len(ks):
        problems.append(f"{label}: shard counts not strictly increasing "
                        f"({ks})")
    if ks and ks[0] != 1:
        problems.append(f"{label}: series must start at K=1 (got {ks})")
    rows = [row for row in series if isinstance(row, dict)]
    for earlier, later in zip(rows, rows[1:]):
        t0, t1 = earlier.get("throughput"), later.get("throughput")
        if not isinstance(t0, (int, float)) or not isinstance(
            t1, (int, float)
        ):
            continue
        if t1 < t0 * MIN_STEP_GAIN:
            problems.append(
                f"{label}: throughput not scaling K={earlier.get('shards')}"
                f"->K={later.get('shards')} ({t0} -> {t1}, need "
                f">= {MIN_STEP_GAIN}x)")


def _check_headline(label, headline, series, problems):
    if not isinstance(headline, dict):
        problems.append(f"{label}: missing 'headline' section")
        return
    for key in HEADLINE_KEYS:
        if key not in headline:
            problems.append(f"{label}: headline missing {key!r}")
    if headline.get("linearizable") is not True:
        problems.append(f"{label}: headline not linearizable")
    vs_pr5 = headline.get("vs_pr5_capacity")
    if not isinstance(vs_pr5, (int, float)) or vs_pr5 < MIN_VS_PR5:
        problems.append(
            f"{label}: headline vs_pr5_capacity {vs_pr5!r} below the "
            f"{MIN_VS_PR5}x acceptance bar")
    rows = [row for row in series if isinstance(row, dict)]
    if rows:
        last = rows[-1]
        if headline.get("max_shards") != last.get("shards"):
            problems.append(
                f"{label}: headline max_shards "
                f"{headline.get('max_shards')!r} != last series rung "
                f"K={last.get('shards')!r}")
        if headline.get("max_throughput") != last.get("throughput"):
            problems.append(
                f"{label}: headline max_throughput "
                f"{headline.get('max_throughput')!r} != last rung "
                f"throughput {last.get('throughput')!r}")


def check(path):
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        return [f"{path}: not found"]
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON ({exc})"]
    problems = []
    if payload.get("pr") != 8:
        problems.append(f"{path}: expected 'pr': 8")
    for section in ("description", "host"):
        if not payload.get(section):
            problems.append(f"{path}: missing {section!r} section")
    baseline = payload.get("baseline")
    if not isinstance(baseline, dict) or not isinstance(
        baseline.get("k1_capacity"), (int, float)
    ):
        problems.append(f"{path}: missing baseline.k1_capacity")
    series = payload.get("series")
    if not isinstance(series, list) or not series:
        problems.append(f"{path}: missing or empty 'series'")
        return problems
    for index, row in enumerate(series):
        _check_row(f"{path} series[{index}]", row, problems)
    _check_series(path, series, problems)
    _check_headline(path, payload.get("headline"), series, problems)
    return problems


def main(argv):
    default = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"
    path = argv[1] if len(argv) > 1 else str(default)
    problems = check(path)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    payload = json.loads(Path(path).read_text())
    headline = payload["headline"]
    print(f"{path}: ok ({len(payload['series'])} rungs, "
          f"K={headline['max_shards']} at {headline['max_throughput']} "
          f"op/u = {headline['vs_pr5_capacity']}x the PR5 capacity, "
          "all linearizable)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
