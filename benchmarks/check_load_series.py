"""CI gate: BENCH_PR5.json must carry a well-formed, linearizable sweep.

Usage: ``python benchmarks/check_load_series.py [path]`` (defaults to
the repository-root ``BENCH_PR5.json``).  Exits non-zero if the file is
missing, malformed, lacks a sweep with a located knee, or records a
non-linearizable rung.
"""

import json
import sys
from pathlib import Path

POINT_KEYS = (
    "backend", "algorithm", "n", "mode", "offered_rate", "submitted",
    "completed", "errors", "elapsed", "throughput", "p50", "p99",
    "slowest_node", "blame_share", "dominant_phase",
    "linearizable",
)


def _check_point(label, point, problems):
    if not isinstance(point, dict):
        problems.append(f"{label}: point is not an object")
        return
    for key in POINT_KEYS:
        if key not in point:
            problems.append(f"{label}: point missing {key!r}")
    if point.get("linearizable") is not True:
        problems.append(f"{label}: rung at offered_rate="
                        f"{point.get('offered_rate')} not linearizable")
    if point.get("errors"):
        problems.append(f"{label}: rung at offered_rate="
                        f"{point.get('offered_rate')} had operation errors")
    throughput = point.get("throughput")
    if not isinstance(throughput, (int, float)) or throughput <= 0:
        problems.append(f"{label}: non-positive throughput")
    p50, p99 = point.get("p50"), point.get("p99")
    if isinstance(p50, (int, float)) and isinstance(p99, (int, float)):
        if p99 < p50:
            problems.append(f"{label}: p99 < p50 ({p99} < {p50})")
    share = point.get("blame_share")
    if share is not None and not (
        isinstance(share, (int, float)) and 0.0 <= share <= 1.0
    ):
        problems.append(f"{label}: blame_share {share!r} outside [0, 1]")


def _check_sweep(label, sweep, problems):
    if not isinstance(sweep, dict):
        problems.append(f"{label}: sweep is not an object")
        return
    points = sweep.get("points")
    if not isinstance(points, list) or not points:
        problems.append(f"{label}: missing or empty 'points'")
        return
    for index, point in enumerate(points):
        _check_point(f"{label} point {index}", point, problems)
    knee = sweep.get("knee_rate")
    if not isinstance(knee, (int, float)) or knee <= 0:
        problems.append(f"{label}: no knee located (knee_rate={knee!r}) — "
                        "the offered-rate ladder never kept up; widen it")
    saturated = sweep.get("saturated_throughput")
    if not isinstance(saturated, (int, float)) or saturated <= 0:
        problems.append(f"{label}: non-positive saturated_throughput")
    offers = [p.get("offered_rate") for p in points if isinstance(p, dict)]
    if offers != sorted(offers):
        problems.append(f"{label}: points not sorted by offered_rate")


def check(path):
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        return [f"{path}: not found"]
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON ({exc})"]
    problems = []
    if payload.get("pr") != 5:
        problems.append(f"{path}: expected 'pr': 5")
    for section in ("description", "host"):
        if not payload.get(section):
            problems.append(f"{path}: missing {section!r} section")
    sweeps = payload.get("sweeps")
    if not isinstance(sweeps, list) or not sweeps:
        problems.append(f"{path}: missing or empty 'sweeps'")
        return problems
    for index, sweep in enumerate(sweeps):
        backend = sweep.get("backend", index) if isinstance(sweep, dict) else index
        _check_sweep(f"{path} sweep[{backend}]", sweep, problems)
    headline = payload.get("headline")
    if not isinstance(headline, dict):
        problems.append(f"{path}: missing 'headline' section")
    return problems


def main(argv):
    default = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"
    path = argv[1] if len(argv) > 1 else str(default)
    problems = check(path)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    payload = json.loads(Path(path).read_text())
    sweeps = payload["sweeps"]
    rungs = sum(len(s["points"]) for s in sweeps)
    print(f"{path}: ok ({len(sweeps)} sweep(s), {rungs} rungs, "
          f"knee at {sweeps[0]['knee_rate']} op/u)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
