"""E14 (Section 5): bounded counters with consensus-based global reset.

With a tiny MAXINT, sustained writes must trigger repeated global
resets; register values survive, epochs agree, and only a bounded number
of operations abort per reset (the paper's seldom-fairness criteria).
"""

from conftest import run_and_report

from repro.harness.recovery import e14_bounded_reset


def test_e14_bounded_reset(benchmark):
    rows = run_and_report(
        benchmark,
        e14_bounded_reset,
        "E14 — bounded counters + global reset (MAXINT=10)",
    )
    row = rows[0]
    assert row["resets"] >= 1
    assert row["values_survive"]
    assert row["epochs_agree"]
    # Bounded aborts: a handful per reset, not per operation.
    assert row["writes_aborted"] <= 4 * row["resets"] + 2
    assert row["writes_ok"] >= 100
