"""CI gate: a ``--trace-out`` file must be a well-formed Chrome trace.

Usage: ``python benchmarks/check_trace_schema.py trace.json``.  Validates
the structure :func:`repro.obs.export.chrome_trace` promises — the same
contract the Perfetto UI relies on:

* a ``traceEvents`` list whose every event carries a known phase (``M``
  metadata, ``X`` complete slices, ``s``/``f`` flow arrows, ``i``
  instants) with that phase's required fields;
* per-node tracks: ``process_name`` and ``thread_name`` metadata, plus a
  ``run`` track per cluster;
* operation spans: ``X`` slices of category ``op`` with span arguments
  (``op_id``, ``status``) and non-negative durations;
* flow-arrow pairing: every finish (``f``) id matches some start (``s``);
* tail-latency attribution: op slices carrying an ``attribution`` arg
  name a slowest responder, a dominant phase, and at least one round;
* transport batching: op slices carrying a ``batching`` arg report at
  least one bundle, and at least as many bundled messages as bundles
  (present only when the run used ``--batch`` > 1);
* health records: ``otherData.health`` entries carry one classified
  node dict per node, with a known state and its matching state code.

Exits non-zero, printing one line per problem, if anything is off.
``tests/test_obs_export.py`` imports :func:`validate` as its golden
structure check, so the CI step and the test suite enforce one schema.
"""

import json
import sys
from pathlib import Path

_KNOWN_PHASES = {"M", "X", "s", "f", "i"}
_METADATA_NAMES = {"process_name", "thread_name"}
_HEALTH_STATES = {"healthy": 0, "limping": 1, "crashed": 2, "corrupt-suspect": 3}
_ATTRIBUTION_KEYS = {
    "slowest_responder",
    "slowest_latency",
    "completer",
    "dominant_phase",
    "rounds",
}
_NODE_HEALTH_KEYS = {
    "node",
    "state",
    "state_code",
    "service_ewma",
    "replies",
    "silence",
    "retransmit_rate",
    "queue_depth",
    "detections",
}


def _check_attribution(where, attribution, problems):
    """Validate one op slice's ``attribution`` argument."""
    if not isinstance(attribution, dict):
        problems.append(f"{where}: attribution is not an object")
        return
    missing = _ATTRIBUTION_KEYS - attribution.keys()
    if missing:
        problems.append(f"{where}: attribution missing {sorted(missing)}")
        return
    if not isinstance(attribution["rounds"], int) or attribution["rounds"] < 1:
        problems.append(
            f"{where}: attribution rounds {attribution['rounds']!r}"
        )
    latency = attribution["slowest_latency"]
    if not isinstance(latency, (int, float)) or latency < 0:
        problems.append(f"{where}: bad slowest_latency {latency!r}")
    if not isinstance(attribution["dominant_phase"], str):
        problems.append(
            f"{where}: bad dominant_phase {attribution['dominant_phase']!r}"
        )


def _check_batching(where, batching, problems):
    """Validate one op slice's ``batching`` argument."""
    if not isinstance(batching, dict):
        problems.append(f"{where}: batching is not an object")
        return
    missing = {"bundles", "messages"} - batching.keys()
    if missing:
        problems.append(f"{where}: batching missing {sorted(missing)}")
        return
    bundles, messages = batching["bundles"], batching["messages"]
    if not isinstance(bundles, int) or bundles < 1:
        problems.append(f"{where}: batching bundles {bundles!r}")
        return
    if not isinstance(messages, int) or messages < bundles:
        # Singletons bypass the batcher, so every reported bundle
        # carried at least one message — usually more.
        problems.append(
            f"{where}: batching messages {messages!r} < bundles {bundles}"
        )


def _check_health(records, problems):
    """Validate the ``otherData.health`` per-cluster node classifications."""
    if not isinstance(records, list):
        problems.append("otherData.health is not a list")
        return
    for entry in records:
        if not isinstance(entry, dict) or "cluster" not in entry:
            problems.append("health record missing cluster index")
            continue
        where = f"health[cluster={entry['cluster']}]"
        nodes = entry.get("nodes")
        if not isinstance(nodes, list) or not nodes:
            problems.append(f"{where}: missing node classifications")
            continue
        for health in nodes:
            if not isinstance(health, dict):
                problems.append(f"{where}: node entry is not an object")
                continue
            missing = _NODE_HEALTH_KEYS - health.keys()
            if missing:
                problems.append(f"{where}: node missing {sorted(missing)}")
                continue
            state = health["state"]
            if state not in _HEALTH_STATES:
                problems.append(f"{where}: unknown state {state!r}")
            elif health["state_code"] != _HEALTH_STATES[state]:
                problems.append(
                    f"{where}: state_code {health['state_code']!r} does not "
                    f"encode {state!r}"
                )


def _check_event(index, event, problems):
    """Validate one trace event; append problems in place."""
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        problems.append(f"{where}: not an object")
        return None
    phase = event.get("ph")
    if phase not in _KNOWN_PHASES:
        problems.append(f"{where}: unknown phase {phase!r}")
        return None
    if phase == "M":
        if event.get("name") not in _METADATA_NAMES:
            problems.append(f"{where}: metadata name {event.get('name')!r}")
        if not isinstance(event.get("args", {}).get("name"), str):
            problems.append(f"{where}: metadata missing args.name")
    else:
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
    if phase != "M" or "pid" in event:
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: bad pid {event.get('pid')!r}")
    if phase == "X":
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(f"{where}: bad dur {dur!r}")
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: X slice missing name")
        if event.get("cat") == "op":
            args = event.get("args", {})
            if "op_id" not in args or "status" not in args:
                problems.append(f"{where}: op slice missing op_id/status args")
            if "attribution" in args:
                _check_attribution(where, args["attribution"], problems)
            if "batching" in args:
                _check_batching(where, args["batching"], problems)
    if phase in ("s", "f"):
        if "id" not in event:
            problems.append(f"{where}: flow event missing id")
        if phase == "f" and event.get("bp") != "e":
            problems.append(f"{where}: flow finish must carry bp='e'")
    return phase


def validate(payload):
    """Validate a Chrome-trace payload; return a list of problem strings."""
    problems = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["missing or empty 'traceEvents' list"]
    if "displayTimeUnit" not in payload:
        problems.append("missing 'displayTimeUnit'")
    process_names = set()
    thread_names = set()
    run_tracks = set()
    op_slices = 0
    flow_starts = set()
    flow_finishes = set()
    for index, event in enumerate(events):
        phase = _check_event(index, event, problems)
        if phase == "M":
            if event.get("name") == "process_name":
                process_names.add(event.get("pid"))
            else:
                thread_names.add((event.get("pid"), event.get("tid")))
        elif phase == "X":
            if event.get("cat") == "run":
                run_tracks.add(event.get("pid"))
            elif event.get("cat") == "op":
                op_slices += 1
        elif phase == "s":
            flow_starts.add(event.get("id"))
        elif phase == "f":
            flow_finishes.add(event.get("id"))
    if not process_names:
        problems.append("no process_name metadata (per-cluster tracks)")
    if not thread_names:
        problems.append("no thread_name metadata (per-node tracks)")
    for pid in sorted(process_names):
        if not any(track_pid == pid for track_pid, _tid in thread_names):
            problems.append(f"cluster pid={pid} has no node tracks")
    if not run_tracks:
        problems.append("no run-level root slice (cat='run')")
    unmatched = flow_finishes - flow_starts
    if unmatched:
        problems.append(
            f"{len(unmatched)} flow finish(es) without a matching start"
        )
    other = payload.get("otherData", {})
    if isinstance(other, dict) and "health" in other:
        _check_health(other["health"], problems)
    return problems


def main(argv):
    if len(argv) < 2:
        print("usage: check_trace_schema.py TRACE.json", file=sys.stderr)
        return 2
    path = argv[1]
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        print(f"{path}: not found", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"{path}: invalid JSON ({exc})", file=sys.stderr)
        return 1
    problems = validate(payload)
    if problems:
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        return 1
    events = payload["traceEvents"]
    phases = sorted({event.get("ph") for event in events})
    print(f"{path}: ok ({len(events)} events, phases {phases})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
