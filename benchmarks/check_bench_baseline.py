"""CI gate: BENCH_PR1.json must parse and carry every tracked metric.

Usage: ``python benchmarks/check_bench_baseline.py [path]`` (defaults to
the repository-root ``BENCH_PR1.json``).  Exits non-zero if the file is
missing, malformed, or lacks a required metric key.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_perf_engine import REQUIRED_METRICS  # noqa: E402


def check(path):
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        return [f"{path}: not found"]
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON ({exc})"]
    problems = []
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        return [f"{path}: missing 'metrics' object"]
    for key in REQUIRED_METRICS:
        value = metrics.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(f"{path}: metric {key!r} missing or non-positive")
    for section in ("seed_baseline", "speedup", "host"):
        if not isinstance(payload.get(section), dict):
            problems.append(f"{path}: missing {section!r} section")
    return problems


def main(argv):
    default = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"
    path = argv[1] if len(argv) > 1 else str(default)
    problems = check(path)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    print(f"{path}: ok ({len(REQUIRED_METRICS)} metrics present)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
