"""Performance benchmarks of the library itself (not paper claims).

How fast is the substrate?  These numbers bound experiment turnaround:
kernel event throughput, per-operation simulation cost vs cluster size,
and model-checker schedules/second.
"""

import pytest

from repro import ClusterConfig, SimBackend
from repro.sim.kernel import Kernel


def test_kernel_event_throughput(benchmark):
    """Raw scheduler throughput: timer events per second."""

    def run():
        kernel = Kernel()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                kernel.call_later(0.001, tick)

        kernel.call_later(0.001, tick)
        kernel.run()
        return count

    assert benchmark(run) == 20_000


@pytest.mark.parametrize("n", [4, 16, 32])
def test_write_operation_cost(benchmark, n):
    """Simulated write cost vs cluster size (message fan-out dominates)."""
    cluster = SimBackend(
        "ss-nonblocking", ClusterConfig(n=n, seed=0), start=False
    )
    counter = iter(range(10**9))

    def one_write():
        cluster.write_sync(0, next(counter))

    benchmark(one_write)


def test_snapshot_operation_cost(benchmark):
    cluster = SimBackend(
        "ss-always", ClusterConfig(n=8, seed=0, delta=2)
    )
    cluster.write_sync(0, b"x")

    def one_snapshot():
        cluster.snapshot_sync(1)

    benchmark(one_snapshot)


def test_model_checker_schedules_per_second(benchmark):
    from repro.verify import explore_snapshot_scenario

    def run():
        return explore_snapshot_scenario(
            "dgfr-nonblocking",
            [("write", 0, "v"), ("snapshot", 1, None)],
            n=3,
            max_runs=50,
            max_depth=10,
            start_loops=False,
        )

    result = benchmark(run)
    assert result.runs == 50 or result.exhausted
