"""E7 (Theorem 1): Algorithm 1 recovers within O(1) asynchronous cycles.

Arbitrary corruption of ts/ssn/registers/channels; the measured
cycles-to-consistency must be a small constant, flat in n.
"""

from conftest import run_and_report

from repro.harness.recovery import e07_recovery_nonblocking


def test_e07_recovery_nonblocking(benchmark):
    rows = run_and_report(
        benchmark,
        e07_recovery_nonblocking,
        "E7 / Theorem 1 — Algorithm 1 recovery cycles",
    )
    for row in rows:
        for column, value in row.items():
            if column == "n":
                continue
            assert isinstance(value, int) and value <= 6, (column, value)
    # Flat in n: largest n no worse than smallest + 2.
    worst_small = max(v for k, v in rows[0].items() if k != "n")
    worst_large = max(v for k, v in rows[-1].items() if k != "n")
    assert worst_large <= worst_small + 2
