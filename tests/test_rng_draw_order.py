"""Freezes the channel's RNG draw order.

Every channel shares one seeded RNG (per network fabric), so the *order*
and *count* of draws is part of the deterministic schedule: skipping or
reordering a draw in a hot-path refactor silently changes every seeded
run after that point.  These tests pin the contract documented on
:class:`repro.net.channel.Channel`:

* a blocked send draws nothing;
* an unblocked send draws loss first;
* a surviving packet draws its delay only if it fits under the capacity
  bound (the capacity decision precedes — and on drop, consumes — no
  draw);
* the duplication draw follows the first enqueue, and a duplicate that
  fires draws its own delay under the same capacity rule.
"""

from repro.config import ChannelConfig
from repro.net.channel import Channel
from repro.sim.kernel import Kernel


class DrawRecorder:
    """Duck-typed stand-in for ``random.Random`` that logs every draw."""

    def __init__(self, random_values=()):
        self.calls = []
        self._values = list(random_values)

    def random(self):
        self.calls.append("random")
        return self._values.pop(0) if self._values else 0.99

    def uniform(self, low, high):
        self.calls.append("uniform")
        return low


def make_channel(rng, **config_kwargs):
    kernel = Kernel()
    return Channel(
        kernel,
        rng,
        ChannelConfig(**config_kwargs),
        src=0,
        dst=1,
        deliver=lambda s, d, m: None,
    )


class Packet:
    KIND = "PKT"


class TestDrawOrder:
    def test_blocked_send_draws_nothing(self):
        rng = DrawRecorder()
        channel = make_channel(rng)
        channel.blocked = True
        channel.send(Packet())
        assert rng.calls == []

    def test_plain_send_draws_loss_delay_duplication(self):
        rng = DrawRecorder()
        channel = make_channel(rng)
        channel.send(Packet())
        assert rng.calls == ["random", "uniform", "random"]

    def test_lost_packet_draws_only_loss(self):
        rng = DrawRecorder(random_values=[0.0])  # below loss threshold
        channel = make_channel(rng, loss_probability=0.5)
        channel.send(Packet())
        assert rng.calls == ["random"]

    def test_duplicated_packet_draws_second_delay(self):
        # loss survives (0.9), duplication fires (0.0).
        rng = DrawRecorder(random_values=[0.9, 0.0])
        channel = make_channel(rng, duplication_probability=0.5)
        channel.send(Packet())
        assert rng.calls == ["random", "uniform", "random", "uniform"]

    def test_capacity_drop_consumes_no_delay_draw(self):
        rng = DrawRecorder()
        channel = make_channel(rng, capacity=1)
        channel.send(Packet())  # fills the channel
        rng.calls.clear()
        channel.send(Packet())  # capacity drop: loss + dup draws only
        assert rng.calls == ["random", "random"]

    def test_duplicate_over_capacity_skips_its_delay_draw(self):
        # Capacity 1: the original enqueues, the duplicate is dropped at
        # the capacity bound, so only one delay draw happens.
        rng = DrawRecorder(random_values=[0.9, 0.0])
        channel = make_channel(rng, capacity=1, duplication_probability=0.5)
        channel.send(Packet())
        assert rng.calls == ["random", "uniform", "random"]

    def test_loss_and_duplication_draws_happen_even_at_zero_probability(self):
        # The draws must NOT be skipped when the probabilities are 0.0:
        # all channels share one RNG, so eliding a draw would shift every
        # subsequent delay in the run and change the seeded schedule.
        rng = DrawRecorder()
        channel = make_channel(
            rng, loss_probability=0.0, duplication_probability=0.0
        )
        channel.send(Packet())
        assert rng.calls.count("random") == 2
