"""Unit tests for history recording, metrics, and message sizing."""

import pytest

from repro.analysis.history import SNAPSHOT, WRITE, HistoryRecorder
from repro.analysis.metrics import MetricsCollector
from repro.core.base import SnapshotResult, WriteMessage
from repro.core.register import RegisterArray, TimestampedValue
from repro.errors import HistoryError
from repro.net.message import HEADER_BYTES, INT_BYTES, measure_size


class TestHistoryRecorder:
    def test_invoke_respond_roundtrip(self):
        history = HistoryRecorder()
        op = history.invoke(0, WRITE, b"v", now=1.0)
        history.respond(op, result=1, now=2.0)
        record = history.records()[0]
        assert record.completed
        assert record.invoked_at == 1.0
        assert record.responded_at == 2.0
        assert record.result == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(HistoryError):
            HistoryRecorder().invoke(0, "read")

    def test_respond_unknown_op(self):
        with pytest.raises(HistoryError):
            HistoryRecorder().respond(99)

    def test_double_respond_rejected(self):
        history = HistoryRecorder()
        op = history.invoke(0, WRITE)
        history.respond(op)
        with pytest.raises(HistoryError):
            history.respond(op)

    def test_annotate(self):
        history = HistoryRecorder()
        op = history.invoke(0, SNAPSHOT)
        history.annotate(op, rounds=2)
        assert history.records()[0].meta["rounds"] == 2
        with pytest.raises(HistoryError):
            history.annotate(123, x=1)

    def test_filters(self):
        history = HistoryRecorder()
        w = history.invoke(0, WRITE, b"v")
        history.invoke(1, SNAPSHOT)
        history.respond(w, result=1)
        assert len(history.writes()) == 1
        assert len(history.snapshots()) == 1
        assert len(history.writes(completed_only=True)) == 1
        assert len(history.snapshots(completed_only=True)) == 0
        assert len(history.pending()) == 1
        assert len(history) == 2

    def test_precedes(self):
        history = HistoryRecorder()
        a = history.invoke(0, WRITE, now=0.0)
        history.respond(a, now=1.0)
        b = history.invoke(1, WRITE, now=2.0)
        history.respond(b, now=3.0)
        records = history.records()
        assert records[0].precedes(records[1])
        assert not records[1].precedes(records[0])

    def test_well_formedness_catches_overlap(self):
        history = HistoryRecorder()
        a = history.invoke(0, WRITE, now=0.0)
        history.invoke(0, WRITE, now=1.0)  # overlaps with a
        history.respond(a, now=2.0)
        with pytest.raises(HistoryError):
            history.validate_well_formed()

    def test_well_formedness_accepts_sequential(self):
        history = HistoryRecorder()
        a = history.invoke(0, WRITE, now=0.0)
        history.respond(a, now=1.0)
        b = history.invoke(0, SNAPSHOT, now=2.0)
        history.respond(b, now=3.0)
        history.validate_well_formed()


class TestMetricsCollector:
    def test_record_and_snapshot(self):
        metrics = MetricsCollector()
        metrics.record_send(0, 1, "WRITE", 100)
        metrics.record_send(0, 2, "WRITE", 100)
        metrics.record_send(1, 0, "GOSSIP", 10)
        stats = metrics.snapshot()
        assert stats.total_messages == 3
        assert stats.messages("WRITE") == 2
        assert stats.bytes_for("GOSSIP") == 10
        assert stats.total_bytes == 210

    def test_window_measures_delta(self):
        metrics = MetricsCollector()
        metrics.record_send(0, 1, "WRITE", 50)
        with metrics.window() as window:
            metrics.record_send(0, 1, "SNAPSHOT", 70)
            metrics.record_send(0, 1, "SNAPSHOT", 70)
        assert window.stats.messages("SNAPSHOT") == 2
        assert window.stats.messages("WRITE") == 0
        assert window.stats.total_bytes == 140

    def test_per_sender_counts(self):
        metrics = MetricsCollector()
        metrics.record_send(3, 1, "WRITE", 10)
        metrics.record_send(3, 2, "GOSSIP", 10)
        assert metrics.sender_messages(3) == 2
        assert metrics.sender_messages(3, "WRITE") == 1
        assert metrics.sender_messages(1) == 0

    def test_failure_counters(self):
        metrics = MetricsCollector()
        metrics.record_loss()
        metrics.record_capacity_drop()
        metrics.record_duplication()
        stats = metrics.snapshot()
        assert (stats.dropped_loss, stats.dropped_capacity, stats.duplicated) == (
            1,
            1,
            1,
        )

    def test_record_send_disabled_is_a_no_op(self):
        metrics = MetricsCollector()
        metrics.record_send(0, 1, "WRITE", 100)
        metrics.disable()
        metrics.record_send(0, 1, "WRITE", 100)
        metrics.record_send(2, 1, "GOSSIP", 10)
        assert metrics.snapshot().total_messages == 1
        assert metrics.sender_messages(0) == 1
        assert metrics.sender_messages(2) == 0
        metrics.enable()
        metrics.record_send(2, 1, "GOSSIP", 10)
        assert metrics.sender_messages(2) == 1

    def test_sender_totals_match_per_kind_sums(self):
        metrics = MetricsCollector()
        for _ in range(3):
            metrics.record_send(5, 1, "WRITE", 10)
        for _ in range(2):
            metrics.record_send(5, 2, "GOSSIP", 10)
        metrics.record_send(6, 5, "WRITE", 10)
        # The no-kind total is kept as a running per-sender counter (O(1)
        # to read); it must agree with summing the per-kind breakdown.
        assert metrics.sender_messages(5) == 5
        assert metrics.sender_messages(5) == sum(
            metrics.sender_messages(5, kind) for kind in ("WRITE", "GOSSIP")
        )
        assert metrics.sender_messages(6) == 1

    def test_window_stats_before_close_raises(self):
        from repro.errors import ObservabilityError

        metrics = MetricsCollector()
        with metrics.window() as window:
            assert not window.closed
            with pytest.raises(ObservabilityError, match="before the window"):
                window.stats
        assert window.closed
        assert window.stats.total_messages == 0


class TestMessageSizing:
    def test_primitives(self):
        assert measure_size(None) == 1
        assert measure_size(True) == 1
        assert measure_size(7) == INT_BYTES
        assert measure_size(1.5) == 8
        assert measure_size(b"abcd") == 4
        assert measure_size("héllo") == len("héllo".encode())

    def test_register_types(self):
        entry = TimestampedValue(1, b"xy")
        assert measure_size(entry) == INT_BYTES + 2
        reg = RegisterArray([entry, TimestampedValue(0, None)])
        assert measure_size(reg) == (INT_BYTES + 2) + (INT_BYTES + 1)

    def test_containers(self):
        assert measure_size([1, 2]) == 2 * INT_BYTES
        assert measure_size({1: b"ab"}) == INT_BYTES + 2

    def test_message_wire_size_includes_header(self):
        reg = RegisterArray(3)
        message = WriteMessage(reg=reg)
        assert message.wire_size() == HEADER_BYTES + measure_size(reg)
        assert message.kind == "WRITE"

    def test_gossip_smaller_than_write_payload(self):
        """The O(ν) vs O(n·ν) contrast the paper claims (Contribution 1)."""
        from repro.core.ss_nonblocking import GossipMessage

        n, nu = 10, 64
        reg = RegisterArray(
            [TimestampedValue(1, bytes(nu)) for _ in range(n)]
        )
        write = WriteMessage(reg=reg)
        gossip = GossipMessage(entry=reg[0])
        assert gossip.wire_size() < write.wire_size() / (n / 2)

    def test_snapshot_result(self):
        reg = RegisterArray(2)
        reg[0] = TimestampedValue(3, "x")
        result = SnapshotResult.from_registers(reg)
        assert result.values == ("x", None)
        assert result.vector_clock == (3, 0)
        assert len(result) == 2
