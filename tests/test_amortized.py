"""Behaviour of the ``amortized`` variant (Garg et al.-style batching).

Concurrent local operations share quorum rounds: a group-commit write
round installs every pending write with one broadcast, and a shared scan
round resolves every pending snapshot together.  The variant inherits
Algorithm 1's merge/gossip recovery unchanged, so it keeps the
self-stabilization claim — the fuzz executor corrupts it like any other
``ss-`` algorithm.
"""

import pytest

from repro import ClusterConfig, SimBackend
from repro.analysis.linearizability import check_snapshot_history
from repro.config import ChannelConfig
from repro.core.amortized import AmortizedSnapshot
from repro.core.cluster import ALGORITHMS


def make(n=4, seed=0, **kwargs):
    return SimBackend("amortized", ClusterConfig(n=n, seed=seed, **kwargs))


class TestRegistration:
    def test_registered_in_algorithms(self):
        assert ALGORITHMS["amortized"] is AmortizedSnapshot

    def test_claims_self_stabilization_and_concurrent_clients(self):
        assert AmortizedSnapshot.SELF_STABILIZING
        assert AmortizedSnapshot.CONCURRENT_CLIENTS


class TestBasicSemantics:
    def test_write_then_snapshot(self):
        cluster = make()
        assert cluster.write_sync(0, "hello") == 1
        result = cluster.snapshot_sync(1)
        assert result.values[0] == "hello"

    def test_sequential_writes_get_increasing_timestamps(self):
        cluster = make()
        for expected in (1, 2, 3):
            assert cluster.write_sync(2, f"v{expected}") == expected


class TestGroupCommit:
    def test_concurrent_writes_all_get_distinct_timestamps(self):
        cluster = make(seed=3)

        async def workload():
            tasks = [cluster.write(0, f"w{i}") for i in range(8)]
            return await cluster.kernel.gather(tasks)

        timestamps = cluster.run_until(workload())
        assert sorted(timestamps) == list(range(1, 9))
        # Only the batch's final value is installed and observable.
        final = cluster.snapshot_sync(1)
        assert final.values[0] == f"w{timestamps.index(8)}"

    def test_concurrent_writes_share_broadcast_rounds(self):
        """8 pipelined writes cost far fewer WRITE messages than 8 serial."""

        def write_messages(cluster):
            return cluster.metrics.snapshot().messages_by_kind.get("WRITE", 0)

        serial = make(seed=5)
        for i in range(8):
            serial.write_sync(0, f"w{i}")

        batched = make(seed=5)

        async def workload():
            await batched.kernel.gather(
                [batched.write(0, f"w{i}") for i in range(8)]
            )

        batched.run_until(workload())
        assert write_messages(batched) < write_messages(serial) / 2

    def test_concurrent_scans_share_query_rounds(self):
        cluster = make(seed=7)
        cluster.write_sync(0, "x")
        node = cluster.node(1)
        ssn_before = node.ssn

        async def workload():
            tasks = [cluster.snapshot(1) for _ in range(6)]
            return await cluster.kernel.gather(tasks)

        results = cluster.run_until(workload())
        assert all(r.values == results[0].values for r in results)
        # One shared scan round (plus at most one confirming re-run)
        # serves the whole batch — not one round per scan.
        assert node.ssn - ssn_before < 6


class TestRestartSafety:
    def test_detectable_restart_does_not_wedge_the_node(self):
        """``initialize_state`` re-runs on restart; the op queues survive
        in ``__init__`` so later operations still find a working engine."""
        cluster = make(seed=11)
        cluster.write_sync(0, "before")
        cluster.crash(0)
        cluster.resume(0, restart=True)

        async def after_recovery():
            # Give gossip its absorption window so the restarted node's
            # ts recovers before the next write (standard ss behaviour).
            await cluster.tracker.wait_cycles(4)
            ts = await cluster.write(0, "after")
            assert ts > 1
            return await cluster.snapshot(2)

        result = cluster.run_until(after_recovery())
        assert result.values[0] == "after"


class TestLinearizability:
    def test_concurrent_mixed_workload_under_loss_is_linearizable(self):
        cluster = make(
            n=4,
            seed=13,
            channel=ChannelConfig(
                loss_probability=0.1, duplication_probability=0.05
            ),
        )

        async def workload():
            tasks = []
            for node in range(4):
                for i in range(3):
                    tasks.append(cluster.write(node, f"n{node}w{i}"))
                tasks.append(cluster.snapshot(node))
            await cluster.kernel.gather(tasks)

        cluster.run_until(workload())
        cluster.history.validate_well_formed(sequential=False)
        report = check_snapshot_history(cluster.history.records(), 4)
        assert report.ok, report.summary()

    def test_history_rejects_sequential_validation(self):
        """The backend flags concurrent clients so the load driver skips
        the per-node overlap check — overlap is the whole point here."""
        cluster = make(seed=17)
        assert cluster.concurrent_clients

        async def workload():
            await cluster.kernel.gather(
                [cluster.write(0, f"w{i}") for i in range(4)]
            )

        cluster.run_until(workload())
        cluster.history.validate_well_formed(sequential=False)  # passes


class TestFuzzRegressionSeeds:
    """Pinned generated seeds that exercise batching + corruption bursts.

    Seeds 0 and 3 both draw ``batch_window=8`` with channel loss, and
    their event programs include corruption bursts.  Both must stay
    green — they are the checked-in regression evidence that the
    amortized engine survives the fuzz event mix.
    """

    @pytest.mark.parametrize("seed", [0, 3])
    def test_pinned_seed_runs_clean(self, seed):
        from repro.fuzz import generate_spec, run_spec

        spec = generate_spec(seed, algorithm="amortized", events=25)
        assert spec.batch_window == 8
        outcome = run_spec(spec)
        assert outcome.ok, outcome.failures
