"""Tests for message tracing, space-time rendering, and figure generation."""

from repro import ClusterConfig, SimBackend
from repro.analysis.spacetime import render_spacetime
from repro.analysis.trace import MessageTrace, TraceEvent
from repro.harness.figures import FIGURES, render_figure


def traced_cluster(algorithm="dgfr-nonblocking", n=3, seed=0):
    cluster = SimBackend(algorithm, ClusterConfig(n=n, seed=seed))
    trace = MessageTrace(cluster.network)
    return cluster, trace


class TestMessageTrace:
    def test_records_sends_and_deliveries(self):
        cluster, trace = traced_cluster()
        cluster.write_sync(0, "x")
        assert len(trace.sends("WRITE")) == 2  # n-1 peers
        assert len(trace.deliveries("WRITE")) >= 1
        assert "WRITEack" in trace.kinds()

    def test_loopback_not_traced(self):
        cluster, trace = traced_cluster()
        cluster.write_sync(0, "x")
        assert all(e.src != e.dst for e in trace.events if e.event != "mark")

    def test_marks_interleave_chronologically(self):
        cluster, trace = traced_cluster()
        trace.mark(0, "begin", cluster.kernel.now)
        cluster.write_sync(0, "x")
        trace.mark(0, "end", cluster.kernel.now)
        ordered = list(trace)
        assert ordered[0].kind == "begin"
        assert ordered[-1].kind == "end"

    def test_detach_stops_recording(self):
        cluster, trace = traced_cluster()
        cluster.write_sync(0, "x")
        count = len(trace)
        trace.detach()
        cluster.write_sync(1, "y")
        assert len(trace) == count

    def test_between_window(self):
        cluster, trace = traced_cluster()
        cluster.write_sync(0, "x")
        mid = cluster.kernel.now
        cluster.write_sync(1, "y")
        early = trace.between(0.0, mid)
        assert len(early) < len(trace)
        assert all(e.time <= mid for e in early.events)

    def test_filtered(self):
        cluster, trace = traced_cluster()
        cluster.write_sync(0, "x")
        only_acks = trace.filtered(lambda e: e.kind == "WRITEack")
        assert only_acks.kinds() <= {"WRITEack"}


class TestSpacetimeRendering:
    def test_renders_arrows_and_labels(self):
        trace = MessageTrace()
        trace.events = [
            TraceEvent("send", 1.0, 0, 2, "WRITE"),
            TraceEvent("send", 2.0, 2, 0, "WRITEack"),
        ]
        diagram = render_spacetime(trace, n=3)
        assert "●" in diagram and "▶" in diagram and "◀" in diagram
        assert "WRITE" in diagram
        assert "p0" in diagram and "p2" in diagram

    def test_marks_render_as_brackets(self):
        trace = MessageTrace()
        trace.mark(1, "write(v)", 0.5)
        diagram = render_spacetime(trace, n=3)
        assert "[write(v)]" in diagram

    def test_truncation_notes_elided_events(self):
        trace = MessageTrace()
        trace.events = [
            TraceEvent("send", float(i), 0, 1, "GOSSIP") for i in range(100)
        ]
        diagram = render_spacetime(trace, n=2, max_rows=10)
        assert "elided" in diagram
        assert diagram.count("GOSSIP") <= 11

    def test_deliveries_hidden_by_default(self):
        trace = MessageTrace()
        trace.events = [
            TraceEvent("send", 1.0, 0, 1, "PING"),
            TraceEvent("deliver", 2.0, 0, 1, "PING"),
        ]
        assert render_spacetime(trace, n=2).count("PING") == 1
        assert (
            render_spacetime(trace, n=2, include_deliveries=True).count("PING")
            == 2
        )

    def test_title_included(self):
        diagram = render_spacetime(MessageTrace(), n=2, title="My Figure")
        assert diagram.startswith("My Figure")


class TestRecordedTraceRendering:
    """Render diagrams from traces recorded off a live cluster's network.

    The synthetic tests above pin row geometry; these pin the integration:
    a :class:`MessageTrace` attached to a real network produces a
    renderable diagram whose rows reflect what the run actually did.
    """

    def test_write_round_renders_request_and_ack_arrows(self):
        cluster, trace = traced_cluster()
        trace.mark(0, "write(x)", cluster.kernel.now)
        cluster.write_sync(0, "x")
        trace.detach()
        diagram = render_spacetime(trace, n=3, title="one write")
        assert diagram.startswith("one write")
        assert "[write(x)]" in diagram
        assert "WRITE" in diagram and "WRITEack" in diagram
        # Both broadcast legs leave p0's lane: at least two arrow rows.
        assert diagram.count("●") >= 2

    def test_mark_row_precedes_traffic_rows(self):
        cluster, trace = traced_cluster()
        trace.mark(0, "begin", cluster.kernel.now)
        cluster.write_sync(0, "x")
        trace.detach()
        diagram = render_spacetime(trace, n=3)
        assert diagram.index("[begin]") < diagram.index("WRITE")

    def test_deliver_rows_use_dotted_prefix(self):
        cluster, trace = traced_cluster()
        cluster.write_sync(0, "x")
        trace.detach()
        diagram = render_spacetime(trace, n=3, include_deliveries=True)
        deliver_rows = [line for line in diagram.splitlines() if "…" in line]
        assert len(deliver_rows) == len(trace.deliveries())
        assert all("●" in row for row in deliver_rows)

    def test_gossip_traffic_appears_for_ss_variant(self):
        cluster, trace = traced_cluster(algorithm="ss-nonblocking")
        cluster.write_sync(0, "x")
        cluster.run_for(3.0)
        trace.detach()
        assert "GOSSIP" in render_spacetime(trace, n=3, max_rows=200)

    def test_between_window_renders_only_first_operation(self):
        cluster, trace = traced_cluster()
        cluster.write_sync(0, "x")
        cutoff = cluster.kernel.now
        cluster.snapshot_sync(1)
        trace.detach()
        # The snapshot's first sends happen exactly at ``cutoff`` (the
        # window is inclusive), so stop the window just short of it.
        early = render_spacetime(trace.between(0.0, cutoff - 1e-9), n=3)
        assert "WRITE" in early
        assert "SNAPSHOT" not in early
        full = render_spacetime(trace, n=3, max_rows=200)
        assert "SNAPSHOT" in full

    def test_rows_are_time_sorted_even_with_late_marks(self):
        cluster, trace = traced_cluster()
        cluster.write_sync(0, "x")
        trace.detach()
        trace.mark(0, "early", 0.0)  # inserted after recording, dated first
        diagram = render_spacetime(trace, n=3)
        lines = diagram.splitlines()
        times = [
            float(line[:7]) for line in lines[2:] if line[:7].strip()
        ]
        assert times == sorted(times)
        assert "[early]" in diagram


class TestPaperFigures:
    def test_all_figures_render(self):
        for name in FIGURES:
            diagram = render_figure(name)
            assert "time" in diagram
            assert "●" in diagram

    def test_fig1_upper_shows_three_operations(self):
        diagram = render_figure("fig1-upper")
        assert diagram.count("[write(v1)]") == 1
        assert diagram.count("[snapshot()]") == 1
        assert diagram.count("[write(v2)]") == 1
        assert "GOSSIP" not in diagram  # baseline has no gossip

    def test_fig1_lower_shows_gossip_lanes(self):
        assert "GOSSIP" in render_figure("fig1-lower")

    def test_fig2_heavier_than_fig3_upper(self):
        """Algorithm 2's diagram carries many more arrows (O(n²) + RB)."""
        fig2_rows = render_figure("fig2").count("●")
        fig3_rows = render_figure("fig3-upper").count("●")
        # fig2 is truncated at max_rows; count its elided note too.
        assert fig2_rows >= fig3_rows

    def test_fig3_lower_marks_all_initiators(self):
        diagram = render_figure("fig3-lower")
        assert diagram.count("[snapshot()]") == 4
