"""Tests for JSON export/import of histories and traces."""

import pytest

from repro import ClusterConfig, SimBackend
from repro.analysis.export import (
    history_from_json,
    history_to_json,
    trace_from_json,
    trace_to_json,
)
from repro.analysis.linearizability import check_snapshot_history
from repro.analysis.spacetime import render_spacetime
from repro.analysis.trace import MessageTrace
from repro.errors import HistoryError


def run_cluster():
    cluster = SimBackend("ss-nonblocking", ClusterConfig(n=3, seed=0))
    trace = MessageTrace(cluster.network)
    cluster.write_sync(0, b"binary\x00value")
    cluster.write_sync(1, ("tuple", 2))
    cluster.snapshot_sync(2)
    return cluster, trace


class TestHistoryExport:
    def test_round_trip_preserves_checkability(self):
        cluster, _ = run_cluster()
        data = history_to_json(cluster.history, indent=2)
        records = history_from_json(data)
        assert len(records) == len(cluster.history.records())
        report = check_snapshot_history(records, 3)
        assert report.ok, report.summary()

    def test_values_round_trip(self):
        cluster, _ = run_cluster()
        records = history_from_json(history_to_json(cluster.history))
        writes = [r for r in records if r.kind == "write"]
        assert writes[0].argument == b"binary\x00value"
        assert writes[1].argument == ("tuple", 2)
        snaps = [r for r in records if r.kind == "snapshot"]
        assert snaps[0].result.values[0] == b"binary\x00value"
        assert snaps[0].result.vector_clock == (1, 1, 0)

    def test_aborted_flag_preserved(self):
        cluster, _ = run_cluster()
        op = cluster.history.invoke(0, "write", "x", now=99.0)
        cluster.history.abort(op, now=100.0)
        records = history_from_json(history_to_json(cluster.history))
        assert records[-1].aborted

    def test_malformed_json_rejected(self):
        with pytest.raises(HistoryError):
            history_from_json("{not json")


class TestTraceExport:
    def test_round_trip_renders_identically(self):
        _, trace = run_cluster()
        rebuilt = trace_from_json(trace_to_json(trace))
        assert len(rebuilt) == len(trace)
        assert render_spacetime(rebuilt, 3) == render_spacetime(trace, 3)

    def test_kinds_preserved(self):
        _, trace = run_cluster()
        rebuilt = trace_from_json(trace_to_json(trace))
        assert rebuilt.kinds() == trace.kinds()
