"""Stateful property testing: random operation/fault interleavings.

A hypothesis ``RuleBasedStateMachine`` drives an arbitrary sequence of
writes, snapshots, crashes, resumes, detectable restarts, and settle
periods against a cluster, checking after every step that the recorded
history remains linearizable.  This explores interaction sequences none
of the hand-written scenarios cover.
"""

import pytest
from hypothesis import HealthCheck, settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro import ClusterConfig, SimBackend
from repro.analysis.linearizability import check_snapshot_history

N = 4


class SnapshotObjectMachine(RuleBasedStateMachine):
    """Random single-threaded driver of a simulated cluster."""

    def __init__(self):
        super().__init__()
        self.cluster = None
        self.write_counter = 0

    @initialize(
        algorithm=st.sampled_from(
            ["dgfr-nonblocking", "ss-nonblocking", "ss-always"]
        ),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def setup(self, algorithm, seed):
        self.cluster = SimBackend(
            algorithm, ClusterConfig(n=N, seed=seed, delta=1)
        )

    # -- helpers -----------------------------------------------------------

    def _alive(self):
        return self.cluster.alive_nodes()

    def _majority_alive(self):
        return len(self._alive()) >= self.cluster.config.majority

    # -- rules -------------------------------------------------------------

    @precondition(lambda self: self.cluster and self._majority_alive())
    @rule(node=st.integers(min_value=0, max_value=N - 1))
    def write(self, node):
        if self.cluster.node(node).crashed:
            return
        self.write_counter += 1
        self.cluster.write_sync(node, f"v{self.write_counter}", max_events=None)

    @precondition(lambda self: self.cluster and self._majority_alive())
    @rule(node=st.integers(min_value=0, max_value=N - 1))
    def snapshot(self, node):
        if self.cluster.node(node).crashed:
            return
        self.cluster.snapshot_sync(node, max_events=None)

    @precondition(lambda self: self.cluster)
    @rule(node=st.integers(min_value=0, max_value=N - 1))
    def crash(self, node):
        # Keep a majority alive so operations stay live.
        alive = self._alive()
        if node in alive and len(alive) > self.cluster.config.majority:
            self.cluster.crash(node)

    @precondition(lambda self: self.cluster)
    @rule(
        node=st.integers(min_value=0, max_value=N - 1),
        restart=st.booleans(),
    )
    def resume(self, node, restart):
        if self.cluster.node(node).crashed:
            self.cluster.resume(node, restart=restart)

    @precondition(lambda self: self.cluster)
    @rule(cycles=st.integers(min_value=1, max_value=3))
    def settle(self, cycles):
        if self._alive():
            self.cluster.run_until(
                self.cluster.settle_cycles(cycles), max_events=None
            )

    # -- invariant ------------------------------------------------------------

    @invariant()
    def history_linearizable(self):
        if self.cluster is None:
            return
        report = check_snapshot_history(
            self.cluster.history.records(), N
        )
        assert report.ok, report.summary()


TestSnapshotObjectMachine = pytest.mark.slow(
    SnapshotObjectMachine.TestCase
)
SnapshotObjectMachine.TestCase.settings = settings(
    max_examples=15,
    stateful_step_count=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
