"""Shared pytest setup: make sibling test modules importable.

Some test modules import helpers from others (e.g. the fuzz e2e test
reuses ``test_verify``'s deliberately broken quorum algorithm); putting
this directory on ``sys.path`` keeps those imports working under every
pytest invocation style.
"""

import sys
from pathlib import Path

_TESTS_DIR = str(Path(__file__).resolve().parent)
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)
