"""Shared pytest setup: make sibling test modules importable.

Some test modules import helpers from others (e.g. the fuzz e2e test
reuses ``test_verify``'s deliberately broken quorum algorithm); putting
this directory on ``sys.path`` keeps those imports working under every
pytest invocation style.
"""

import sys
from pathlib import Path

_TESTS_DIR = str(Path(__file__).resolve().parent)
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)


# -- watchdog for live-backend tests -----------------------------------------
#
# Tests marked ``runtime`` drive real event loops and real UDP sockets:
# a bug that would surface as a deterministic assertion in the simulator
# can hang forever on a live backend.  A SIGALRM watchdog (stdlib only —
# this repo deliberately has no pytest-timeout dependency) turns such a
# hang into a loud failure.  Unix-only; elsewhere the tests simply run
# unguarded.

import signal

import pytest

_RUNTIME_TEST_TIMEOUT = 60  # seconds of wall clock per runtime test


@pytest.fixture(autouse=True)
def _runtime_watchdog(request):
    if request.node.get_closest_marker("runtime") is None or not hasattr(
        signal, "SIGALRM"
    ):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"runtime test exceeded {_RUNTIME_TEST_TIMEOUT}s wall-clock "
            f"watchdog: {request.node.nodeid}"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(_RUNTIME_TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
