"""Golden-structure tests for the observability exporters.

The Chrome-trace structure is validated by the same checker CI runs
against ``--trace-out`` files (``benchmarks/check_trace_schema.py``), so
the test suite and the CI gate enforce a single schema.
"""

import json
import sys
from pathlib import Path

import pytest

from repro import ClusterConfig, SimBackend
from repro.obs import session

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
from check_trace_schema import validate  # noqa: E402


@pytest.fixture(scope="module")
def observed_run():
    """One small lossless run captured under an ambient session."""
    with session() as obs:
        cluster = SimBackend("ss-nonblocking", ClusterConfig(n=3, seed=1))
        cluster.write_sync(0, b"a")
        cluster.write_sync(1, b"b")
        cluster.snapshot_sync(2)
    obs.finish()
    return obs


class TestChromeTrace:
    def test_schema_checker_accepts(self, observed_run):
        payload = observed_run.chrome_trace()
        assert validate(payload) == []

    def test_schema_checker_round_trips_through_json(self, observed_run):
        payload = json.loads(json.dumps(observed_run.chrome_trace()))
        assert validate(payload) == []

    def test_per_node_tracks(self, observed_run):
        events = observed_run.chrome_trace()["traceEvents"]
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names == {
            (0, 0): "p0",
            (0, 1): "p1",
            (0, 2): "p2",
            (0, 3): "run",
        }
        process_names = [
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert process_names == ["cluster0 (ss-nonblocking)"]

    def test_op_slices_carry_span_args(self, observed_run):
        events = observed_run.chrome_trace()["traceEvents"]
        ops = [e for e in events if e["ph"] == "X" and e.get("cat") == "op"]
        assert [e["name"] for e in ops] == ["write", "write", "snapshot"]
        for event in ops:
            assert event["args"]["status"] == "ok"
            assert event["args"]["op_id"] is not None
            assert event["dur"] >= 1.0
        run_slices = [
            e for e in events if e["ph"] == "X" and e.get("cat") == "run"
        ]
        assert len(run_slices) == 1
        assert run_slices[0]["tid"] == 3  # the run track sits after the nodes

    def test_flow_arrows_pair_sends_with_deliveries(self, observed_run):
        events = observed_run.chrome_trace()["traceEvents"]
        starts = {e["id"] for e in events if e["ph"] == "s"}
        finishes = {e["id"] for e in events if e["ph"] == "f"}
        assert starts, "expected flow starts for network sends"
        assert finishes, "expected flow finishes for deliveries"
        # Every finish matches a start; starts without a finish are the
        # messages still in flight when the run stopped.
        assert finishes <= starts
        for event in events:
            if event["ph"] == "f":
                assert event["bp"] == "e"

    def test_other_data_describes_clusters(self, observed_run):
        payload = observed_run.chrome_trace()
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["clusters"] == [
            {"index": 0, "algorithm": "ss-nonblocking", "n": 3}
        ]


class TestJsonl:
    def test_every_line_parses_and_types_are_complete(self, observed_run):
        lines = observed_run.jsonl().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "session"
        types = {record["type"] for record in records}
        assert types == {"session", "span", "message", "health", "metric"}
        spans = [r for r in records if r["type"] == "span"]
        assert {s["name"] for s in spans} == {"run", "write", "snapshot"}
        metrics = {r["name"] for r in records if r["type"] == "metric"}
        assert "net.messages_total" in metrics
        assert "ops.total" in metrics


class TestSummary:
    def test_summary_renders_operations_and_metrics(self, observed_run):
        text = observed_run.summary()
        assert "operations" in text
        assert "write" in text and "snapshot" in text
        assert "metrics" in text
        assert "kernel.events_dispatched" in text

    def test_empty_session_summary(self):
        from repro.obs import Observability

        # No clusters and no spans: only the ops.* gauges (all zero).
        text = Observability().summary()
        assert "operations" not in text
        assert "ops.total" in text
