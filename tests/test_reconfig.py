"""Tests for the reconfiguration (state-transfer) extension."""

import pytest

from repro import ClusterConfig, SimBackend
from repro.analysis.linearizability import check_snapshot_history
from repro.errors import ConfigurationError
from repro.reconfig import reconfigure


def make(n=4, seed=0, algorithm="ss-nonblocking", **kwargs):
    return SimBackend(
        algorithm, ClusterConfig(n=n, seed=seed, **kwargs)
    )


class TestReconfigure:
    def test_grow_cluster_preserves_values_and_timestamps(self):
        old = make(n=3)
        old.write_sync(0, "a")
        old.write_sync(0, "a2")
        old.write_sync(1, "b")

        async def run():
            return await reconfigure(old, ClusterConfig(n=5, seed=1))

        report = old.run_until(run(), max_events=None)
        new = report.new_cluster
        assert new.config.n == 5
        assert report.carried_entries == 2
        assert report.dropped == ()
        result = new.kernel.run_until_complete(new.snapshot(4))
        assert result.values[:3] == ("a2", "b", None)
        assert result.vector_clock[:2] == (2, 1)

    def test_writer_timestamp_sequence_continues(self):
        old = make(n=3)
        old.write_sync(0, "v1")
        old.write_sync(0, "v2")

        async def run():
            return await reconfigure(old, ClusterConfig(n=4, seed=2))

        new = old.run_until(run(), max_events=None).new_cluster
        ts = new.kernel.run_until_complete(new.write(0, "v3"))
        assert ts == 3  # continues, never reuses an index

    def test_shrink_reports_dropped_writers(self):
        old = make(n=5)
        old.write_sync(0, "keep")
        old.write_sync(4, "lost")

        async def run():
            return await reconfigure(old, ClusterConfig(n=3, seed=3))

        report = old.run_until(run(), max_events=None)
        assert report.dropped == (4,)
        result = report.new_cluster.kernel.run_until_complete(
            report.new_cluster.snapshot(0)
        )
        assert result.values[0] == "keep"

    def test_algorithm_change_during_reconfiguration(self):
        old = make(n=3, algorithm="ss-nonblocking")
        old.write_sync(1, "carried")

        async def run():
            return await reconfigure(
                old, ClusterConfig(n=3, seed=4, delta=1), algorithm="ss-always"
            )

        new = old.run_until(run(), max_events=None).new_cluster
        from repro.core.ss_always import SelfStabilizingAlwaysTerminating

        assert isinstance(new.node(0), SelfStabilizingAlwaysTerminating)
        result = new.kernel.run_until_complete(new.snapshot(2))
        assert result.values[1] == "carried"

    def test_old_cluster_stopped_after_handoff(self):
        old = make(n=3)

        async def run():
            return await reconfigure(old, ClusterConfig(n=3, seed=5))

        new = old.run_until(run(), max_events=None).new_cluster
        iterations = [p.iterations_completed for p in old.processes]
        new.run_for(30.0)  # shared kernel: time advances for both
        assert [p.iterations_completed for p in old.processes] == iterations

    def test_crashed_collector_rejected(self):
        old = make(n=4)
        old.crash(0)

        async def run():
            return await reconfigure(
                old, ClusterConfig(n=4, seed=6), collector_node=0
            )

        with pytest.raises(ConfigurationError):
            old.run_until(run(), max_events=None)

    def test_transfer_point_is_atomic_under_concurrent_writes(self):
        """Writes concurrent with the handoff either fully transfer or
        complete on the old configuration before it retires — the
        transfer snapshot's atomicity guarantees no torn state."""
        old = make(n=4, seed=7)

        async def run():
            for round_index in range(3):
                await old.write(1, f"w{round_index}")
            report = await reconfigure(old, ClusterConfig(n=4, seed=8))
            return report

        report = old.run_until(run(), max_events=None)
        new = report.new_cluster
        result = new.kernel.run_until_complete(new.snapshot(3))
        assert result.values[1] == "w2"
        # Old history remains linearizable through the handoff.
        check = check_snapshot_history(old.history.records(), 4)
        assert check.ok, check.summary()
