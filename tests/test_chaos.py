"""Tests for the chaos campaign harness."""

import pytest

from repro.harness.chaos import ChaosCampaign


class TestChaosCampaign:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_campaign_passes_all_checks(self, seed):
        report = ChaosCampaign(seed=seed).run(events=80)
        assert report.ok, report.failures[:3]
        assert report.events == 80
        assert report.writes > 0
        assert report.snapshots > 0
        assert report.linearizability_checks >= 1

    def test_campaign_exercises_faults(self):
        report = ChaosCampaign(seed=3).run(events=150)
        assert report.ok, report.failures[:3]
        assert report.crashes >= 1
        assert report.partitions >= 1
        assert report.corruptions >= 1

    def test_reproducible(self):
        first = ChaosCampaign(seed=11).run(events=60)
        second = ChaosCampaign(seed=11).run(events=60)
        assert first.summary() == second.summary()

    def test_nonblocking_algorithm_campaign(self):
        report = ChaosCampaign(
            algorithm="ss-nonblocking", seed=5
        ).run(events=80)
        assert report.ok, report.failures[:3]

    def test_cli_chaos(self, capsys):
        from repro.__main__ import main

        assert main(["chaos", "--budget", "40", "--seeds", "2"]) == 0
        assert "events" in capsys.readouterr().out
