"""Focused tests for Kernel.first_of and related coordination helpers."""

import pytest

from repro.errors import CancelledError
from repro.sim import Kernel


class TestFirstOf:
    def test_returns_winner_index(self):
        kernel = Kernel()

        async def fast():
            await kernel.sleep(1.0)
            return "fast"

        async def slow():
            await kernel.sleep(5.0)
            return "slow"

        async def main():
            return await kernel.first_of(slow(), fast())

        assert kernel.run_until_complete(main()) == 1

    def test_losers_cancelled_on_win(self):
        kernel = Kernel()
        cancelled = []

        async def loser():
            try:
                await kernel.sleep(100.0)
            except CancelledError:
                cancelled.append(True)
                raise

        async def winner():
            await kernel.sleep(1.0)

        async def main():
            await kernel.first_of(loser(), winner())
            await kernel.sleep(1.0)

        kernel.run_until_complete(main())
        assert cancelled == [True]

    def test_timeout_returns_minus_one(self):
        kernel = Kernel()

        async def never():
            await kernel.create_future()

        async def main():
            return await kernel.first_of(never(), timeout=2.0)

        assert kernel.run_until_complete(main()) == -1
        assert kernel.now == 2.0

    def test_timeout_cancels_by_default(self):
        kernel = Kernel()
        task_holder = []

        async def pending():
            await kernel.sleep(100.0)

        async def main():
            task = kernel.create_task(pending())
            task_holder.append(task)
            await kernel.first_of(task, timeout=1.0)
            await kernel.sleep(0.5)
            return task.cancelled()

        assert kernel.run_until_complete(main())

    def test_cancel_on_timeout_false_preserves_task(self):
        kernel = Kernel()

        async def pending():
            await kernel.sleep(5.0)
            return "survived"

        async def main():
            task = kernel.create_task(pending())
            result = await kernel.first_of(
                task, timeout=1.0, cancel_on_timeout=False
            )
            assert result == -1
            assert not task.done()
            return await task

        assert kernel.run_until_complete(main()) == "survived"

    def test_polling_loop_pattern(self):
        """The bounded-variant _abortable pattern: poll a long task."""
        kernel = Kernel()

        async def long_task():
            await kernel.sleep(10.0)
            return 42

        async def main():
            task = kernel.create_task(long_task())
            polls = 0
            while not task.done():
                await kernel.first_of(
                    task, timeout=3.0, cancel_on_timeout=False
                )
                polls += 1
            return task.result(), polls

        result, polls = kernel.run_until_complete(main())
        assert result == 42
        assert polls == 4  # 3, 6, 9, then completion at 10

    def test_winner_exception_propagates(self):
        kernel = Kernel()

        async def boom():
            await kernel.sleep(0.5)
            raise ValueError("exploded")

        async def main():
            await kernel.first_of(boom(), kernel.sleep(100.0))

        with pytest.raises(ValueError, match="exploded"):
            kernel.run_until_complete(main())

    def test_immediate_winner(self):
        kernel = Kernel()
        future = kernel.create_future()
        future.set_result("done")

        async def main():
            return await kernel.first_of(future, kernel.sleep(100.0))

        assert kernel.run_until_complete(main()) == 0
