"""Tests for the ``SnapshotClient`` facade over clusters and fabrics."""

import asyncio

import pytest

from repro import ClusterConfig, SimBackend, SnapshotClient
from repro.errors import ConfigurationError

pytestmark = pytest.mark.shard


class TestLocalClient:
    def test_write_snapshot_roundtrip(self):
        client = SnapshotClient.local(shards=2, config=ClusterConfig(n=4))
        assert client.write_sync("a", b"1") == 1
        assert client.write_sync("a", b"2") == 2
        cut = client.snapshot_sync()
        assert cut.items() == {"a": (2, b"2")}
        assert "a" in cut and cut.get("a") == b"2"
        assert client.check() == []

    def test_read_single_key(self):
        client = SnapshotClient.local(shards=2)
        client.write_sync("k", 42)
        view = client.read_sync("k")
        assert view.found and view.value == 42
        assert not client.read_sync("missing").found

    def test_split_grows_the_deployment(self):
        client = SnapshotClient.local(shards=1)
        for i in range(8):
            client.write_sync(f"k{i}", i)
        assert client.shards == 1 and client.epoch == 0
        report = client.split_sync()
        assert client.shards == 2 and client.epoch == report.new_epoch
        cut = client.snapshot_sync()
        assert {k: v for k, (_, v) in cut.items().items()} == {
            f"k{i}": i for i in range(8)
        }
        assert client.check() == []

    def test_defaults_are_single_shard(self):
        client = SnapshotClient.local()
        assert client.shards == 1


class TestWrappingExistingTargets:
    def test_wraps_a_cluster_backend(self):
        backend = SimBackend("ss-nonblocking", ClusterConfig(n=4))
        client = SnapshotClient(backend)
        assert client.shards == 1
        client.write_sync("key", "value")
        assert client.snapshot_sync().get("key") == "value"
        assert client.check() == []

    def test_rejects_unknown_targets(self):
        with pytest.raises(ConfigurationError, match="SnapshotClient"):
            SnapshotClient(object())


class TestConnect:
    @pytest.mark.runtime
    def test_connect_on_asyncio_backend(self):
        async def main():
            client = await SnapshotClient.connect(
                "asyncio", shards=2, config=ClusterConfig(n=3),
                time_scale=0.002,
            )
            try:
                assert await client.write("a", b"live") == 1
                cut = await asyncio.wait_for(client.snapshot(), timeout=30)
                assert cut.get("a") == b"live"
                assert client.check() == []
            finally:
                await client.close()

        asyncio.run(main())

    def test_sync_helpers_require_sim(self):
        client = SnapshotClient.local()
        # The error machinery: a live-backend client refuses *_sync with
        # a message that names the backends providing simulated time.
        caps = client.fabric.backends()[0].capabilities
        fake = caps.__class__(**{**caps.describe(), "backend": "udp",
                                 "simulated_time": False})
        client.fabric.backends()[0].capabilities = fake
        with pytest.raises(ConfigurationError, match="sim"):
            client.write_sync("a", 1)
