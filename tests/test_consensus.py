"""Tests for the self-stabilizing consensus layer and its two callers.

Covers the :class:`~repro.consensus.ConsensusEndpoint` contract
(agreement, validity, adoption, straggler catch-up, bounded state,
healing under state corruption), the epoch deciders built on it, and
the Step-2 reset regression the layer exists for: the legacy
coordinator sketch stalls forever when the coordinator crashes
mid-reset, the consensus-backed reset completes.
"""

import pytest

from repro.analysis.invariants import definition1_consistent
from repro.config import ClusterConfig, scenario_config
from repro.backend.sim import SimBackend
from repro.consensus import ConsensusEndpoint, valid_tag
from repro.errors import (
    ConfigurationError,
    EpochEvictedError,
    ResetInProgressError,
)
from repro.fault import TransientFaultInjector
from repro.shard.epoch import (
    DECIDED_EPOCH_WINDOW,
    ConsensusEpochDecider,
    LocalEpochDecider,
)
from repro.shard.ring import ShardMap


def make_cluster(n=4, seed=0, **kwargs):
    cluster = SimBackend(
        "ss-nonblocking", scenario_config(n=n, seed=seed, **kwargs)
    )
    endpoints = [ConsensusEndpoint.ensure(p) for p in cluster.processes]
    return cluster, endpoints


def make_bounded(n=5, seed=0, max_int=8, **kwargs):
    return SimBackend(
        "bounded-ss-nonblocking",
        scenario_config(n=n, seed=seed, max_int=max_int, **kwargs),
    )


class TestConsensusEndpoint:
    def test_valid_tag(self):
        assert valid_tag(("reset", 0))
        assert valid_tag(("shard-epoch", 12))
        assert not valid_tag(("reset",))
        assert not valid_tag(("reset", -1))
        assert not valid_tag(("reset", True))
        assert not valid_tag((7, 0))
        assert not valid_tag("reset")

    def test_single_proposer_all_decide(self):
        cluster, endpoints = make_cluster()

        async def scenario():
            decided = await endpoints[0].propose(("t", 0), "hello")
            # The proposer deciding does not mean the laggards have
            # drained their queues yet — give them a few units.
            while any(e.result(("t", 0)) is None for e in endpoints):
                await cluster.kernel.sleep(1.0)
            return decided

        decided = cluster.run_until(scenario(), max_events=None)
        assert decided == "hello"
        # Passive nodes adopted and decided the same value.
        assert all(e.result(("t", 0)) == "hello" for e in endpoints)

    def test_contended_proposers_agree(self):
        cluster, endpoints = make_cluster(n=5, seed=2)
        values = [f"v{node}" for node in range(5)]

        async def scenario():
            tasks = [
                cluster.spawn(endpoints[node].propose(("t", 1), values[node]))
                for node in range(5)
            ]
            return await cluster.kernel.gather(tasks)

        decisions = cluster.run_until(scenario(), max_events=None)
        assert len(set(decisions)) == 1
        assert decisions[0] in values

    def test_straggler_catches_up_after_partition(self):
        cluster, endpoints = make_cluster(n=4, seed=3)
        cluster.network.partition({3}, {0, 1, 2})

        async def majority():
            return await endpoints[0].propose(("t", 2), "majority-pick")

        decided = cluster.run_until(majority(), max_events=None)
        assert decided == "majority-pick"
        cluster.network.heal()

        async def straggler():
            return await endpoints[3].propose(("t", 2), "late-proposal")

        late = cluster.run_until(straggler(), max_events=None)
        # Agreement beats the late node's own proposal.
        assert late == "majority-pick"

    def test_corrupt_state_heals_and_still_agrees(self):
        cluster, endpoints = make_cluster(n=5, seed=4)
        injector = TransientFaultInjector(cluster, seed=4)
        values = [f"c{node}" for node in range(5)]

        async def scenario():
            tasks = [
                cluster.spawn(endpoints[node].propose(("t", 3), values[node]))
                for node in range(5)
            ]
            # Let the binary rounds open, then scramble every node's
            # consensus state mid-decision.
            await cluster.kernel.sleep(2.0)
            injector.corrupt_consensus()
            return await cluster.kernel.gather(tasks)

        decisions = cluster.run_until(scenario(), max_events=None)
        assert len(set(decisions)) == 1

    def test_decided_window_and_instance_gc_are_bounded(self):
        cluster, endpoints = make_cluster(n=3, seed=5)
        rounds = ConsensusEndpoint.DECIDED_WINDOW + 4

        async def scenario():
            for index in range(rounds):
                await endpoints[0].propose(("t", index), f"r{index}")

        cluster.run_until(scenario(), max_events=None)
        for endpoint in endpoints:
            assert len(endpoint._decided) <= ConsensusEndpoint.DECIDED_WINDOW
            assert len(endpoint._instances) <= ConsensusEndpoint.MAX_INSTANCES

    def test_validator_purges_invalid_proposals(self):
        cluster, endpoints = make_cluster(n=3, seed=6)

        async def scenario():
            # Node 0 proposes an even number; the validator requires it.
            return await endpoints[0].propose(
                ("t", 90), 42, validator=lambda v: isinstance(v, int)
            )

        assert cluster.run_until(scenario(), max_events=None) == 42

    def test_consensus_metrics_reach_the_registry(self):
        from repro.obs.observe import Observability

        obs = Observability(trace_messages=False)
        cluster = SimBackend("ss-nonblocking", scenario_config(n=3, seed=7))
        cobs = obs.attach(cluster)
        endpoints = [ConsensusEndpoint.ensure(p) for p in cluster.processes]

        async def scenario():
            decided = await endpoints[0].propose(("t", 0), "m")
            while any(e.result(("t", 0)) is None for e in endpoints):
                await cluster.kernel.sleep(1.0)
            return decided

        cluster.run_until(scenario(), max_events=None)
        metrics = cobs.session.collect()
        assert metrics["consensus.decides"] >= 3
        assert metrics["consensus.rounds"] >= 1


class TestEpochDeciders:
    def test_local_decider_window_bounds_retention(self):
        decider = LocalEpochDecider(window=3)
        current = ShardMap(epoch=0, shard_ids=(0,), vnodes=8)
        for epoch in range(1, 6):
            proposal = ShardMap(
                epoch=epoch, shard_ids=tuple(range(epoch + 1)), vnodes=8
            )
            assert decider.propose(proposal, current) == proposal
            current = proposal
        assert decider.decided(5).epoch == 5
        assert decider.decided(3).epoch == 3
        with pytest.raises(EpochEvictedError):
            decider.decided(1)
        with pytest.raises(EpochEvictedError):
            decider.decided(2)

    def test_local_decider_rejects_epoch_gaps(self):
        decider = LocalEpochDecider()
        current = ShardMap(epoch=0, shard_ids=(0,), vnodes=8)
        with pytest.raises(ConfigurationError):
            decider.propose(
                ShardMap(epoch=2, shard_ids=(0, 1), vnodes=8), current
            )

    def test_consensus_decider_two_routers_agree(self):
        cluster = SimBackend("ss-nonblocking", scenario_config(n=4, seed=8))
        first = ConsensusEpochDecider(cluster)
        second = ConsensusEpochDecider(cluster)
        current = ShardMap(epoch=0, shard_ids=(0, 1), vnodes=8)
        p1 = ShardMap(epoch=1, shard_ids=(0, 1, 2), vnodes=8)
        p2 = ShardMap(epoch=1, shard_ids=(0, 1, 7), vnodes=8)

        async def scenario():
            tasks = [
                cluster.spawn(first.propose(p1, current)),
                cluster.spawn(second.propose(p2, current)),
            ]
            return await cluster.kernel.gather(tasks)

        d1, d2 = cluster.run_until(scenario(), max_events=None)
        assert d1 == d2
        assert d1 in (p1, p2)
        assert first.decided(1) == second.decided(1) == d1

    def test_consensus_decider_window_default(self):
        assert DECIDED_EPOCH_WINDOW >= 1
        cluster = SimBackend("ss-nonblocking", scenario_config(n=3, seed=9))
        decider = ConsensusEpochDecider(cluster, window=2)
        current = ShardMap(epoch=0, shard_ids=(0,), vnodes=8)

        async def scenario():
            nonlocal current
            for epoch in range(1, 5):
                proposal = ShardMap(
                    epoch=epoch, shard_ids=tuple(range(epoch + 1)), vnodes=8
                )
                current = await decider.propose(proposal, current)

        cluster.run_until(scenario(), max_events=None)
        assert decider.decided(4).epoch == 4
        with pytest.raises(EpochEvictedError):
            decider.decided(1)


def drive_reset_with_coordinator_crashed(cluster, max_int):
    """Crash node 0, overflow node 1, wait for the reset to settle.

    Returns ``(settled_cycles, post_write_ok)`` where ``settled_cycles``
    is ``None`` when the reset never completed within the cycle budget.
    """
    alive = [node for node in range(cluster.config.n) if node != 0]

    def settled():
        procs = [cluster.node(node) for node in alive]
        return not any(p.resetting for p in procs) and all(
            p.epoch >= 1 for p in procs
        )

    async def drive():
        cluster.crash(0)
        for index in range(max_int + 1):
            try:
                await cluster.write(1, (0, index))
            except ResetInProgressError:
                break
        cluster.tracker.reset()
        cycles = None
        for _ in range(16):
            if settled():
                cycles = cluster.tracker.cycles_elapsed
                break
            await cluster.tracker.wait_cycles(1)
        write_ok = False
        try:
            await cluster.kernel.wait_for(
                cluster.write(1, b"post"), timeout=50.0
            )
            write_ok = True
        except (TimeoutError, ResetInProgressError):
            pass
        return cycles, write_ok

    return cluster.run_until(drive(), max_events=None)


class TestConsensusBackedReset:
    def test_coordinator_sketch_stalls_without_coordinator(self):
        """Regression: the legacy reset is a liveness failure here."""
        cluster = make_bounded(seed=10, reset_mode="coordinator")
        cycles, write_ok = drive_reset_with_coordinator_crashed(cluster, 8)
        assert cycles is None
        assert not write_ok
        # The survivors are stuck inside the reset window forever.
        assert any(
            cluster.node(node).resetting for node in range(1, 5)
        )
        assert all(cluster.node(node).epoch == 0 for node in range(1, 5))

    def test_consensus_reset_completes_without_coordinator(self):
        cluster = make_bounded(seed=10, reset_mode="consensus")
        cycles, write_ok = drive_reset_with_coordinator_crashed(cluster, 8)
        assert cycles is not None
        assert write_ok
        epochs = {cluster.node(node).epoch for node in range(1, 5)}
        assert epochs == {1}

    def test_consensus_reset_survives_consensus_corruption(self):
        cluster = make_bounded(seed=11, reset_mode="consensus")
        injector = TransientFaultInjector(cluster, seed=11)

        async def drive():
            cluster.crash(0)
            for index in range(9):
                try:
                    await cluster.write(1, (0, index))
                except ResetInProgressError:
                    break
            # The reset window is open: scramble the very consensus
            # instances deciding the commit.
            await cluster.tracker.wait_cycles(1)
            injector.corrupt_consensus()
            cluster.tracker.reset()
            for _ in range(16):
                procs = [cluster.node(node) for node in range(1, 5)]
                if not any(p.resetting for p in procs) and all(
                    p.epoch >= 1 for p in procs
                ):
                    break
                await cluster.tracker.wait_cycles(1)
            await cluster.kernel.wait_for(
                cluster.write(1, b"post"), timeout=50.0
            )

        cluster.run_until(drive(), max_events=None)
        epochs = {cluster.node(node).epoch for node in range(1, 5)}
        assert len(epochs) == 1 and epochs.pop() >= 1

    def test_consensus_reset_no_crash_keeps_definition1(self):
        cluster = make_bounded(n=4, seed=12, reset_mode="consensus")

        async def drive():
            for index in range(30):
                try:
                    await cluster.write(index % 4, (index,))
                except ResetInProgressError:
                    await cluster.tracker.wait_cycles(3)
            await cluster.tracker.wait_cycles(4)
            return await cluster.snapshot(0)

        final = cluster.run_until(drive(), max_events=None)
        assert all(value is not None for value in final.values)
        assert definition1_consistent(cluster).ok
        epochs = {p.epoch for p in cluster.processes}
        assert len(epochs) == 1 and epochs.pop() >= 1

    def test_reset_mode_validated(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(n=4, reset_mode="quantum")

    def test_restarted_node_rejoins_after_reset(self):
        """Regression: a restart that sleeps through a reset must not wedge.

        The restarted node wakes in epoch 0 while the cluster is at
        epoch 1; without the envelope-skew catch-up each side drops the
        other's traffic forever and the node's operations never reach a
        quorum (found by fuzz, bounded-ss-nonblocking seed 42).
        """
        cluster = make_bounded(n=3, seed=13, reset_mode="consensus")

        async def drive():
            for index in range(9):
                try:
                    await cluster.write(1, (0, index))
                except ResetInProgressError:
                    break
            cluster.tracker.reset()
            for _ in range(16):
                procs = cluster.processes
                if not any(p.resetting for p in procs) and all(
                    p.epoch >= 1 for p in procs
                ):
                    break
                await cluster.tracker.wait_cycles(1)
            cluster.crash(0)
            cluster.resume(0, restart=True)
            assert cluster.node(0).epoch == 0  # slept through the reset

            async def snapshot_with_retry():
                # Catching up bumps node 0's epoch mid-operation, which
                # aborts the in-flight snapshot by design; retry like a
                # real caller would.
                while True:
                    try:
                        return await cluster.snapshot(0)
                    except ResetInProgressError:
                        await cluster.kernel.sleep(1.0)

            return await cluster.kernel.wait_for(
                snapshot_with_retry(), timeout=100.0
            )

        result = cluster.run_until(drive(), max_events=None)
        assert result is not None
        epochs = {p.epoch for p in cluster.processes}
        assert len(epochs) == 1 and epochs.pop() >= 1

    def test_consensus_survives_loss_and_round_skew(self):
        """Regression: binary rounds are not lockstep under loss.

        With 10% loss a node can get stranded one round behind while
        the majority moves on and only retransmits its current votes;
        the vote-history catch-up reply must walk the laggard forward
        (found by fuzz, bounded-ss-nonblocking seed 47).
        """
        cluster = SimBackend(
            "ss-nonblocking",
            scenario_config(n=4, seed=47, loss=0.1, duplication=0.05),
        )
        endpoints = [ConsensusEndpoint.ensure(p) for p in cluster.processes]
        values = [f"v{node}" for node in range(4)]

        async def scenario():
            tasks = [
                cluster.spawn(
                    endpoints[node].propose(("lossy", 0), values[node])
                )
                for node in range(4)
            ]
            return await cluster.kernel.gather(tasks)

        decisions = cluster.run_until(scenario(), max_events=None)
        assert len(set(decisions)) == 1
        assert decisions[0] in values


@pytest.mark.runtime
class TestConsensusOnAsyncio:
    def test_agreement_on_live_event_loop(self):
        import asyncio

        from repro.backend.aio import AsyncioBackend

        async def main():
            cluster = AsyncioBackend(
                "ss-nonblocking",
                ClusterConfig(n=4, seed=13),
                time_scale=0.002,
            )
            cluster.start()
            try:
                endpoints = [
                    ConsensusEndpoint.ensure(p) for p in cluster.processes
                ]
                tasks = [
                    endpoints[node].propose(("t", 0), f"live-{node}")
                    for node in range(4)
                ]
                decisions = await asyncio.wait_for(
                    asyncio.gather(*tasks), timeout=20
                )
                assert len(set(decisions)) == 1
                assert decisions[0] in {f"live-{node}" for node in range(4)}
            finally:
                cluster.stop()

        asyncio.run(main())

    def test_consensus_reset_completes_on_live_event_loop(self):
        import asyncio

        from repro.backend.aio import AsyncioBackend

        async def main():
            cluster = AsyncioBackend(
                "bounded-ss-nonblocking",
                ClusterConfig(n=4, seed=14, max_int=6, reset_mode="consensus"),
                time_scale=0.002,
            )
            cluster.start()
            try:
                cluster.crash(0)
                for index in range(7):
                    try:
                        await asyncio.wait_for(
                            cluster.write(1, (0, index)), timeout=10
                        )
                    except ResetInProgressError:
                        break
                deadline = asyncio.get_running_loop().time() + 20
                while asyncio.get_running_loop().time() < deadline:
                    procs = [cluster.node(node) for node in range(1, 4)]
                    if not any(p.resetting for p in procs) and all(
                        p.epoch >= 1 for p in procs
                    ):
                        break
                    await asyncio.sleep(0.05)
                epochs = {cluster.node(node).epoch for node in range(1, 4)}
                assert epochs == {1}
                await asyncio.wait_for(cluster.write(1, b"post"), timeout=10)
            finally:
                cluster.stop()

        asyncio.run(main())
