"""Load generation on the live backends (asyncio event loop, real UDP).

The simulator carries the measurement burden; here we only need each
live substrate to sustain a short mixed pipelined workload whose history
still checks out linearizable — the ``--backend asyncio|udp`` path of
``python -m repro load``.
"""

import pytest

from repro.load import LoadSpec, run_load

pytestmark = pytest.mark.runtime

# Short submission window (simulated units; 2 ms each at the default
# time_scale) so a run stays well inside the suite's watchdog.
SPEC = LoadSpec(clients=4, depth=2, write_fraction=0.8, duration=20.0, seed=3)


@pytest.mark.parametrize("backend", ["asyncio", "udp"])
def test_live_load_is_linearizable(backend):
    report = run_load(backend, "ss-nonblocking", spec=SPEC)
    assert report.ok, report.failures
    assert report.backend == backend
    assert report.completed > 0
    assert report.errors == 0
    assert report.throughput > 0
    assert report.quantile("all", "p99") >= report.quantile("all", "p50")


def test_live_open_loop(backend="asyncio"):
    report = run_load(
        backend,
        "ss-always",
        spec=LoadSpec(mode="open", rate=0.5, duration=20.0, seed=7),
    )
    assert report.ok, report.failures
    assert report.offered_rate == 0.5
