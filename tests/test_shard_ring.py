"""Property tests for the consistent-hash shard router.

The router carries the fabric's correctness-critical invariants:
balanced key spread at every K, minimal movement on a split (only
~1/K of keys remap, and only *to* the new shard), and deterministic,
epoch-independent placement for unmoved keys.
"""

import pytest

from repro.shard import DEFAULT_VNODES, ShardMap, stable_hash
from repro.shard.ring import key_bytes

pytestmark = pytest.mark.shard

KEYS = [f"key-{i}" for i in range(4000)]


def fresh_map(shards: int) -> ShardMap:
    return ShardMap(epoch=0, shard_ids=tuple(range(shards)))


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash(b"abc") == stable_hash(b"abc")

    def test_salt_separates_spaces(self):
        assert stable_hash(b"abc") != stable_hash(b"abc", salt=b"slot")

    def test_key_bytes_accepts_common_types(self):
        assert key_bytes("a") == key_bytes("a")
        assert key_bytes(7) != key_bytes("7-")
        assert key_bytes(b"raw") == b"raw"


class TestBalance:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_share_spread_is_tight(self, shards):
        counts = fresh_map(shards).share_by_shard(KEYS)
        assert sum(counts.values()) == len(KEYS)
        assert set(counts) == set(range(shards))
        # ISSUE acceptance: max/min load ratio <= 1.3 at K=8 with
        # vnodes=256 over a few thousand keys.
        assert max(counts.values()) / min(counts.values()) <= 1.3

    def test_vnode_count_drives_balance(self):
        rough = ShardMap(epoch=0, shard_ids=(0, 1, 2, 3), vnodes=8)
        fine = fresh_map(4)
        assert fine.vnodes == DEFAULT_VNODES

        def ratio(m):
            counts = m.share_by_shard(KEYS)
            return max(counts.values()) / min(counts.values())

        assert ratio(fine) <= ratio(rough)


class TestSplitRemap:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_remap_fraction_is_minimal(self, shards):
        before = fresh_map(shards)
        after = before.grown()
        moved = [k for k in KEYS if before.lookup(k) != after.lookup(k)]
        # Consistent hashing: an added shard takes ~1/(K+1) of the keys;
        # allow slack for hash noise but far below the 1/2 a naive
        # mod-K rehash would move.
        assert len(moved) / len(KEYS) <= 1.5 / (shards + 1)
        new_id = set(after.shard_ids) - set(before.shard_ids)
        assert all(after.lookup(k) in new_id for k in moved)

    def test_grown_bumps_epoch_and_preserves_ids(self):
        before = fresh_map(3)
        after = before.grown()
        assert after.epoch == before.epoch + 1
        assert set(before.shard_ids) < set(after.shard_ids)

    def test_unmoved_keys_keep_placement_across_epochs(self):
        m = fresh_map(2)
        for _ in range(3):
            nxt = m.grown()
            stay = [k for k in KEYS if m.lookup(k) == nxt.lookup(k)]
            assert stay  # the vast majority
            m = nxt


class TestSlotRouting:
    def test_slot_is_deterministic_and_in_range(self):
        m = fresh_map(4)
        for key in KEYS[:200]:
            shard, node = m.slot(key, 4)
            assert (shard, node) == m.slot(key, 4)
            assert shard in m.shard_ids
            assert 0 <= node < 4

    def test_slot_nodes_spread_within_a_shard(self):
        m = fresh_map(2)
        nodes = {m.slot(k, 4)[1] for k in KEYS[:400]}
        assert nodes == {0, 1, 2, 3}
