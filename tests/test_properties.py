"""Property-based tests (hypothesis) for core invariants.

Covers: the register join-semilattice laws, channel non-forgery, checker
cross-validation (specialized vs exhaustive), end-to-end linearizability
of randomized executions, and recovery from arbitrary corruption.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ChannelConfig, ClusterConfig, SimBackend
from repro.analysis.history import SNAPSHOT, WRITE, HistoryRecorder
from repro.analysis.invariants import definition1_consistent
from repro.analysis.linearizability import (
    check_exhaustive,
    check_snapshot_history,
)
from repro.core.base import SnapshotResult
from repro.core.register import RegisterArray, TimestampedValue
from repro.fault import TransientFaultInjector
from repro.net.message import measure_size

# Simulation-heavy properties get fewer, deadline-free examples.
SIM_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

entries = st.builds(
    TimestampedValue,
    ts=st.integers(min_value=0, max_value=50),
    value=st.integers(min_value=0, max_value=5),
)


def register_arrays(size=4):
    return st.builds(
        lambda es: RegisterArray(es),
        st.lists(entries, min_size=size, max_size=size),
    )


class TestLatticeLaws:
    @given(register_arrays(), register_arrays())
    def test_merge_commutative_on_timestamps(self, a, b):
        left = a.copy()
        left.merge_from(b)
        right = b.copy()
        right.merge_from(a)
        # Values may differ on ts ties (left bias) but clocks agree.
        assert left.vector_clock() == right.vector_clock()

    @given(register_arrays(), register_arrays(), register_arrays())
    def test_merge_associative(self, a, b, c):
        one = a.copy()
        one.merge_from(b)
        one.merge_from(c)
        bc = b.copy()
        bc.merge_from(c)
        two = a.copy()
        two.merge_from(bc)
        assert one.vector_clock() == two.vector_clock()

    @given(register_arrays())
    def test_merge_idempotent(self, a):
        merged = a.copy()
        merged.merge_from(a)
        assert merged == a

    @given(register_arrays(), register_arrays())
    def test_merge_is_upper_bound(self, a, b):
        merged = a.copy()
        merged.merge_from(b)
        assert a.precedes_or_equals(merged)
        assert b.precedes_or_equals(merged)

    @given(register_arrays(), register_arrays())
    def test_order_antisymmetric_on_clocks(self, a, b):
        if a.precedes_or_equals(b) and b.precedes_or_equals(a):
            assert a.vector_clock() == b.vector_clock()

    @given(register_arrays(), register_arrays(), register_arrays())
    def test_order_transitive(self, a, b, c):
        if a.precedes_or_equals(b) and b.precedes_or_equals(c):
            assert a.precedes_or_equals(c)

    @given(entries, entries)
    def test_pair_max_is_commutative_on_ts(self, x, y):
        assert x.max_with(y).ts == y.max_with(x).ts == max(x.ts, y.ts)

    @given(st.one_of(st.integers(), st.binary(), st.text(), st.none(),
                     st.lists(st.integers(), max_size=5)))
    def test_measure_size_non_negative(self, obj):
        assert measure_size(obj) >= 0


class TestCheckerCrossValidation:
    """The specialized checker must agree with the exhaustive one."""

    @staticmethod
    def random_history(rng, n=3, ops=6):
        """Generate a random *plausible* history (valid or subtly not)."""
        history = HistoryRecorder()
        now = 0.0
        state = [0] * n
        writer_ts = [0] * n
        for _ in range(ops):
            now += rng.uniform(0.1, 2.0)
            node = rng.randrange(n)
            duration = rng.uniform(0.1, 3.0)
            if rng.random() < 0.5:
                writer_ts[node] += 1
                op = history.invoke(node, WRITE, f"v{writer_ts[node]}", now=now)
                history.respond(op, result=writer_ts[node], now=now + duration)
                state[node] = writer_ts[node]
            else:
                vc = list(state)
                if rng.random() < 0.3 and max(state) > 0:
                    # Perturb: maybe-wrong snapshot (stale or future entry)
                    k = rng.randrange(n)
                    vc[k] = max(0, vc[k] + rng.choice([-1, 1]))
                op = history.invoke(node, SNAPSHOT, now=now)
                result = SnapshotResult(
                    values=tuple(f"v{t}" if t else None for t in vc),
                    vector_clock=tuple(vc),
                )
                history.respond(op, result=result, now=now + duration)
        return history.records()

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_agreement_on_sequential_histories(self, seed):
        rng = random.Random(seed)
        records = self.random_history(rng)
        specialized = check_snapshot_history(records, n=3, check_values=False)
        exhaustive = check_exhaustive(records, n=3)
        if exhaustive:
            # Exhaustive-accepted histories must pass the specialized
            # checker (it verifies necessary conditions only).
            assert specialized.ok, specialized.summary()

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_specialized_rejection_implies_exhaustive_rejection(self, seed):
        rng = random.Random(seed)
        records = self.random_history(rng)
        specialized = check_snapshot_history(records, n=3, check_values=False)
        if not specialized.ok:
            assert not check_exhaustive(records, n=3), specialized.summary()


class TestEndToEndLinearizability:
    @given(
        algorithm=st.sampled_from(
            ["dgfr-nonblocking", "ss-nonblocking", "ss-always", "stacked"]
        ),
        seed=st.integers(min_value=0, max_value=10_000),
        loss=st.sampled_from([0.0, 0.15]),
    )
    @SIM_SETTINGS
    def test_random_concurrent_runs_linearizable(self, algorithm, seed, loss):
        config = ClusterConfig(
            n=4,
            seed=seed,
            delta=2,
            channel=ChannelConfig(
                loss_probability=loss, duplication_probability=loss / 2
            ),
        )
        cluster = SimBackend(algorithm, config)
        rng = random.Random(seed)

        async def workload():
            pending = []
            for _ in range(3):
                batch = []
                for node in range(4):
                    if rng.random() < 0.6:
                        batch.append(
                            cluster.spawn(
                                cluster.write(node, rng.randrange(100))
                            )
                        )
                    else:
                        batch.append(cluster.spawn(cluster.snapshot(node)))
                pending.extend(batch)
                await cluster.kernel.gather(batch)
            await cluster.kernel.gather(pending)

        cluster.run_until(workload(), max_events=None)
        cluster.history.validate_well_formed()
        report = check_snapshot_history(cluster.history.records(), 4)
        assert report.ok, report.summary()

    @given(
        algorithm=st.sampled_from(["ss-nonblocking", "ss-always"]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @SIM_SETTINGS
    def test_recovery_from_arbitrary_corruption(self, algorithm, seed):
        cluster = SimBackend(
            algorithm, ClusterConfig(n=4, seed=seed, delta=1)
        )
        cluster.write_sync(0, "pre")
        injector = TransientFaultInjector(cluster, seed=seed)
        injector.scramble_everything()
        cluster.tracker.reset()
        cluster.run_until(cluster.tracker.wait_cycles(8), max_events=None)
        report = definition1_consistent(cluster)
        assert report.ok, report.failures
        # Post-recovery operations behave.
        cluster.history = HistoryRecorder()
        for node in range(4):
            cluster.write_sync(node, f"post{node}")
        result = cluster.snapshot_sync(0)
        assert result.values == tuple(f"post{k}" for k in range(4))

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SIM_SETTINGS
    def test_crash_minority_never_blocks(self, seed):
        rng = random.Random(seed)
        cluster = SimBackend(
            "ss-nonblocking", ClusterConfig(n=5, seed=seed)
        )
        crashed = rng.sample(range(5), 2)
        for node in crashed:
            cluster.crash(node)
        survivor = next(k for k in range(5) if k not in crashed)
        cluster.write_sync(survivor, "alive")
        result = cluster.snapshot_sync(survivor)
        assert result.values[survivor] == "alive"


class TestChannelProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        loss=st.floats(min_value=0.0, max_value=0.8),
        dup=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_channels_never_forge_messages(self, seed, loss, dup):
        """Everything delivered was sent: deliveries ⊆ sends per kind,
        and without duplication, per-kind delivery counts never exceed
        send counts."""
        from repro.analysis.trace import MessageTrace

        cluster = SimBackend(
            "ss-nonblocking",
            ClusterConfig(
                n=4,
                seed=seed,
                channel=ChannelConfig(
                    loss_probability=loss, duplication_probability=dup
                ),
            ),
        )
        trace = MessageTrace(cluster.network)
        cluster.write_sync(0, b"x", max_events=None)
        cluster.run_until(cluster.settle_cycles(2), max_events=None)
        sends = {}
        delivers = {}
        for event in trace.events:
            bucket = sends if event.event == "send" else delivers
            key = (event.src, event.dst, event.kind)
            bucket[key] = bucket.get(key, 0) + 1
        for key, delivered in delivers.items():
            assert key in sends, f"forged delivery {key}"
            if dup == 0.0:
                assert delivered <= sends[key]

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_partition_heals_cleanly(self, seed):
        """After an arbitrary partition interval, operations complete and
        the history is linearizable."""
        rng = random.Random(seed)
        cluster = SimBackend(
            "ss-nonblocking", ClusterConfig(n=5, seed=seed)
        )
        group = set(rng.sample(range(5), rng.randrange(1, 3)))
        rest = set(range(5)) - group
        cluster.network.partition(group, rest)
        survivor = next(iter(rest)) if len(rest) >= 3 else next(iter(group))
        side = rest if len(rest) >= 3 else group
        if len(side) >= 3:
            cluster.write_sync(survivor, "during", max_events=None)
        cluster.network.heal()
        cluster.write_sync(0, "after", max_events=None)
        cluster.snapshot_sync(1, max_events=None)
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()


class TestBoundedProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        max_int=st.integers(min_value=5, max_value=14),
    )
    @settings(max_examples=10, deadline=None)
    def test_bounded_variant_survives_random_churn(self, seed, max_int):
        """Across random write churn with tiny MAXINT: values survive
        every reset and the final snapshot reflects the last writes."""
        from repro.errors import ResetInProgressError

        cluster = SimBackend(
            "bounded-ss-nonblocking",
            ClusterConfig(n=4, seed=seed, max_int=max_int),
        )
        rng = random.Random(seed)
        last = {}

        async def churn():
            for round_index in range(2 * max_int):
                node = rng.randrange(4)
                while True:
                    try:
                        await cluster.write(node, (round_index, node))
                        last[node] = (round_index, node)
                        break
                    except ResetInProgressError:
                        await cluster.tracker.wait_cycles(3)
            await cluster.tracker.wait_cycles(3)
            while True:
                try:
                    return await cluster.snapshot(0)
                except ResetInProgressError:
                    await cluster.tracker.wait_cycles(3)

        result = cluster.run_until(churn(), max_events=None)
        for node, value in last.items():
            assert result.values[node] == value
