"""Tests for the stacked ABD + double-collect snapshot baseline."""

from repro import ChannelConfig, ClusterConfig, SimBackend
from repro.analysis.linearizability import check_snapshot_history


def make(n=5, seed=0, **kwargs):
    return SimBackend("stacked", ClusterConfig(n=n, seed=seed, **kwargs))


class TestStackedSemantics:
    def test_write_then_snapshot(self):
        cluster = make()
        cluster.write_sync(0, "abd")
        result = cluster.snapshot_sync(1)
        assert result.values[0] == "abd"
        assert result.vector_clock[0] == 1

    def test_sequential_history_linearizable(self):
        cluster = make(seed=1)
        for node in range(5):
            cluster.write_sync(node, node * 2)
            cluster.snapshot_sync((node + 2) % 5)
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()

    def test_concurrent_history_linearizable(self):
        cluster = make(seed=2)

        async def workload():
            tasks = [cluster.spawn(cluster.write(i, i)) for i in range(5)]
            tasks += [cluster.spawn(cluster.snapshot(i)) for i in range(5)]
            await cluster.kernel.gather(tasks)

        cluster.run_until(workload())
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()

    def test_survives_minority_crash(self):
        cluster = make(seed=3)
        cluster.crash(3)
        cluster.crash(4)
        cluster.write_sync(0, "crashproof")
        assert cluster.snapshot_sync(1).values[0] == "crashproof"

    def test_lossy_channels(self):
        cluster = make(
            seed=4, channel=ChannelConfig(loss_probability=0.3)
        )
        cluster.write_sync(2, "lossy")
        assert cluster.snapshot_sync(0).values[2] == "lossy"


class TestStackedCosts:
    def test_write_cost_one_round_trip(self):
        """An ABD write is 2(n-1) messages — same as DGFR's write."""
        cluster = make()
        with cluster.metrics.window() as window:
            cluster.write_sync(0, "w")
        n = cluster.config.n
        stats = window.stats
        assert stats.messages("ABD_STORE") == n - 1
        assert stats.messages("ABD_STOREack") >= cluster.config.majority - 1

    def test_snapshot_costs_four_round_trips(self):
        """The 8n-vs-2n comparison (related work / benchmark E3):
        a clean stacked scan is 2 collects + 2 write-backs = ~8(n-1)
        messages, ~4x the DGFR non-blocking snapshot."""
        n = 5
        stacked = make(seed=5)
        stacked.write_sync(0, "x")
        with stacked.metrics.window() as window:
            stacked.snapshot_sync(1)
        stacked_msgs = window.stats.total_messages

        dgfr = SimBackend(
            "dgfr-nonblocking", ClusterConfig(n=n, seed=5)
        )
        dgfr.write_sync(0, "x")
        with dgfr.metrics.window() as dgfr_window:
            dgfr.snapshot_sync(1)
        dgfr_msgs = dgfr_window.stats.total_messages

        assert stacked_msgs >= 3 * dgfr_msgs
        # Requests alone: 4 phases x (n-1) messages.
        assert (
            window.stats.messages("ABD_COLLECT")
            + window.stats.messages("ABD_STORE")
            == 4 * (n - 1)
        )

    def test_scan_retries_under_interference(self):
        """A write between the two collects forces another scan round."""
        cluster = make(seed=6)

        async def workload():
            snap_task = cluster.spawn(cluster.snapshot(4))
            for i in range(5):
                await cluster.write(0, f"i{i}")
            return await snap_task

        with cluster.metrics.window() as window:
            cluster.run_until(workload())
        # More than one scan round: >4(n-1) request messages.
        requests = window.stats.messages("ABD_COLLECT", "ABD_STORE")
        assert requests > 4 * (cluster.config.n - 1)
