"""Tests for the sharded load generator, chaos storm, and E19 plumbing."""

import json

import pytest

from repro import ClusterConfig
from repro.shard import (
    ShardLoadSpec,
    run_shard_chaos,
    run_shard_load,
    write_shard_bench,
)
from repro.shard.experiments import baseline_capacity

pytestmark = pytest.mark.shard


def small_spec(**overrides):
    base = dict(clients=4, depth=1, duration=15.0, composes=2, seed=0)
    base.update(overrides)
    return ShardLoadSpec(**base)


class TestShardLoad:
    def test_closed_loop_report_shape(self):
        report = run_shard_load(
            shards=2,
            config=ClusterConfig(n=4, seed=0),
            spec=small_spec(),
        )
        assert report.ok, report.failures
        assert report.shards == 2 and report.backend == "sim"
        assert report.completed > 0
        assert report.submitted >= report.completed
        assert report.errors == 0
        assert report.throughput > 0
        assert set(report.per_shard) == {0, 1}
        assert report.composes == 2 and report.fenced_composes >= 0
        assert report.imbalance >= 1.0
        row = report.row()
        assert row["shards"] == 2 and "throughput" in row
        assert "K=2" in report.summary()

    def test_open_loop_mode(self):
        report = run_shard_load(
            shards=2,
            config=ClusterConfig(n=4, seed=1),
            spec=small_spec(mode="open", rate=1.0),
        )
        assert report.ok, report.failures
        assert report.spec.mode == "open"

    def test_zipf_skew_drives_imbalance(self):
        uniform = run_shard_load(
            shards=4,
            config=ClusterConfig(n=4, seed=2),
            spec=small_spec(clients=8, duration=20.0, skew=0.0),
        )
        skewed = run_shard_load(
            shards=4,
            config=ClusterConfig(n=4, seed=2),
            spec=small_spec(clients=8, duration=20.0, skew=1.5),
        )
        assert skewed.ok and uniform.ok
        # Hot keys concentrate on their home shards.
        assert skewed.imbalance > uniform.imbalance

    def test_deterministic_given_seed(self):
        reports = [
            run_shard_load(
                shards=2,
                config=ClusterConfig(n=4, seed=3),
                spec=small_spec(seed=3),
            )
            for _ in range(2)
        ]
        assert reports[0].completed == reports[1].completed
        assert reports[0].throughput == reports[1].throughput


class TestShardChaos:
    def test_storm_with_split_stays_linearizable(self):
        report = run_shard_chaos(
            shards=2, config=ClusterConfig(n=4, seed=0), seed=0, events=40
        )
        assert report.ok, report.failures
        assert report.splits == 1
        assert report.final_shards == 3
        assert report.composes > 0

    def test_seeds_vary_the_storm(self):
        a = run_shard_chaos(
            shards=2, config=ClusterConfig(n=4, seed=1), seed=1, events=30
        )
        b = run_shard_chaos(
            shards=2, config=ClusterConfig(n=4, seed=2), seed=2, events=30
        )
        assert a.ok and b.ok
        assert (a.writes, a.scans, a.crashes) != (b.writes, b.scans, b.crashes)


class TestBenchFile:
    def test_write_shard_bench_schema(self, tmp_path):
        reports = [
            run_shard_load(
                shards=k,
                config=ClusterConfig(n=4, seed=0),
                spec=small_spec(clients=4 * k),
            )
            for k in (1, 2)
        ]
        path = write_shard_bench(tmp_path / "BENCH_PR8.json", reports)
        payload = json.loads(path.read_text())
        assert payload["pr"] == 8
        assert payload["baseline"]["k1_capacity"] > 0
        assert [row["shards"] for row in payload["series"]] == [1, 2]
        headline = payload["headline"]
        assert headline["max_shards"] == 2
        assert headline["linearizable"] is True
        assert headline["speedup_vs_k1"] == pytest.approx(
            payload["series"][1]["throughput"]
            / payload["series"][0]["throughput"],
            abs=0.01,
        )

    def test_baseline_capacity_prefers_recorded_headline(self, tmp_path):
        bench = tmp_path / "BENCH_PR5.json"
        bench.write_text(
            json.dumps({"headline": {"saturated_throughput": 1.23}})
        )
        assert baseline_capacity(bench) == 1.23
        assert baseline_capacity(tmp_path / "missing.json") > 0
