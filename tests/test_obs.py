"""Tests for the observability layer: registry, spans, sessions, hooks."""

import pytest

from repro import ClusterConfig, SimBackend
from repro.errors import ObservabilityError
from repro.fault import TransientFaultInjector
from repro.obs import (
    Histogram,
    MetricsRegistry,
    Observability,
    SpanRecorder,
    current_session,
    session,
)
from repro.obs.observe import KernelStats


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        registry.gauge("b").set(2.5)
        registry.histogram("c").observe(1.0)
        registry.histogram("c").observe(3.0)
        values = registry.collect()
        assert values["a"] == 5
        assert values["b"] == 2.5
        assert values["c"] == {
            "count": 2,
            "sum": 4.0,
            "min": 1.0,
            "max": 3.0,
            "mean": 2.0,
        }

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.gauge("x")

    def test_unknown_value_raises(self):
        with pytest.raises(ObservabilityError, match="no metric"):
            MetricsRegistry().value("missing")

    def test_collector_runs_at_collect_time(self):
        registry = MetricsRegistry()
        state = {"depth": 7}
        registry.add_collector(
            lambda reg: reg.gauge("depth").set(state["depth"])
        )
        assert registry.collect()["depth"] == 7
        state["depth"] = 9
        assert registry.collect()["depth"] == 9

    def test_histogram_empty(self):
        assert Histogram("h").value["count"] == 0


class TestSpanRecorder:
    def test_begin_end_and_queries(self):
        recorder = SpanRecorder()
        root = recorder.begin(name="run", cluster=0, node=None, algorithm="a", start=0.0)
        op = recorder.begin(
            name="write",
            cluster=0,
            node=1,
            algorithm="a",
            start=1.0,
            parent_id=root.span_id,
            op_id=0,
        )
        assert recorder.open_spans() == [root, op]
        recorder.end(op, end=3.5)
        assert op.duration == 2.5
        assert op.status == "ok"
        assert recorder.ops() == [op]
        assert recorder.roots() == [root]
        assert recorder.by_name("write") == [op]

    def test_to_dict_round_trips_fields(self):
        recorder = SpanRecorder()
        span = recorder.begin(
            name="snapshot", cluster=0, node=2, algorithm="ss-always", start=1.0
        )
        span.phases.append((1.5, "snapshot.task_registered"))
        recorder.end(span, end=2.0, status="aborted")
        data = span.to_dict()
        assert data["name"] == "snapshot"
        assert data["node"] == 2
        assert data["status"] == "aborted"
        assert data["phases"] == [[1.5, "snapshot.task_registered"]]


class TestSessions:
    def test_no_ambient_session_by_default(self):
        assert current_session() is None
        cluster = SimBackend("ss-nonblocking", ClusterConfig(n=3))
        assert cluster.obs is None

    def test_ambient_session_attaches_clusters(self):
        with session() as obs:
            assert current_session() is obs
            cluster = SimBackend("ss-nonblocking", ClusterConfig(n=3))
            assert cluster.obs is not None
            assert cluster.obs.session is obs
            assert obs.clusters == [cluster.obs]
        assert current_session() is None

    def test_sessions_nest_innermost_wins(self):
        with session() as outer:
            with session() as inner:
                assert current_session() is inner
            assert current_session() is outer

    def test_attach_is_idempotent(self):
        obs = Observability()
        cluster = SimBackend("ss-nonblocking", ClusterConfig(n=3))
        first = obs.attach(cluster)
        assert obs.attach(cluster) is first
        assert len(obs.clusters) == 1


class TestOperationSpans:
    def test_write_and_snapshot_spans(self):
        with session() as obs:
            cluster = SimBackend("ss-nonblocking", ClusterConfig(n=4))
            cluster.write_sync(0, b"hello")
            cluster.snapshot_sync(1)
        obs.finish()
        ops = obs.recorder.ops()
        assert [s.name for s in ops] == ["write", "snapshot"]
        write = ops[0]
        assert write.node == 0
        assert write.status == "ok"
        assert write.end is not None and write.end >= write.start
        assert write.messages_by_kind.get("WRITE", 0) >= 3  # n-1 broadcasts
        assert write.message_bytes > 0
        assert any(label == "write.quorum_round" for _, label in write.phases)
        snapshot = ops[1]
        assert snapshot.parent_id == obs.clusters[0].root.span_id
        assert any(
            label == "snapshot.query_round" for _, label in snapshot.phases
        )

    def test_metric_catalog_populated(self):
        with session() as obs:
            cluster = SimBackend("ss-always", ClusterConfig(n=4, delta=2))
            cluster.write_sync(0, b"x")
            cluster.snapshot_sync(1)
            cluster.run_for(5.0)
        obs.finish()
        metrics = obs.collect()
        assert metrics["ops.total"] == 2
        assert metrics["ops.completed"] == 2
        assert metrics["kernel.events_dispatched"] > 0
        assert metrics["kernel.batches"] > 0
        assert metrics["kernel.largest_batch"] >= 1
        assert metrics["net.messages_total"] > 0
        assert metrics["net.messages.GOSSIP"] > 0
        assert metrics["stabilization.gossip_rounds"] > 0
        assert metrics["stabilization.corrupted_state_detections"] == 0

    def test_heal_counters_fire_on_corruption(self):
        with session() as obs:
            cluster = SimBackend("ss-nonblocking", ClusterConfig(n=4))
            cluster.write_sync(0, b"pre")
            TransientFaultInjector(cluster, seed=0).corrupt_registers()
            cluster.tracker.reset()
            cluster.run_until(cluster.tracker.wait_cycles(6), max_events=None)
        obs.finish()
        metrics = obs.collect()
        assert metrics["stabilization.corrupted_state_detections"] > 0

    def test_finish_closes_open_spans(self):
        with session() as obs:
            cluster = SimBackend("ss-nonblocking", ClusterConfig(n=4))
            cobs = cluster.obs
            span = cobs.begin_op(0, "write", op_id=0)
            assert cobs.active_span(0) is span
        obs.finish()
        assert span.end is not None
        assert span.status == "open"  # genuinely never completed
        assert cobs.active_span(0) is None
        assert obs.clusters[0].root.status == "ok"


class TestKernelStats:
    def test_record_batch_tracks_extremes(self):
        stats = KernelStats()
        stats.record_batch(3)
        stats.record_batch(10)
        stats.record_batch(1)
        assert stats.batches == 3
        assert stats.batch_events == 14
        assert stats.largest_batch == 10

    def test_kernel_counts_same_instant_batches(self):
        from repro.sim.kernel import Kernel

        kernel = Kernel()
        kernel.obs = KernelStats()
        hits = []
        for _ in range(5):
            kernel.call_at(1.0, hits.append, None)
        kernel.call_at(2.0, hits.append, None)
        kernel.run()
        assert len(hits) == 6
        assert kernel.obs.largest_batch == 5
        assert kernel.obs.batches == 2
        assert kernel.obs.batch_events == 6

    def test_timer_pool_hit_miss_accounting(self):
        from repro.sim.kernel import Kernel

        kernel = Kernel()
        kernel.obs = KernelStats()

        async def sleeper():
            await kernel.sleep(1.0)
            await kernel.sleep(1.0)

        kernel.run_until_complete(sleeper())
        assert kernel.obs.timer_pool_misses == 1  # first sleep allocates
        assert kernel.obs.timer_pool_hits == 1  # second reuses it


class TestQuantileHistogramEdges:
    def _hist(self):
        from repro.obs.registry import QuantileHistogram

        return QuantileHistogram("h")

    def test_empty_histogram_is_all_zero_and_json_safe(self):
        import json
        import math

        hist = self._hist()
        value = hist.value
        assert value["count"] == 0
        assert value["mean"] == 0.0
        assert value["p50"] == value["p95"] == value["p99"] == 0.0
        assert not any(
            isinstance(v, float) and math.isnan(v) for v in value.values()
        )
        json.dumps(value)

    def test_single_observation_is_returned_verbatim(self):
        hist = self._hist()
        hist.observe(7.25)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert hist.quantile(q) == 7.25

    def test_q0_and_q1_are_exact_extremes(self):
        hist = self._hist()
        for sample in (3.0, 9.0, 1.0, 5.0):
            hist.observe(sample)
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 9.0
        assert 1.0 <= hist.quantile(0.5) <= 9.0

    def test_out_of_range_quantile_raises(self):
        hist = self._hist()
        hist.observe(1.0)
        with pytest.raises(ObservabilityError):
            hist.quantile(-0.1)
        with pytest.raises(ObservabilityError):
            hist.quantile(1.1)

    def test_negative_samples_clamp_to_zero(self):
        hist = self._hist()
        hist.observe(-5.0)
        assert hist.quantile(0.0) == 0.0
        assert hist.value["min"] == 0.0


class TestRegistryMerge:
    """Portable snapshots: ``state()`` ships, ``merge_state()`` folds."""

    def _populated(self, offset=0):
        registry = MetricsRegistry()
        registry.counter("ops").inc(3 + offset)
        registry.gauge("depth").set(5.0 + offset)
        streaming = registry.histogram("bytes")
        tail = registry.quantile_histogram("latency")
        for i in range(4):
            streaming.observe(10.0 * (i + 1) + offset)
            tail.observe(1.0 + i + offset)
        return registry

    def test_state_is_json_safe_and_sorted(self):
        import json

        state = self._populated().state()
        assert list(state) == sorted(state)
        round_tripped = json.loads(json.dumps(state))
        target = MetricsRegistry()
        target.merge_state(round_tripped)  # string-keyed dicts still merge
        assert target.counter("ops").value == 3

    def test_merge_matches_observing_everything_in_one_registry(self):
        merged = self._populated(offset=0)
        merged.merge_state(self._populated(offset=100).state())

        combined = MetricsRegistry()
        combined.counter("ops").inc(3)
        combined.counter("ops").inc(103)
        streaming = combined.histogram("bytes")
        tail = combined.quantile_histogram("latency")
        for offset in (0, 100):
            for i in range(4):
                streaming.observe(10.0 * (i + 1) + offset)
                tail.observe(1.0 + i + offset)

        assert merged.counter("ops").value == combined.counter("ops").value
        assert merged.histogram("bytes").value == combined.histogram("bytes").value
        assert (
            merged.quantile_histogram("latency").value
            == combined.quantile_histogram("latency").value
        )

    def test_gauge_merge_is_last_write_wins(self):
        merged = self._populated(offset=0)
        merged.merge_state(self._populated(offset=100).state())
        assert merged.gauge("depth").value == 105.0

    def test_empty_snapshot_entries_are_no_ops(self):
        target = self._populated()
        before = target.quantile_histogram("latency").value
        empty = MetricsRegistry()
        empty.quantile_histogram("latency")  # created but never observed
        empty.counter("ops")
        target.merge_state(empty.state())
        assert target.quantile_histogram("latency").value == before
        assert target.counter("ops").value == 3

    def test_type_conflict_raises(self):
        target = MetricsRegistry()
        target.counter("x")
        other = MetricsRegistry()
        other.gauge("x").set(1.0)
        with pytest.raises(ObservabilityError):
            target.merge_state(other.state())

    def test_unknown_snapshot_type_raises(self):
        target = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            target.merge_state({"x": {"type": "bogus"}})
