"""Cross-module integration scenarios exercising rare execution paths."""

import pytest

from repro import ChannelConfig, ClusterConfig, SimBackend
from repro.analysis.history import HistoryRecorder
from repro.analysis.linearizability import check_snapshot_history
from repro.fault import TransientFaultInjector


def make(algorithm, n=5, seed=0, delta=0, **kwargs):
    return SimBackend(
        algorithm, ClusterConfig(n=n, seed=seed, delta=delta, **kwargs)
    )


class TestHelpingScheme:
    def test_helpers_complete_task_of_crashed_initiator(self):
        """Algorithm 3's helping: the task outlives its initiator's crash.

        With δ=0 every node adopts a seen task; if the initiator crashes
        right after its query round started, some helper still finishes
        the task and a majority stores the result via safeReg, so the
        resumed initiator finds its answer waiting."""
        cluster = make("ss-always", seed=1)

        async def run():
            snap_task = cluster.spawn(cluster.snapshot(2))
            # The task is broadcast by node 2's next do-forever iteration
            # (~t=2.0); crash just after it reached the helpers.
            await cluster.kernel.sleep(2.2)
            cluster.crash(2)
            await cluster.tracker.wait_cycles(4)
            holders = sum(
                1
                for node in cluster.processes
                if node.pnd_tsk[2].fnl is not None and node.node_id != 2
            )
            cluster.resume(2)
            await snap_task
            return holders

        holders = cluster.run_until(run(), max_events=None)
        assert holders >= 1

    def test_late_joiner_receives_result_via_save_forwarding(self):
        """Line 107: a node that queries a finished task gets the result
        forwarded by whoever holds it."""
        cluster = make("ss-always", seed=2)
        cluster.snapshot_sync(0)
        cluster.run_until(cluster.settle_cycles(2))
        # Simulate a node that lost the result (e.g. restarted): clear it.
        straggler = cluster.node(3)
        straggler.pnd_tsk[0].fnl = None
        # It serves the still-pending-for-it task; helping fills fnl back.
        cluster.run_until(cluster.settle_cycles(3))
        assert straggler.pnd_tsk[0].fnl is not None


class TestDetectableRestart:
    @pytest.mark.parametrize("algorithm", ["ss-nonblocking", "ss-always"])
    def test_restarted_node_recovers_state_via_protocol(self, algorithm):
        """A detectable restart wipes all variables; gossip plus the next
        operation rebuild a consistent view."""
        cluster = make(algorithm, seed=3, delta=2)
        cluster.write_sync(0, "before")
        cluster.write_sync(3, "mine")
        cluster.run_until(cluster.settle_cycles(2))
        cluster.crash(3)
        cluster.resume(3, restart=True)
        assert cluster.node(3).ts == 0  # wiped
        cluster.run_until(cluster.settle_cycles(4))
        # Gossip restored its own-entry timestamp knowledge...
        assert cluster.node(3).ts >= 1
        # ...and a fresh write by the restarted node wins over history.
        cluster.write_sync(3, "mine-again")
        result = cluster.snapshot_sync(1)
        assert result.values[3] == "mine-again"

    def test_restart_during_load_stays_linearizable(self):
        cluster = make("ss-nonblocking", seed=4)

        async def run():
            for round_index in range(3):
                await cluster.write(0, f"r{round_index}")
            cluster.crash(2)
            cluster.resume(2, restart=True)
            for round_index in range(3):
                await cluster.write(1, f"s{round_index}")
            return await cluster.snapshot(2)

        result = cluster.run_until(run(), max_events=None)
        assert result.values[0] == "r2"
        assert result.values[1] == "s2"
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()


class TestCorruptionDuringOperations:
    def test_corruption_mid_snapshot_still_terminates(self):
        """A transient fault landing while a snapshot is in flight may
        abort nothing: the operation either completes or the recovered
        system serves a retry."""
        cluster = make("ss-always", seed=5, delta=2)

        async def run():
            snap_task = cluster.spawn(cluster.snapshot(0))
            await cluster.kernel.sleep(0.5)
            TransientFaultInjector(cluster, seed=5).corrupt_snapshot_indices()
            try:
                await cluster.kernel.wait_for(snap_task, timeout=400.0)
                return True
            except TimeoutError:
                return False

        completed = cluster.run_until(run(), max_events=None)
        # Either outcome is acceptable during recovery; afterwards the
        # object must serve fresh operations.
        cluster.history = HistoryRecorder()
        cluster.write_sync(1, "post")
        assert cluster.snapshot_sync(2).values[1] == "post"
        assert completed in (True, False)

    def test_post_recovery_snapshot_reflects_surviving_writes(self):
        cluster = make("ss-nonblocking", seed=6)
        cluster.write_sync(0, "survivor")
        cluster.run_until(cluster.settle_cycles(2))
        injector = TransientFaultInjector(cluster, seed=6)
        injector.corrupt_write_indices()  # indices only; registers intact
        cluster.run_until(cluster.settle_cycles(4))
        assert cluster.snapshot_sync(1).values[0] == "survivor"


class TestMixedFaults:
    def test_loss_duplication_crash_and_corruption_together(self):
        """The full gauntlet: lossy duplicating channels, one crash, one
        transient corruption — post-recovery operations stay correct."""
        cluster = make(
            "ss-always",
            seed=7,
            delta=1,
            channel=ChannelConfig(
                loss_probability=0.15, duplication_probability=0.1
            ),
        )
        cluster.write_sync(0, "start")
        cluster.crash(4)
        TransientFaultInjector(cluster, seed=7).corrupt_registers(
            node_ids=[1]
        )
        cluster.run_until(cluster.settle_cycles(5), max_events=None)
        cluster.history = HistoryRecorder()
        for node in range(4):
            cluster.write_sync(node, f"v{node}")
        result = cluster.snapshot_sync(0)
        assert result.values[:4] == ("v0", "v1", "v2", "v3")
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()

    def test_duplicated_save_messages_idempotent(self):
        """Channel duplication must not double-apply snapshot results."""
        cluster = make(
            "ss-always",
            seed=8,
            channel=ChannelConfig(duplication_probability=0.9),
        )
        first = cluster.snapshot_sync(0)
        cluster.write_sync(1, "w")
        second = cluster.snapshot_sync(0)
        assert first.vector_clock <= second.vector_clock
        assert cluster.node(0).pnd_tsk[0].sns == 2
