"""Unit tests for the register lattice types."""

import pytest

from repro.core.register import BOTTOM, RegisterArray, TimestampedValue
from repro.errors import ConfigurationError


class TestTimestampedValue:
    def test_bottom_is_minimal(self):
        assert BOTTOM.is_bottom
        assert BOTTOM.precedes_or_equals(TimestampedValue(1, "x"))
        assert not TimestampedValue(1, "x").precedes_or_equals(BOTTOM)

    def test_order_ignores_value(self):
        a = TimestampedValue(3, "a")
        b = TimestampedValue(3, "b")
        assert a.precedes_or_equals(b)
        assert b.precedes_or_equals(a)

    def test_max_with_keeps_larger_ts(self):
        low = TimestampedValue(1, "low")
        high = TimestampedValue(2, "high")
        assert low.max_with(high) is high
        assert high.max_with(low) is high

    def test_max_with_is_left_biased_on_ties(self):
        a = TimestampedValue(2, "a")
        b = TimestampedValue(2, "b")
        assert a.max_with(b) is a

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ConfigurationError):
            TimestampedValue(-1, "x")

    def test_immutability(self):
        value = TimestampedValue(1, "x")
        with pytest.raises(AttributeError):
            value.ts = 5  # type: ignore[misc]


class TestRegisterArray:
    def test_initial_state_is_all_bottom(self):
        reg = RegisterArray(4)
        assert len(reg) == 4
        assert all(entry.is_bottom for entry in reg)
        assert reg.vector_clock() == (0, 0, 0, 0)

    def test_constructor_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            RegisterArray(0)
        with pytest.raises(ConfigurationError):
            RegisterArray([])

    def test_constructor_rejects_non_values(self):
        with pytest.raises(ConfigurationError):
            RegisterArray([1, 2])  # type: ignore[list-item]

    def test_setitem_type_checked(self):
        reg = RegisterArray(2)
        with pytest.raises(ConfigurationError):
            reg[0] = (1, "x")  # type: ignore[call-overload]

    def test_merge_from_is_pointwise_max(self):
        a = RegisterArray(3)
        b = RegisterArray(3)
        a[0] = TimestampedValue(5, "a0")
        b[0] = TimestampedValue(3, "b0")
        b[1] = TimestampedValue(7, "b1")
        a.merge_from(b)
        assert a[0].value == "a0"
        assert a[1].value == "b1"
        assert a[2].is_bottom

    def test_merge_entry(self):
        reg = RegisterArray(2)
        reg.merge_entry(1, TimestampedValue(4, "x"))
        assert reg[1].ts == 4
        reg.merge_entry(1, TimestampedValue(2, "older"))
        assert reg[1].value == "x"

    def test_precedes_or_equals_pointwise(self):
        a = RegisterArray(2)
        b = RegisterArray(2)
        b[0] = TimestampedValue(1, "x")
        assert a.precedes_or_equals(b)
        assert not b.precedes_or_equals(a)

    def test_incomparable_arrays(self):
        a = RegisterArray(2)
        b = RegisterArray(2)
        a[0] = TimestampedValue(1, "x")
        b[1] = TimestampedValue(1, "y")
        assert not a.precedes_or_equals(b)
        assert not b.precedes_or_equals(a)

    def test_strictly_precedes(self):
        a = RegisterArray(2)
        b = RegisterArray(2)
        assert not a.strictly_precedes(b)  # equal
        b[0] = TimestampedValue(1, "x")
        assert a.strictly_precedes(b)
        assert not b.strictly_precedes(a)

    def test_copy_is_independent(self):
        a = RegisterArray(2)
        b = a.copy()
        b[0] = TimestampedValue(9, "mut")
        assert a[0].is_bottom
        assert a != b

    def test_equality_and_hash(self):
        a = RegisterArray(2)
        b = RegisterArray(2)
        assert a == b
        assert hash(a) == hash(b)
        a[0] = TimestampedValue(1, "x")
        assert a != b

    def test_size_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            RegisterArray(2).merge_from(RegisterArray(3))
        with pytest.raises(ConfigurationError):
            RegisterArray(2).precedes_or_equals(RegisterArray(3))

    def test_vector_clock_and_values(self):
        reg = RegisterArray(3)
        reg[1] = TimestampedValue(2, "v1")
        assert reg.vector_clock() == (0, 2, 0)
        assert reg.snapshot_values() == (None, "v1", None)
        assert reg.max_timestamp() == 2

    def test_merge_is_idempotent(self):
        a = RegisterArray(3)
        a[0] = TimestampedValue(5, "x")
        before = a.copy()
        a.merge_from(before)
        assert a == before

    def test_equality_with_other_types(self):
        assert RegisterArray(2) != "not a register"
