"""Tests for the ``python -m repro`` command-line interface."""

from repro.__main__ import main


class TestCli:
    def test_help(self, capsys):
        assert main([]) == 0
        assert "experiments" in capsys.readouterr().out

    def test_help_flag(self, capsys):
        assert main(["--help"]) == 0
        assert "figures" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().out

    def test_algorithms_lists_registry(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in (
            "dgfr-nonblocking",
            "ss-nonblocking",
            "dgfr-always",
            "ss-always",
            "stacked",
            "bounded-ss-nonblocking",
            "bounded-ss-always",
        ):
            assert name in out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "e01"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out
        assert "write_msgs" in out

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "e99"]) == 2

    def test_figures_single(self, capsys):
        assert main(["figures", "fig1-upper"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1 (upper)" in out
        assert "WRITE" in out

    def test_figures_unknown(self, capsys):
        assert main(["figures", "fig99"]) == 2

    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "consistent after 6 cycles: True" in out
        assert "recovered" in out


class TestVerifyCommand:
    def test_verify_default_algorithms(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "ss-nonblocking" in out
        assert "all schedules OK" in out

    def test_verify_single_algorithm(self, capsys):
        assert main(["verify", "dgfr-nonblocking"]) == 0
