"""Tests for the ``python -m repro`` command-line interface."""

import json
import sys
from pathlib import Path

import pytest

from repro.__main__ import main

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
from check_trace_schema import validate  # noqa: E402


class TestCli:
    def test_help(self, capsys):
        assert main([]) == 0
        assert "experiments" in capsys.readouterr().out

    def test_help_flag(self, capsys):
        assert main(["--help"]) == 0
        assert "figures" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().out

    def test_algorithms_lists_registry(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in (
            "dgfr-nonblocking",
            "ss-nonblocking",
            "dgfr-always",
            "ss-always",
            "stacked",
            "bounded-ss-nonblocking",
            "bounded-ss-always",
        ):
            assert name in out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "e01"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out
        assert "write_msgs" in out

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "e99"]) == 2

    def test_experiments_ids_are_case_insensitive(self, capsys):
        assert main(["experiments", "E01"]) == 0
        assert "E1" in capsys.readouterr().out

    def test_figures_single(self, capsys):
        assert main(["figures", "fig1-upper"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1 (upper)" in out
        assert "WRITE" in out

    def test_figures_unknown(self, capsys):
        assert main(["figures", "fig99"]) == 2

    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "consistent after 6 cycles: True" in out
        assert "recovered" in out


class TestObservabilityFlags:
    def test_experiments_trace_out_writes_valid_chrome_trace(
        self, capsys, tmp_path
    ):
        out = tmp_path / "trace.json"
        assert main(["experiments", "E01", "--trace-out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "wrote Chrome trace" in stdout
        assert "perfetto" in stdout
        payload = json.loads(out.read_text())
        assert validate(payload) == []
        ops = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "op"
        ]
        assert ops, "expected operation spans in the E01 trace"
        assert {e["name"] for e in ops} == {"write", "snapshot"}

    def test_experiments_jsonl_out_and_stats(self, capsys, tmp_path):
        out = tmp_path / "events.jsonl"
        assert main(
            ["experiments", "e01", "--jsonl-out", str(out), "--stats"]
        ) == 0
        stdout = capsys.readouterr().out
        assert "metrics" in stdout
        assert "net.messages_total" in stdout
        records = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        assert records[0]["type"] == "session"
        assert {r["type"] for r in records} == {
            "session",
            "span",
            "message",
            "health",
            "metric",
        }

    def test_capture_forces_jobs_serial(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(
            ["experiments", "e01", "--jobs", "4", "--trace-out", str(out)]
        ) == 0
        captured = capsys.readouterr()
        assert "forcing --jobs 1" in captured.err
        assert validate(json.loads(out.read_text())) == []

    def test_trace_out_requires_a_path(self):
        import pytest

        with pytest.raises(SystemExit, match="requires a file path"):
            main(["experiments", "e01", "--trace-out"])

    def test_chaos_accepts_stats(self, capsys):
        assert main(["chaos", "--budget", "40", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "metrics" in out
        assert "ops.total" in out


class TestVerifyCommand:
    def test_verify_default_algorithms(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "ss-nonblocking" in out
        assert "all schedules OK" in out

    def test_verify_single_algorithm(self, capsys):
        assert main(
            ["verify", "--algorithm", "dgfr-nonblocking", "--budget", "50"]
        ) == 0

    def test_verify_positional_algorithm_removed(self):
        with pytest.raises(SystemExit, match="--algorithm NAME"):
            main(["verify", "dgfr-nonblocking", "--budget", "50"])

    def test_verify_unified_flags(self, capsys):
        assert main(
            [
                "verify",
                "--algorithm",
                "dgfr-nonblocking",
                "--seeds",
                "2",
                "--budget",
                "40",
                "--jobs",
                "2",
            ]
        ) == 0
        captured = capsys.readouterr()
        out = captured.out
        assert "[dfs        ]" in out
        assert "[walk s=0" in out
        assert "[walk s=1" in out
        assert captured.err == ""


class TestCampaignFlagUnification:
    """Chaos, verify, and fuzz share one flag/report vocabulary."""

    def test_chaos_unified_flags(self, capsys):
        assert main(
            ["chaos", "--budget", "30", "--seeds", "2", "--jobs", "2"]
        ) == 0
        captured = capsys.readouterr()
        assert "seed 0:" in captured.out
        assert "seed 1:" in captured.out
        assert captured.err == ""

    def test_chaos_positional_spelling_removed(self):
        with pytest.raises(SystemExit, match="--budget N / --seed-start S"):
            main(["chaos", "30", "1"])

    def test_events_flag_removed_names_budget(self):
        with pytest.raises(SystemExit, match="use --budget N"):
            main(["chaos", "--events", "30"])

    def test_algo_flag_removed_names_algorithm(self):
        with pytest.raises(SystemExit, match="use --algorithm NAME"):
            main(["chaos", "--budget", "30", "--algo", "ss-nonblocking"])

    def test_seed_start_offsets_the_seed_range(self, capsys):
        assert main(
            ["chaos", "--budget", "30", "--seeds", "2", "--seed-start", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "seed 5:" in out
        assert "seed 6:" in out


class TestFuzzCommand:
    def test_fuzz_clean_algorithm_passes(self, capsys):
        assert main(["fuzz", "--seeds", "2", "--budget", "15"]) == 0
        out = capsys.readouterr().out
        assert "seed 0: 15 events: OK" in out
        assert "seed 1: 15 events: OK" in out

    def test_fuzz_finds_shrinks_and_replay_reproduces(self, capsys, tmp_path):
        import broken_algorithms  # noqa: F401  (registers broken-first-ack)

        assert main(
            [
                "fuzz",
                "--algorithm",
                "broken-first-ack",
                "--seed-start",
                "10",
                "--seeds",
                "1",
                "--budget",
                "40",
                "--out",
                str(tmp_path),
            ]
        ) == 1
        out = capsys.readouterr().out
        assert "FAILURES" in out
        assert "shrunk 40 ->" in out
        counterexamples = sorted(tmp_path.glob("counterexample-*.json"))
        assert len(counterexamples) == 1

        assert main(["replay", str(counterexamples[0])]) == 0
        replay_out = capsys.readouterr().out
        assert "reproduced bit-identically" in replay_out
        assert "FAILURE:" in replay_out

    def test_replay_rejects_missing_argument(self):
        import pytest

        with pytest.raises(SystemExit, match="usage"):
            main(["replay"])


class TestShardCommands:
    def test_shard_campaign_runs_and_checks(self, capsys):
        assert main(
            ["shard", "--shards", "2", "--seeds", "2", "--budget", "15"]
        ) == 0
        out = capsys.readouterr().out
        assert "K=2" in out
        assert "linearizable" in out
        assert "seed 0:" in out and "seed 1:" in out

    def test_load_routes_to_fabric_with_shards(self, capsys):
        assert main(
            ["load", "--shards", "2", "--clients", "4", "--depth", "1",
             "--budget", "15"]
        ) == 0
        out = capsys.readouterr().out
        assert "K=2" in out and "composed cuts" in out

    def test_chaos_routes_to_fabric_with_shards(self, capsys):
        assert main(["chaos", "--shards", "2", "--budget", "25"]) == 0
        out = capsys.readouterr().out
        assert "splits" in out and "OK" in out

    def test_shards_flag_validation(self):
        with pytest.raises(SystemExit, match=">= 1"):
            main(["shard", "--shards", "0"])
        with pytest.raises(SystemExit, match="integer"):
            main(["load", "--shards", "two"])

    def test_shard_sweep_writes_bench_file(self, capsys, tmp_path, monkeypatch):
        from repro.shard import experiments as shard_experiments

        monkeypatch.setattr(
            shard_experiments, "DEFAULT_SHARD_COUNTS", (1, 2)
        )
        out_file = tmp_path / "BENCH_PR8.json"
        assert main(
            ["shard", "--sweep", "--budget", "15", "--out", str(out_file)]
        ) == 0
        payload = json.loads(out_file.read_text())
        assert payload["pr"] == 8
        assert [row["shards"] for row in payload["series"]] == [1, 2]
        assert payload["headline"]["linearizable"] is True


class TestBackendsJson:
    def test_backends_json_document(self, capsys):
        assert main(["backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["backends"]) == {"sim", "asyncio", "udp"}
        assert payload["backends"]["sim"]["simulated_time"] is True
        assert payload["backends"]["udp"]["real_sockets"] is True
        assert "simulated_time" in payload["notes"]

    def test_backends_rejects_unknown_args(self):
        with pytest.raises(SystemExit, match="unexpected"):
            main(["backends", "--bogus"])
