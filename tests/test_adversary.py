"""Tests for adversarial partition scheduling."""

from repro import ClusterConfig, SimBackend
from repro.analysis.linearizability import check_snapshot_history
from repro.fault import CrashEvent, CrashSchedule, PartitionSchedule, isolate
from repro.fault.adversary import flapping_partition


def make(algorithm="ss-nonblocking", n=5, seed=0, **kwargs):
    return SimBackend(algorithm, ClusterConfig(n=n, seed=seed, **kwargs))


class TestIsolation:
    def test_isolated_minority_cannot_complete_ops(self):
        cluster = make()
        isolate(cluster, {3, 4})
        # Majority side still works.
        cluster.write_sync(0, "majority-side")
        assert cluster.snapshot_sync(1).values[0] == "majority-side"

    def test_minority_op_stalls_until_heal(self):
        cluster = make(seed=1)
        isolate(cluster, {3, 4})

        async def run():
            write_task = cluster.spawn(cluster.write(3, "islanded"))
            await cluster.kernel.sleep(60.0)
            assert not write_task.done()
            cluster.network.heal()
            await write_task
            return await cluster.snapshot(0)

        result = cluster.run_until(run(), max_events=None)
        assert result.values[3] == "islanded"

    def test_majority_partition_keeps_object_live(self):
        """The classic availability property: the majority side serves
        both reads and writes while a minority is cut off."""
        cluster = make(seed=2)
        isolate(cluster, {4})
        for node in range(4):
            cluster.write_sync(node, f"v{node}")
        result = cluster.snapshot_sync(0)
        assert result.values[:4] == ("v0", "v1", "v2", "v3")


class TestFlapping:
    def test_flap_blocks_cross_group_channels_and_heal_restores(self):
        """Direct connectivity check: each flap blocks exactly the
        cross-group channels, and the paired heal unblocks every one."""
        cluster = make(seed=9)
        groups = ({0, 1, 2}, {3, 4})
        flapping_partition(cluster, groups, period=5.0, flaps=2)

        def blocked_pairs():
            return {
                (a, b)
                for a in range(5)
                for b in range(5)
                if a != b and cluster.network.channel(a, b).blocked
            }

        cross = {
            (a, b)
            for a in range(5)
            for b in range(5)
            if a != b and ({a} <= groups[0]) != ({b} <= groups[0])
        }
        assert blocked_pairs() == set()  # first flap starts at t=period
        cluster.run_for(6.0)  # inside flap 1 (t in [5, 10))
        assert blocked_pairs() == cross
        cluster.run_for(5.0)  # past the heal at t=10
        assert blocked_pairs() == set()
        cluster.run_for(5.0)  # inside flap 2 (t in [15, 20))
        assert blocked_pairs() == cross
        cluster.run_for(5.0)  # past the final heal at t=20
        assert blocked_pairs() == set()

    def test_operations_survive_flapping(self):
        cluster = make(seed=3)
        flapping_partition(
            cluster, ({0, 1, 2}, {3, 4}), period=5.0, flaps=4
        )

        async def run():
            for round_index in range(6):
                await cluster.write(0, f"r{round_index}")
                await cluster.kernel.sleep(7.0)
            return await cluster.snapshot(1)

        result = cluster.run_until(run(), max_events=None)
        assert result.values[0] == "r5"
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()


class TestPartitionSchedule:
    def test_scripted_partition_applies_and_heals(self):
        cluster = make(seed=4)
        schedule = PartitionSchedule(
            cluster,
            [
                (10.0, ({0, 1}, {2, 3, 4})),
                (30.0, ()),  # heal
            ],
        )
        schedule.install()

        async def run():
            await cluster.write(0, "pre")
            await cluster.kernel.sleep(15.0)
            # Node 0 is now on the minority side: its write stalls.
            write_task = cluster.spawn(cluster.write(0, "during"))
            await cluster.kernel.sleep(5.0)
            assert not write_task.done()
            await write_task  # completes after the heal at t=30
            return cluster.kernel.now

        finished_at = cluster.run_until(run(), max_events=None)
        assert finished_at >= 30.0
        assert schedule.applied == [10.0, 30.0]

    def test_combined_with_crash_schedule(self):
        cluster = make(seed=5)
        crashes = CrashSchedule(
            cluster,
            [
                CrashEvent(at=5.0, node_id=4, action="crash"),
                CrashEvent(at=25.0, node_id=4, action="resume"),
            ],
        )
        crashes.install()

        async def run():
            await cluster.kernel.sleep(10.0)
            await cluster.write(0, "with-4-down")
            await cluster.kernel.sleep(20.0)
            return await cluster.snapshot(4)

        result = cluster.run_until(run(), max_events=None)
        assert result.values[0] == "with-4-down"
        assert [e.action for e in crashes.applied] == ["crash", "resume"]

    def test_partition_schedule_composes_with_crash_schedule(self):
        """A partition overlapping a crash: the majority side must stay
        live through both, and the history must stay linearizable after
        everything heals."""
        cluster = make(seed=6)
        partitions = PartitionSchedule(
            cluster,
            [
                (10.0, ({3, 4}, {0, 1, 2})),
                (40.0, ()),  # heal
            ],
        )
        partitions.install()
        crashes = CrashSchedule(
            cluster,
            [
                CrashEvent(at=15.0, node_id=2, action="crash"),
                CrashEvent(at=30.0, node_id=2, action="resume"),
            ],
        )
        crashes.install()

        async def run():
            await cluster.write(0, "before")
            await cluster.kernel.sleep(20.0)
            # t=20: nodes {3,4} partitioned away AND node 2 crashed — the
            # connected component {0,1} is below a majority, so nothing
            # completes until node 2 resumes at t=30.
            write_task = cluster.spawn(cluster.write(0, "squeezed"))
            await cluster.kernel.sleep(5.0)
            assert not write_task.done()
            await write_task
            assert cluster.kernel.now >= 30.0
            await cluster.kernel.sleep(30.0)  # past the heal at t=40
            return await cluster.snapshot(4)

        result = cluster.run_until(run(), max_events=None)
        assert result.values[0] == "squeezed"
        assert partitions.applied == [10.0, 40.0]
        assert [e.action for e in crashes.applied] == ["crash", "resume"]
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()
        # Connectivity is fully restored after the heal.
        assert not any(
            cluster.network.channel(a, b).blocked
            for a in range(5)
            for b in range(5)
            if a != b
        )
