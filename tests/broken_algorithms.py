"""Deliberately buggy algorithms shared across test modules.

Kept out of the ``test_*`` namespace so pytest never collects this file:
under importlib import mode pytest gives each test file its own module
object, so defining (and registering) an algorithm inside a test module
that other tests also ``import`` plainly would execute the registration
twice with two distinct classes.  A plain helper module is imported
exactly once through ``sys.path`` (see ``conftest.py``).
"""

from repro.core.cluster import register_algorithm
from repro.core.dgfr_nonblocking import DgfrNonBlocking


class BrokenFirstAckOnly(DgfrNonBlocking):
    """Deliberately wrong: the snapshot merges only the FIRST ack instead
    of a full majority — a quorum-intersection bug.  Which ack arrives
    first is a pure scheduling choice, so only some interleavings return
    a stale (non-linearizable) view; finding one is the model checker's
    (and the fuzzer's) job."""

    async def _query_round(self) -> None:
        from repro.core.dgfr_nonblocking import (
            SnapshotAckMessage,
            SnapshotMessage,
        )
        from repro.net.quorum import AckCollector, broadcast_until

        def matches(sender: int, msg) -> bool:
            return msg.ssn == self.ssn and sender != self.node_id

        with AckCollector(
            self, SnapshotAckMessage.KIND, 1, match=matches
        ) as collector:
            await broadcast_until(
                self,
                lambda: SnapshotMessage(reg=self.reg.copy(), ssn=self.ssn),
                collector,
            )
            replies = collector.reply_messages()
        self.merge(msg.reg for msg in replies[:1])


register_algorithm("broken-first-ack", BrokenFirstAckOnly)
