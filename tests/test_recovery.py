"""Transient-fault recovery tests: Theorems 1 and 2, Definition 1.

The paper's claims: starting from an *arbitrary* state, a fair execution
of the self-stabilizing algorithms reaches a consistent state (Definition
1) within O(1) asynchronous cycles, after which behaviour is legal
(operations terminate and histories are linearizable).
"""

import pytest

from repro import ChannelConfig, ClusterConfig, SimBackend
from repro.analysis.history import HistoryRecorder
from repro.analysis.invariants import (
    definition1_consistent,
    sns_consistent,
    ssn_consistent,
    ts_consistent,
    vc_consistent,
)
from repro.analysis.linearizability import check_snapshot_history
from repro.fault import TransientFaultInjector

#: Cycle budget we allow for "O(1) cycles"; the measured value in
#: benchmarks E7/E8 is ~2-3 and flat in n.
RECOVERY_CYCLES = 8


def make(algorithm, n=5, seed=0, delta=2, **kwargs):
    return SimBackend(
        algorithm, ClusterConfig(n=n, seed=seed, delta=delta, **kwargs)
    )


def recover(cluster, cycles=RECOVERY_CYCLES):
    cluster.tracker.reset()
    cluster.run_until(cluster.tracker.wait_cycles(cycles), max_events=None)


@pytest.mark.parametrize("algorithm", ["ss-nonblocking", "ss-always"])
class TestTheoremRecovery:
    def test_ts_consistency_after_index_corruption(self, algorithm):
        cluster = make(algorithm)
        cluster.write_sync(0, "pre")
        injector = TransientFaultInjector(cluster, seed=1)
        injector.corrupt_write_indices()
        recover(cluster)
        report = ts_consistent(cluster)
        assert report.ok, report.failures

    def test_ts_consistency_after_register_corruption(self, algorithm):
        cluster = make(algorithm)
        injector = TransientFaultInjector(cluster, seed=2)
        injector.corrupt_registers()
        recover(cluster)
        report = ts_consistent(cluster)
        assert report.ok, report.failures

    def test_ssn_consistency_after_corruption(self, algorithm):
        cluster = make(algorithm)
        injector = TransientFaultInjector(cluster, seed=3)
        injector.corrupt_snapshot_indices()
        recover(cluster)
        report = ssn_consistent(cluster)
        assert report.ok, report.failures

    def test_full_scramble_reaches_definition1(self, algorithm):
        cluster = make(algorithm)
        cluster.write_sync(0, "pre")
        cluster.snapshot_sync(1)
        injector = TransientFaultInjector(cluster, seed=4)
        injector.scramble_everything()
        recover(cluster)
        report = definition1_consistent(cluster)
        assert report.ok, report.failures

    def test_operations_work_after_recovery(self, algorithm):
        cluster = make(algorithm)
        injector = TransientFaultInjector(cluster, seed=5)
        injector.scramble_everything()
        recover(cluster)
        cluster.history = HistoryRecorder()  # fresh post-recovery history
        for node in range(5):
            cluster.write_sync(node, f"post-{node}")
        result = cluster.snapshot_sync(0)
        assert result.values == tuple(f"post-{k}" for k in range(5))
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()

    def test_recovery_under_lossy_channels(self, algorithm):
        cluster = make(
            algorithm,
            seed=6,
            channel=ChannelConfig(
                loss_probability=0.2, duplication_probability=0.1
            ),
        )
        injector = TransientFaultInjector(cluster, seed=6)
        injector.scramble_everything()
        recover(cluster, cycles=12)
        report = definition1_consistent(cluster)
        assert report.ok, report.failures

    def test_recovery_is_cycle_bounded_across_sizes(self, algorithm):
        """O(1) cycles: the budget does not grow with n."""
        for n in (3, 5, 9):
            cluster = make(algorithm, n=n, seed=7)
            injector = TransientFaultInjector(cluster, seed=7)
            injector.scramble_everything()
            recover(cluster)
            report = definition1_consistent(cluster)
            assert report.ok, (n, report.failures)

    def test_monotone_indices_never_decrease(self, algorithm):
        """Self-stabilization argument (1): ts values never decrement."""
        cluster = make(algorithm, seed=8)
        injector = TransientFaultInjector(cluster, seed=8)
        injector.corrupt_write_indices(value=1000)
        observed = []

        def sample(_cycle):
            observed.append([p.ts for p in cluster.processes])

        cluster.tracker.add_boundary_listener(sample)
        recover(cluster)
        for earlier, later in zip(observed, observed[1:]):
            assert all(a <= b for a, b in zip(earlier, later))
        assert all(ts >= 1000 for ts in observed[-1])

    def test_writes_win_over_corrupted_registers(self, algorithm):
        """After recovery a fresh write dominates corrupted-high entries
        (Theorem 1's point: the next write's ts+1 is globally maximal)."""
        cluster = make(algorithm, seed=9)
        injector = TransientFaultInjector(cluster, seed=9)
        injector.corrupt_registers(entries=[0])
        recover(cluster)
        cluster.write_sync(0, "authoritative")
        result = cluster.snapshot_sync(1)
        assert result.values[0] == "authoritative"


class TestAlgorithm3SpecificRecovery:
    def test_sns_invariant_after_pnd_tsk_corruption(self):
        cluster = make("ss-always")
        injector = TransientFaultInjector(cluster, seed=10)
        injector.corrupt_pending_tasks()
        recover(cluster)
        report = sns_consistent(cluster)
        assert report.ok, report.failures

    def test_vc_invariant_after_pnd_tsk_corruption(self):
        cluster = make("ss-always")
        injector = TransientFaultInjector(cluster, seed=11)
        injector.corrupt_pending_tasks()
        recover(cluster)
        report = vc_consistent(cluster)
        assert report.ok, report.failures

    def test_snapshot_terminates_despite_prior_corruption(self):
        """Theorem 3 under Theorem 2's precondition: after the consistent
        state is reached, a pending snapshot task completes."""
        cluster = make("ss-always", delta=2, seed=12)
        injector = TransientFaultInjector(cluster, seed=12)
        injector.corrupt_pending_tasks()
        injector.corrupt_snapshot_indices()
        recover(cluster)
        result = cluster.snapshot_sync(3)
        assert result is not None

    def test_phantom_task_entries_cleared(self):
        """Line 77: a corrupted own-task entry is re-asserted from sns."""
        cluster = make("ss-always", seed=13)
        node = cluster.node(2)
        from repro.core.ss_always import PendingTask

        node.pnd_tsk[2] = PendingTask(sns=77, vc=None, fnl=None)
        recover(cluster)
        assert node.sns >= 77
        assert node.pnd_tsk[2].sns == node.sns

    def test_illogical_vector_clock_reset(self):
        """Line 76: vc entries exceeding the current VC are cleared."""
        cluster = make("ss-always", seed=14)
        node = cluster.node(1)
        node.pnd_tsk[3].vc = (10**6,) * 5
        recover(cluster, cycles=2)
        assert node.pnd_tsk[3].vc is None

    def test_corrupted_fnl_does_not_wedge_future_snapshots(self):
        """A garbage fnl for a stale index is superseded by the next
        operation's higher sns."""
        cluster = make("ss-always", seed=15)
        from repro.core.register import RegisterArray, TimestampedValue

        garbage = RegisterArray(5)
        garbage[0] = TimestampedValue(999, "junk")
        node = cluster.node(0)
        node.pnd_tsk[0].fnl = garbage
        recover(cluster)
        result = cluster.snapshot_sync(0)
        # The new task (higher sns) got a real result; values may include
        # healed-but-arbitrary timestamps, never a wedged wait.
        assert result is not None


class TestFaultInjectorMechanics:
    def test_targets_specific_nodes(self):
        cluster = make("ss-nonblocking")
        injector = TransientFaultInjector(cluster, seed=0)
        injector.corrupt_write_indices(node_ids=[2], value=42)
        assert cluster.node(2).ts == 42
        assert cluster.node(0).ts == 0

    def test_scramble_channels_counts(self):
        cluster = make("ss-nonblocking")
        cluster.node(0).broadcast(
            __import__(
                "repro.core.base", fromlist=["WriteMessage"]
            ).WriteMessage(reg=cluster.node(0).reg.copy())
        )
        injector = TransientFaultInjector(cluster, seed=0)
        assert injector.scramble_channels(drop_probability=0.0) >= 1

    def test_flush_channels(self):
        cluster = make("ss-nonblocking")
        cluster.node(0).broadcast(
            __import__(
                "repro.core.base", fromlist=["WriteMessage"]
            ).WriteMessage(reg=cluster.node(0).reg.copy())
        )
        assert injector_total_in_flight(cluster) >= 1
        injector = TransientFaultInjector(cluster, seed=0)
        assert injector.flush_channels() >= 1
        assert injector_total_in_flight(cluster) == 0

    def test_reproducible_corruption(self):
        values = []
        for _ in range(2):
            cluster = make("ss-nonblocking")
            injector = TransientFaultInjector(cluster, seed=99)
            injector.corrupt_write_indices()
            values.append([p.ts for p in cluster.processes])
        assert values[0] == values[1]


def injector_total_in_flight(cluster):
    return sum(ch.in_flight_count for ch in cluster.network.channels())
