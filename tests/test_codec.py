"""Tests for the binary wire codec (round-trips, malformed input)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import WriteAckMessage, WriteMessage
from repro.core.dgfr_nonblocking import SnapshotAckMessage, SnapshotMessage
from repro.core.register import RegisterArray, TimestampedValue
from repro.core.ss_always import (
    GossipMessage3,
    SaveAckMessage,
    SaveMessage,
    SnapshotMessage3,
    TaskDescriptor,
)
from repro.core.ss_nonblocking import GossipMessage
from repro.net.codec import CodecError, decode_message, encode_message
from repro.stabilization.reset import EpochEnvelope, ResetCommitMessage


def reg(*entries):
    return RegisterArray(
        [TimestampedValue(ts, value) for ts, value in entries]
    )


ROUND_TRIP_CASES = [
    WriteMessage(reg=reg((1, b"a"), (0, None))),
    WriteAckMessage(reg=reg((3, "text"), (2, 42))),
    SnapshotMessage(reg=reg((0, None), (0, None)), ssn=7),
    SnapshotAckMessage(reg=reg((5, b"\x00\xff"), (1, "x")), ssn=123456789),
    GossipMessage(entry=TimestampedValue(9, b"payload")),
    GossipMessage3(entry=TimestampedValue(2, None), task_sns=4),
    SnapshotMessage3(
        tasks=(
            TaskDescriptor(0, 1, (1, 2, 3)),
            TaskDescriptor(2, 5, None),
        ),
        reg=reg((1, "v"), (0, None), (2, "w")),
        ssn=3,
    ),
    SaveMessage(entries=((1, 2, reg((1, "r"), (0, None))),)),
    SaveAckMessage(ids=frozenset({(1, 2), (3, 4)})),
    EpochEnvelope(epoch=5, inner=WriteMessage(reg=reg((1, "inner")))),
    ResetCommitMessage(new_epoch=2, values=reg((0, "kept"), (0, None))),
]


class TestRoundTrips:
    @pytest.mark.parametrize(
        "message", ROUND_TRIP_CASES, ids=lambda m: type(m).__name__
    )
    def test_known_messages_round_trip(self, message):
        assert decode_message(encode_message(message)) == message

    def test_nested_envelope_round_trips(self):
        inner = SnapshotMessage(reg=reg((1, b"x")), ssn=2)
        outer = EpochEnvelope(epoch=9, inner=EpochEnvelope(epoch=9, inner=inner))
        assert decode_message(encode_message(outer)) == outer

    @given(
        ts=st.integers(min_value=0, max_value=2**70),
        value=st.one_of(
            st.none(),
            st.booleans(),
            st.integers(min_value=-(2**64), max_value=2**64),
            st.binary(max_size=64),
            st.text(max_size=32),
            st.floats(allow_nan=False),
            st.tuples(st.integers(), st.text(max_size=8)),
        ),
        ssn=st.integers(min_value=0, max_value=2**63),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_round_trip(self, ts, value, ssn):
        message = SnapshotAckMessage(
            reg=RegisterArray([TimestampedValue(ts, value)]), ssn=ssn
        )
        assert decode_message(encode_message(message)) == message


class TestMalformedInput:
    def test_truncated(self):
        data = encode_message(WriteMessage(reg=reg((1, "x"))))
        with pytest.raises(CodecError):
            decode_message(data[:-3])

    def test_trailing_garbage(self):
        data = encode_message(WriteMessage(reg=reg((1, "x"))))
        with pytest.raises(CodecError):
            decode_message(data + b"junk")

    def test_unknown_tag(self):
        with pytest.raises(CodecError):
            decode_message(b"Qxxxx")

    def test_unknown_message_type(self):
        data = bytearray(b"M")
        name = b"NoSuchMessage"
        import struct

        data += struct.pack(">I", len(name)) + name + struct.pack(">I", 0)
        with pytest.raises(CodecError):
            decode_message(bytes(data))

    def test_non_message_top_level(self):
        import struct

        payload = b"i" + struct.pack(">I", 1) + b"5"
        with pytest.raises(CodecError):
            decode_message(payload)

    def test_unencodable_value(self):
        with pytest.raises(CodecError):
            encode_message(WriteMessage(reg=reg((1, object()))))

    def test_empty_input(self):
        with pytest.raises(CodecError):
            decode_message(b"")
