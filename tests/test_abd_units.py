"""Fine-grained tests for the ABD register-emulation layer."""

from repro import ClusterConfig, SimBackend
from repro.core.register import RegisterArray, TimestampedValue
from repro.errors import ReproError


def make(n=5, seed=0, **kwargs):
    return SimBackend("stacked", ClusterConfig(n=n, seed=seed, **kwargs))


class TestAbdStore:
    def test_store_replicates_to_majority(self):
        cluster = make()
        node = cluster.node(0)
        payload = RegisterArray(5)
        payload[0] = TimestampedValue(1, "stored")

        async def run():
            await node.abd.store(payload)

        cluster.run_until(run())
        holders = sum(
            1 for p in cluster.processes if p.reg[0].value == "stored"
        )
        assert holders >= cluster.config.majority

    def test_store_is_monotone(self):
        """Storing an older array never regresses a replica."""
        cluster = make()
        node = cluster.node(0)
        newer = RegisterArray(5)
        newer[0] = TimestampedValue(5, "new")
        older = RegisterArray(5)
        older[0] = TimestampedValue(2, "old")

        async def run():
            await node.abd.store(newer)
            await node.abd.store(older)

        cluster.run_until(run())
        for process in cluster.processes:
            assert process.reg[0].ts in (0, 5)

    def test_collect_returns_freshest_majority_view(self):
        cluster = make()
        # Seed a value at a majority directly.
        fresh = TimestampedValue(3, "fresh")
        for node_id in (1, 2, 3):
            cluster.node(node_id).reg[1] = fresh

        async def run():
            return await cluster.node(0).abd.collect()

        view = cluster.run_until(run())
        assert view[1].value == "fresh"
        # The collector absorbed what it read.
        assert cluster.node(0).reg[1].value == "fresh"

    def test_tags_isolate_concurrent_collects(self):
        cluster = make()

        async def run():
            first = cluster.spawn(cluster.node(0).abd.collect())
            second = cluster.spawn(cluster.node(1).abd.collect())
            return await cluster.kernel.gather([first, second])

        views = cluster.run_until(run())
        assert len(views) == 2


class TestStackedOpDiscipline:
    def test_concurrent_same_kind_ops_rejected(self):
        cluster = make()

        async def misuse():
            first = cluster.spawn(cluster.write(0, "a"))
            await cluster.kernel.sleep(0.1)
            try:
                await cluster.write(0, "b")
            except ReproError:
                await first
                return True
            return False

        assert cluster.run_until(misuse())

    def test_write_returns_incrementing_ts(self):
        cluster = make()
        assert cluster.write_sync(2, "x") == 1
        assert cluster.write_sync(2, "y") == 2

    def test_snapshot_reads_own_unreplicated_state(self):
        """A snapshot by the writer itself sees its own latest write even
        before other replicas caught up (the collect merges local state)."""
        cluster = make()
        cluster.write_sync(3, "mine")
        result = cluster.snapshot_sync(3)
        assert result.values[3] == "mine"
