"""Unit tests for the deterministic simulation kernel."""

import pytest

from repro.errors import (
    CancelledError,
    DeadlockError,
    InvalidTransitionError,
    SimulationError,
)
from repro.sim import Kernel, TieBreak


class TestFuture:
    def test_result_before_done_raises(self):
        kernel = Kernel()
        future = kernel.create_future()
        with pytest.raises(InvalidTransitionError):
            future.result()

    def test_set_result_then_result(self):
        kernel = Kernel()
        future = kernel.create_future()
        future.set_result(42)
        assert future.done()
        assert future.result() == 42
        assert future.exception() is None

    def test_double_set_result_raises(self):
        kernel = Kernel()
        future = kernel.create_future()
        future.set_result(1)
        with pytest.raises(InvalidTransitionError):
            future.set_result(2)

    def test_set_exception_propagates(self):
        kernel = Kernel()
        future = kernel.create_future()
        future.set_exception(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            future.result()

    def test_cancel_pending_future(self):
        kernel = Kernel()
        future = kernel.create_future()
        assert future.cancel()
        assert future.cancelled()
        with pytest.raises(CancelledError):
            future.result()

    def test_cancel_done_future_returns_false(self):
        kernel = Kernel()
        future = kernel.create_future()
        future.set_result(None)
        assert not future.cancel()

    def test_done_callback_fires_once_completed(self):
        kernel = Kernel()
        future = kernel.create_future()
        seen = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        future.set_result("x")
        kernel.run()
        assert seen == ["x"]

    def test_done_callback_on_already_done_future(self):
        kernel = Kernel()
        future = kernel.create_future()
        future.set_result(7)
        seen = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        kernel.run()
        assert seen == [7]


class TestScheduling:
    def test_call_later_order(self):
        kernel = Kernel()
        order = []
        kernel.call_later(2.0, order.append, "b")
        kernel.call_later(1.0, order.append, "a")
        kernel.call_later(3.0, order.append, "c")
        kernel.run()
        assert order == ["a", "b", "c"]
        assert kernel.now == 3.0

    def test_fifo_tie_break_preserves_insertion(self):
        kernel = Kernel(tie_break=TieBreak.FIFO)
        order = []
        for label in "abcde":
            kernel.call_later(1.0, order.append, label)
        kernel.run()
        assert order == list("abcde")

    def test_random_tie_break_is_seed_deterministic(self):
        def run(seed):
            kernel = Kernel(seed=seed, tie_break=TieBreak.RANDOM)
            order = []
            for label in "abcdefgh":
                kernel.call_later(1.0, order.append, label)
            kernel.run()
            return order

        assert run(1) == run(1)
        # With 8 items it is astronomically unlikely two seeds agree AND
        # match insertion order; accept either differing from FIFO.
        assert run(1) != list("abcdefgh") or run(2) != list("abcdefgh")

    def test_schedule_in_past_raises(self):
        kernel = Kernel()
        kernel.call_later(5.0, lambda: None)
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.call_at(1.0, lambda: None)

    def test_negative_delay_raises(self):
        kernel = Kernel()
        with pytest.raises(SimulationError):
            kernel.call_later(-1.0, lambda: None)

    def test_run_until_time_stops_clock(self):
        kernel = Kernel()
        fired = []
        kernel.call_later(10.0, fired.append, True)
        kernel.run(until_time=5.0)
        assert fired == []
        assert kernel.now == 5.0
        kernel.run()
        assert fired == [True]


class TestTasks:
    def test_task_returns_value(self):
        kernel = Kernel()

        async def work():
            await kernel.sleep(1.0)
            return "done"

        assert kernel.run_until_complete(work()) == "done"
        assert kernel.now == 1.0

    def test_tasks_interleave_by_time(self):
        kernel = Kernel()
        trace = []

        async def worker(name, delay):
            await kernel.sleep(delay)
            trace.append(name)

        async def main():
            tasks = [
                kernel.create_task(worker("slow", 3.0)),
                kernel.create_task(worker("fast", 1.0)),
            ]
            await kernel.gather(tasks)

        kernel.run_until_complete(main())
        assert trace == ["fast", "slow"]

    def test_task_exception_propagates(self):
        kernel = Kernel()

        async def boom():
            await kernel.sleep(0.1)
            raise RuntimeError("kapow")

        with pytest.raises(RuntimeError, match="kapow"):
            kernel.run_until_complete(boom())

    def test_task_cancellation(self):
        kernel = Kernel()
        cleaned = []

        async def victim():
            try:
                await kernel.sleep(100.0)
            except CancelledError:
                cleaned.append(True)
                raise

        async def main():
            task = kernel.create_task(victim())
            await kernel.sleep(1.0)
            task.cancel()
            await kernel.sleep(1.0)
            return task.cancelled()

        assert kernel.run_until_complete(main())
        assert cleaned == [True]

    def test_deadlock_detection(self):
        kernel = Kernel()

        async def stuck():
            await kernel.create_future()

        with pytest.raises(DeadlockError):
            kernel.run_until_complete(stuck())

    def test_gather_empty(self):
        kernel = Kernel()

        async def main():
            return await kernel.gather([])

        assert kernel.run_until_complete(main()) == []

    def test_gather_collects_in_order(self):
        kernel = Kernel()

        async def value(v, delay):
            await kernel.sleep(delay)
            return v

        async def main():
            return await kernel.gather([value(1, 3.0), value(2, 1.0), value(3, 2.0)])

        assert kernel.run_until_complete(main()) == [1, 2, 3]

    def test_wait_for_times_out(self):
        kernel = Kernel()

        async def slow():
            await kernel.sleep(10.0)
            return "late"

        async def main():
            with pytest.raises(TimeoutError):
                await kernel.wait_for(slow(), timeout=1.0)
            return kernel.now

        assert kernel.run_until_complete(main()) == 1.0

    def test_wait_for_returns_value_in_time(self):
        kernel = Kernel()

        async def quick():
            await kernel.sleep(0.5)
            return "ok"

        async def main():
            return await kernel.wait_for(quick(), timeout=5.0)

        assert kernel.run_until_complete(main()) == "ok"

    def test_awaiting_foreign_object_raises(self):
        kernel = Kernel()

        async def bad():
            await object()  # type: ignore[misc]

        with pytest.raises((SimulationError, TypeError)):
            kernel.run_until_complete(bad())


class TestEvent:
    def test_wait_blocks_until_set(self):
        kernel = Kernel()
        event = kernel.create_event()
        trace = []

        async def waiter():
            await event.wait()
            trace.append("woke")

        async def setter():
            await kernel.sleep(2.0)
            trace.append("set")
            event.set()

        async def main():
            await kernel.gather([waiter(), setter()])

        kernel.run_until_complete(main())
        assert trace == ["set", "woke"]

    def test_wait_on_set_event_returns_immediately(self):
        kernel = Kernel()
        event = kernel.create_event()
        event.set()

        async def main():
            await event.wait()
            return kernel.now

        assert kernel.run_until_complete(main()) == 0.0

    def test_clear_reblocks(self):
        kernel = Kernel()
        event = kernel.create_event()
        event.set()
        event.clear()
        assert not event.is_set()


class TestGate:
    def test_open_gate_passes(self):
        kernel = Kernel()
        gate = kernel.create_gate()

        async def main():
            await gate.passthrough()
            return True

        assert kernel.run_until_complete(main())

    def test_closed_gate_blocks_until_open(self):
        kernel = Kernel()
        gate = kernel.create_gate()
        gate.close()
        trace = []

        async def walker():
            await gate.passthrough()
            trace.append(kernel.now)

        async def opener():
            await kernel.sleep(5.0)
            gate.open()

        async def main():
            await kernel.gather([walker(), opener()])

        kernel.run_until_complete(main())
        assert trace == [5.0]

    def test_reclosed_gate_blocks_again(self):
        kernel = Kernel()
        gate = kernel.create_gate()
        gate.close()
        trace = []

        async def walker():
            for _ in range(2):
                await gate.passthrough()
                trace.append(kernel.now)
                await kernel.sleep(1.0)

        async def toggler():
            await kernel.sleep(3.0)
            gate.open()
            await kernel.sleep(0.5)
            gate.close()
            await kernel.sleep(3.0)
            gate.open()

        async def main():
            await kernel.gather([walker(), toggler()])

        kernel.run_until_complete(main())
        assert trace == [3.0, 6.5]


class TestDeterminism:
    def test_identical_seeds_produce_identical_traces(self):
        def run(seed):
            kernel = Kernel(seed=seed, tie_break=TieBreak.RANDOM)
            trace = []

            async def worker(name):
                for _ in range(3):
                    await kernel.sleep(kernel.rng.random())
                    trace.append((name, round(kernel.now, 9)))

            async def main():
                await kernel.gather([worker(i) for i in range(4)])

            kernel.run_until_complete(main())
            return trace

        assert run(123) == run(123)
        assert run(123) != run(456)

class _ForeignAwaitable:
    """Awaitable that yields something the kernel doesn't recognize."""

    def __await__(self):
        yield "not-a-sim-future"


class TestForeignAwaitFailure:
    """A coroutine that swallows the foreign-await error must still fail
    its task deterministically instead of leaving it pending forever."""

    def test_swallowing_coroutine_still_fails_task(self):
        kernel = Kernel()

        async def swallows():
            try:
                await _ForeignAwaitable()
            except SimulationError:
                pass  # swallow the kernel's complaint...
            await kernel.sleep(1.0)  # ...and keep going anyway
            return "never"

        async def main():
            task = kernel.create_task(swallows())
            await kernel.sleep(5.0)
            return task

        task = kernel.run_until_complete(main())
        assert task.done(), "task must not stay pending after a foreign await"
        with pytest.raises(SimulationError):
            task.result()

    def test_swallow_and_return_completes_with_value(self):
        kernel = Kernel()

        async def recovers():
            try:
                await _ForeignAwaitable()
            except SimulationError:
                return "recovered"

        async def main():
            return await kernel.create_task(recovers())

        assert kernel.run_until_complete(main()) == "recovered"

    def test_swallow_and_raise_propagates_new_exception(self):
        kernel = Kernel()

        async def reraises():
            try:
                await _ForeignAwaitable()
            except SimulationError:
                raise ValueError("translated")

        async def main():
            task = kernel.create_task(reraises())
            await kernel.sleep(1.0)
            return task

        task = kernel.run_until_complete(main())
        with pytest.raises(ValueError, match="translated"):
            task.result()


class TestTimerPool:
    def test_timers_are_recycled(self):
        kernel = Kernel()

        async def main():
            for _ in range(50):
                await kernel.sleep(0.1)

        kernel.run_until_complete(main())
        # Sequential sleeps reuse one pooled timer instead of allocating 50.
        assert len(kernel._timer_pool) == 1

    def test_stale_pool_timer_fire_is_harmless(self):
        kernel = Kernel()
        trace = []

        async def racer():
            # Two timers armed at the same instant for the same sleeper
            # generation can't happen via the public API, so force the
            # hazard: arm a sleep, let it fire, then fire the *stale*
            # callback again after the timer was recycled.
            await kernel.sleep(1.0)
            trace.append(kernel.now)

        kernel.run_until_complete(racer())
        timer = kernel._timer_pool[0]
        stale_gen = timer._gen - 1
        timer._fire(stale_gen)  # must be a no-op: generation mismatch
        assert not timer.done()
        assert trace == [1.0]

    def test_cancelled_sleep_timer_not_recycled_while_pending(self):
        kernel = Kernel()

        async def victim():
            await kernel.sleep(100.0)

        async def main():
            task = kernel.create_task(victim())
            await kernel.sleep(1.0)
            task.cancel()
            await kernel.sleep(1.0)
            # The cancelled timer future may or may not be pooled, but a
            # fresh sleep must still work and keep time moving.
            await kernel.sleep(1.0)
            return kernel.now

        assert kernel.run_until_complete(main()) == 3.0


class TestBatchDispatch:
    def test_same_instant_callbacks_run_in_fifo_order(self):
        kernel = Kernel()
        trace = []
        for i in range(10):
            kernel.call_at(5.0, trace.append, i)
        kernel.run()
        assert trace == list(range(10))
        assert kernel.events_processed == 10

    def test_max_events_respected_mid_batch(self):
        kernel = Kernel()
        trace = []
        for i in range(10):
            kernel.call_at(5.0, trace.append, i)
        kernel.run(max_events=3)
        assert trace == [0, 1, 2]
        assert kernel.events_processed == 3
        kernel.run()  # drain the rest
        assert trace == list(range(10))
        assert kernel.events_processed == 10

    def test_until_future_checked_mid_batch(self):
        kernel = Kernel()
        done = kernel.create_future()
        trace = []
        kernel.call_at(1.0, trace.append, "a")
        kernel.call_at(1.0, done.set_result, None)
        kernel.call_at(1.0, trace.append, "b")
        kernel.run(until=done)
        assert trace == ["a"], "batch must stop as soon as `until` resolves"

    def test_callbacks_scheduled_mid_batch_run_same_instant(self):
        kernel = Kernel()
        trace = []

        def reschedule():
            trace.append("first")
            kernel.call_soon(trace.append, "second")

        kernel.call_at(2.0, reschedule)
        kernel.run()
        assert trace == ["first", "second"]
        assert kernel.now == 2.0
