"""Tests for the sharded snapshot fabric: routing, cuts, online splits.

Everything runs on the deterministic simulator, so each test is a pure
function of its seed; the full two-layer checker (`fabric.check()`)
closes every test that generates history.
"""

import pytest

from repro import ClusterConfig
from repro.shard import ShardedFabric, build_sim_fabric

pytestmark = pytest.mark.shard


def drive(fabric, coro):
    return fabric.kernel.run_until_complete(coro, max_events=2_000_000)


def make(shards=2, seed=0, **kwargs):
    return build_sim_fabric(
        shards, "ss-nonblocking", ClusterConfig(n=4, seed=seed), **kwargs
    )


class TestKeyedOperations:
    def test_write_returns_per_key_versions(self):
        fabric = make()

        async def body():
            first = await fabric.write("a", b"1")
            second = await fabric.write("a", b"2")
            other = await fabric.write("b", b"1")
            return first, second, other

        assert drive(fabric, body()) == (1, 2, 1)
        assert fabric.check() == []

    def test_scan_projects_one_key(self):
        fabric = make()

        async def body():
            await fabric.write("a", b"v")
            hit = await fabric.scan("a")
            miss = await fabric.scan("nope")
            return hit, miss

        hit, miss = drive(fabric, body())
        assert hit.found and hit.value == b"v" and hit.seq == 1
        assert not miss.found
        assert fabric.check() == []

    def test_keys_spread_over_shards(self):
        fabric = make(shards=4)
        shards_hit = {fabric.slot_of(f"k{i}")[0] for i in range(64)}
        assert shards_hit == set(fabric.shard_ids)


class TestComposedSnapshot:
    def test_cut_merges_all_shards(self):
        fabric = make(shards=3)

        async def body():
            for i in range(12):
                await fabric.write(f"k{i}", i)
            return await fabric.compose_snapshot()

        cut = drive(fabric, body())
        assert {k: v for k, (_, v) in cut.items().items()} == {
            f"k{i}": i for i in range(12)
        }
        assert not cut.fenced and cut.rounds >= 1
        assert fabric.check() == []

    def test_concurrent_writers_still_linearizable(self):
        fabric = make(shards=2, seed=5)

        async def writer(i):
            for j in range(3):
                await fabric.write(f"w{i}", j)

        async def body():
            tasks = [
                fabric.kernel.create_task(writer(i), name=f"w{i}")
                for i in range(4)
            ]
            cuts = [await fabric.compose_snapshot() for _ in range(3)]
            await fabric.kernel.gather(tasks)
            cuts.append(await fabric.compose_snapshot())
            return cuts

        cuts = drive(fabric, body())
        assert fabric.check() == []
        # Cuts are totally ordered: later cuts never lose writes.
        for earlier, later in zip(cuts, cuts[1:]):
            for key, (seq, _) in earlier.items().items():
                later_seq, _ = later.items().get(key, (0, None))
                assert later_seq >= seq

    def test_fenced_fallback_still_produces_a_cut(self):
        fabric = make()

        async def body():
            await fabric.write("a", 1)
            # Drive the fenced path directly (optimistic rounds are
            # trivially stable on a quiet fabric).
            cut = await fabric._admin(
                lambda: fabric._fenced_compose(fabric.kernel.now, 0)
            )
            after = await fabric.write("b", 2)  # gate reopened
            return cut, after

        cut, after = drive(fabric, body())
        assert cut.fenced
        assert cut.get("a") == 1
        assert after == 1
        assert fabric.check() == []

    def test_max_rounds_defaults_bound_the_optimistic_loop(self):
        fabric = make()

        async def body():
            await fabric.write("a", 1)
            return await fabric.compose_snapshot()

        cut = drive(fabric, body())
        assert 1 <= cut.rounds <= ShardedFabric.MAX_OPTIMISTIC_ROUNDS


class TestOnlineSplit:
    def test_split_moves_keys_without_losing_them(self):
        fabric = make(shards=2, seed=3)

        async def body():
            for i in range(24):
                await fabric.write(f"k{i}", i)
            report = await fabric.split()
            cut = await fabric.compose_snapshot()
            return report, cut

        report, cut = drive(fabric, body())
        assert report.new_epoch == report.old_epoch + 1
        assert fabric.map.shards == 3
        assert {k: v for k, (_, v) in cut.items().items()} == {
            f"k{i}": i for i in range(24)
        }
        assert fabric.check() == []

    def test_epoch_routing_no_lost_or_duplicated_ops(self):
        """Ops in flight across a split all execute exactly once."""
        fabric = make(shards=2, seed=7)

        async def body():
            for i in range(16):
                await fabric.write(f"k{i}", 0)
            # Queue writes concurrently with the split: some hop epochs.
            handles = [fabric.submit_write(f"k{i}", 1) for i in range(16)]
            report = await fabric.split()
            results = [await handle for handle in handles]
            return report, results

        report, results = drive(fabric, body())
        # Exactly once: every key reaches seq 2, never 3.
        assert results == [2] * 16
        by_key = {}
        for record in fabric.writes:
            by_key.setdefault(record.key, []).append(record.seq)
        assert all(seqs == [1, 2] for seqs in by_key.values())
        assert fabric.check() == []

    def test_migrated_keys_resume_their_seq(self):
        fabric = make(shards=1, seed=11)

        async def body():
            await fabric.write("a", "x")
            await fabric.write("a", "y")
            await fabric.split()
            return await fabric.write("a", "z")

        assert drive(fabric, body()) == 3
        assert fabric.check() == []

    def test_writes_after_split_route_by_new_map(self):
        fabric = make(shards=1, seed=2)

        async def body():
            await fabric.split()
            for i in range(12):
                await fabric.write(f"n{i}", i)

        drive(fabric, body())
        recorded_slots = {record.slot for record in fabric.writes}
        expected = {fabric.slot_of(f"n{i}") for i in range(12)}
        assert recorded_slots == expected
        assert len({shard for shard, _ in recorded_slots}) == 2


class TestFabricLifecycle:
    def test_shards_get_observability_labels(self):
        from repro.obs import session

        with session():
            fabric = make(shards=2)
        labels = [shard.obs.label for shard in fabric.backends()]
        assert labels == ["shard0", "shard1"]

    def test_validates_shard_map_agreement(self):
        from repro.errors import ConfigurationError
        from repro.shard import ShardMap

        fabric = make(shards=2)
        with pytest.raises(ConfigurationError):
            ShardedFabric(
                {9: fabric.shard(0)},
                ShardMap(epoch=0, shard_ids=(0,)),
                backend_name="sim",
                algorithm="ss-nonblocking",
                base_config=ClusterConfig(n=4),
            )

    def test_check_reports_per_shard_prefixes(self):
        fabric = make(shards=2)

        async def body():
            await fabric.write("a", 1)

        drive(fabric, body())
        assert fabric.check() == []
        # Sabotage one shard's history to prove the prefix wiring:
        # two open invocations at one node violate well-formedness.
        fabric.shard(1).history.invoke(0, "write", "x", now=1.0)
        fabric.shard(1).history.invoke(0, "write", "y", now=1.5)
        failures = fabric.check()
        assert failures and all(f.startswith("shard1: ") for f in failures)
