"""Unit tests for configuration validation."""

import math

import pytest

from repro.config import UNBOUNDED_DELTA, ChannelConfig, ClusterConfig
from repro.errors import ConfigurationError


class TestChannelConfig:
    def test_defaults_are_valid(self):
        config = ChannelConfig()
        assert config.loss_probability == 0.0
        assert config.capacity >= 1

    def test_delay_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            ChannelConfig(min_delay=2.0, max_delay=1.0)
        with pytest.raises(ConfigurationError):
            ChannelConfig(min_delay=-1.0)

    def test_loss_probability_range(self):
        with pytest.raises(ConfigurationError):
            ChannelConfig(loss_probability=1.0)
        with pytest.raises(ConfigurationError):
            ChannelConfig(loss_probability=-0.1)
        ChannelConfig(loss_probability=0.99)  # ok

    def test_duplication_probability_range(self):
        with pytest.raises(ConfigurationError):
            ChannelConfig(duplication_probability=1.5)

    def test_capacity_positive(self):
        with pytest.raises(ConfigurationError):
            ChannelConfig(capacity=0)

    def test_reliable_strips_failures(self):
        lossy = ChannelConfig(loss_probability=0.5, duplication_probability=0.5)
        clean = lossy.reliable()
        assert clean.loss_probability == 0.0
        assert clean.duplication_probability == 0.0
        assert clean.min_delay == lossy.min_delay


class TestClusterConfig:
    def test_majority(self):
        assert ClusterConfig(n=5).majority == 3
        assert ClusterConfig(n=6).majority == 4
        assert ClusterConfig(n=2).majority == 2

    def test_max_crash_faults(self):
        assert ClusterConfig(n=5).max_crash_faults == 2
        assert ClusterConfig(n=6).max_crash_faults == 2
        assert ClusterConfig(n=7).max_crash_faults == 3

    def test_minimum_size(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(n=1)

    def test_intervals_positive(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(retransmit_interval=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(gossip_interval=-1)

    def test_delta_non_negative(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(delta=-1)
        assert math.isinf(ClusterConfig(delta=UNBOUNDED_DELTA).delta)

    def test_frozen(self):
        config = ClusterConfig()
        with pytest.raises(AttributeError):
            config.n = 10  # type: ignore[misc]
