"""Load-generation subsystem: specs, pipelining, reports, sweeps, CLI."""

import importlib.util
import json
import pathlib
import subprocess
import sys

import pytest

from repro.backend.base import OperationPipeline, run_on_backend
from repro.config import scenario_config
from repro.errors import ConfigurationError
from repro.load import (
    KNEE_EFFICIENCY,
    OPEN,
    LoadReport,
    LoadSpec,
    SweepResult,
    default_rate_ladder,
    parse_mix,
    run_load,
    run_load_campaigns,
    sweep_rates,
    write_bench,
)
from repro.load.driver import LoadGenerator
from repro.obs.registry import QuantileHistogram

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestParseMix:
    def test_standard_mixes(self):
        assert parse_mix("8:2") == pytest.approx(0.8)
        assert parse_mix("1:1") == pytest.approx(0.5)
        assert parse_mix("0:1") == 0.0
        assert parse_mix("1:0") == 1.0

    @pytest.mark.parametrize("bad", ["x", "1", "1:2:3", "-1:2", "0:0"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            parse_mix(bad)


class TestLoadSpec:
    def test_defaults_are_closed_loop(self):
        spec = LoadSpec()
        assert spec.mode == "closed"
        assert spec.depth == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "bogus"},
            {"mode": OPEN},  # open loop without a rate
            {"mode": OPEN, "rate": 0.0},
            {"clients": 0},
            {"depth": 0},
            {"duration": 0.0},
            {"write_fraction": 1.5},
            {"skew": -0.1},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            LoadSpec(**kwargs)


class TestQuantileHistogram:
    def test_quantiles_track_uniform_samples(self):
        hist = QuantileHistogram("t")
        for value in range(1, 1001):
            hist.observe(float(value))
        assert hist.count == 1000
        # Log-bucketing promises ~±2.5% relative error per bucket.
        assert hist.quantile(0.50) == pytest.approx(500, rel=0.06)
        assert hist.quantile(0.99) == pytest.approx(990, rel=0.06)
        summary = hist.value
        assert summary["min"] == 1.0 and summary["max"] == 1000.0
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_empty_and_clamped_samples(self):
        hist = QuantileHistogram("t")
        assert hist.value["p99"] == 0.0
        hist.observe(-5.0)  # clamps to zero rather than corrupting buckets
        assert hist.value["max"] == 0.0
        assert hist.quantile(0.5) == 0.0


class TestOperationPipeline:
    def test_depth_must_be_positive(self):
        def body_factory(depth):
            async def body(cluster):
                cluster.pipeline(depth=depth)

            return body

        with pytest.raises(ConfigurationError):
            run_on_backend(
                "sim", "ss-always", scenario_config(n=3), body_factory(0)
            )

    def test_depth_one_is_serial(self):
        async def body(cluster):
            pipeline = cluster.pipeline(depth=1)
            first = await pipeline.write(0, b"a")
            second = await pipeline.write(1, b"b")
            # Reserving for the second op awaited the first to completion.
            assert first.done()
            assert pipeline.in_flight == 1
            await pipeline.drain()
            assert second.done()
            assert pipeline.in_flight == 0

        run_on_backend("sim", "ss-always", scenario_config(n=3), body)

    def test_window_never_exceeds_depth(self):
        async def body(cluster):
            pipeline = cluster.pipeline(depth=2)
            for node in range(4):
                await pipeline.write(node % cluster.config.n, node)
                assert pipeline.in_flight <= 2
            await pipeline.drain()

        run_on_backend("sim", "ss-nonblocking", scenario_config(n=4), body)

    def test_pipeline_is_an_operation_pipeline(self):
        async def body(cluster):
            assert isinstance(cluster.pipeline(), OperationPipeline)

        run_on_backend("sim", "ss-always", scenario_config(n=3), body)


class TestSubmitChaining:
    def test_same_node_submissions_dispatch_fifo(self):
        async def body(cluster):
            tasks = [cluster.submit_write(0, value) for value in range(3)]
            results = [await task for task in tasks]
            # SWMR: one sequential client per node, so timestamps step.
            assert results == [1, 2, 3]
            cluster.history.validate_well_formed()

        run_on_backend("sim", "ss-always", scenario_config(n=3), body)

    def test_cross_node_submissions_overlap(self):
        async def body(cluster):
            tasks = [
                cluster.submit_write(node, node)
                for node in range(cluster.config.n)
            ]
            for task in tasks:
                await task
            snap = await cluster.snapshot(0)
            assert snap.values == tuple(range(cluster.config.n))
            cluster.history.validate_well_formed()

        run_on_backend("sim", "ss-nonblocking", scenario_config(n=4), body)


def _history_fingerprint(workload_seed, depth):
    spec = LoadSpec(clients=3, depth=depth, duration=40.0, seed=workload_seed)

    async def body(cluster):
        generator = LoadGenerator(cluster, spec)
        await generator.run()
        cluster.history.validate_well_formed()
        return tuple(repr(record) for record in cluster.history.records())

    return run_on_backend(
        "sim", "ss-nonblocking", scenario_config(n=4, seed=1), body
    )


class TestRunLoad:
    def test_closed_loop_report(self):
        report = run_load(
            "sim",
            "ss-nonblocking",
            spec=LoadSpec(clients=4, depth=2, duration=30.0),
        )
        assert report.ok
        assert report.completed > 0
        assert report.errors == 0
        assert report.throughput > 0
        assert report.quantile("all", "p99") >= report.quantile("all", "p50")
        row = report.row()
        assert row["mode"] == "closed"
        assert row["linearizable"] is True
        assert "linearizable" in report.summary()

    def test_open_loop_report(self):
        report = run_load(
            "sim",
            "ss-nonblocking",
            spec=LoadSpec(mode=OPEN, rate=1.0, duration=30.0),
        )
        assert report.ok
        assert report.offered_rate == 1.0
        assert report.summary().startswith("open load on sim")

    def test_pipelined_run_is_deterministic(self):
        # Tentpole property: same seed => identical history, even with
        # several operations in flight per client.
        first = _history_fingerprint(workload_seed=5, depth=3)
        second = _history_fingerprint(workload_seed=5, depth=3)
        assert first == second
        assert len(first) > 0

    def test_workload_seed_changes_history(self):
        assert _history_fingerprint(5, depth=3) != _history_fingerprint(6, depth=3)

    def test_saturated_mixed_workload_linearizable(self):
        report = run_load(
            "sim",
            "ss-nonblocking",
            spec=LoadSpec(
                clients=8, depth=4, write_fraction=0.5, skew=1.0, duration=40.0
            ),
        )
        assert report.ok, report.failures
        assert report.completed >= 20
        assert report.metrics["load.max_in_flight"] > 1


def _point(offered, throughput, failures=()):
    quantiles = {"count": 1, "sum": 1.0, "min": 1.0, "max": 1.0,
                 "mean": 1.0, "p50": 1.0, "p95": 1.0, "p99": 1.0}
    return LoadReport(
        backend="sim",
        algorithm="ss-nonblocking",
        n=4,
        spec=LoadSpec(mode=OPEN, rate=offered, duration=10.0),
        offered_rate=offered,
        submitted=10,
        completed=10,
        errors=0,
        elapsed=10.0,
        throughput=throughput,
        latency={"all": quantiles, "write": quantiles, "snapshot": quantiles},
        metrics={},
        failures=list(failures),
    )


class TestSweep:
    def test_default_ladder_straddles_capacity(self):
        ladder = default_rate_ladder(4)
        assert ladder == sorted(ladder)
        assert ladder[0] < 2.0 < ladder[-1]  # capacity n/2 sits inside

    def test_knee_is_last_rung_keeping_up(self):
        sweep = SweepResult(
            backend="sim", algorithm="ss-nonblocking", n=4,
            points=[_point(0.5, 0.5), _point(1.0, 0.95), _point(2.0, 1.0)],
        )
        # 1.0 keeps up (0.95 >= 0.9), 2.0 does not (1.0 < 1.8).
        assert sweep.knee_rate == 1.0
        assert sweep.saturated_throughput == 1.0
        assert sweep.ok

    def test_knee_none_when_never_keeping_up(self):
        sweep = SweepResult(
            backend="sim", algorithm="ss-nonblocking", n=4,
            points=[_point(4.0, 1.0)],
        )
        assert sweep.knee_rate is None
        assert "saturated below" in sweep.summary()

    def test_failures_propagate(self):
        sweep = SweepResult(
            backend="sim", algorithm="ss-nonblocking", n=4,
            points=[_point(0.5, 0.5, failures=["boom"])],
        )
        assert not sweep.ok
        assert sweep.failures == ["boom"]

    def test_empty_rate_list_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_rates(rates=[])

    def test_real_two_rung_sweep_locates_knee(self, tmp_path):
        sweep = sweep_rates(
            backend="sim", n=4, rates=[0.25, 4.0], duration=60.0
        )
        assert sweep.ok, sweep.failures
        assert sweep.knee_rate == 0.25
        assert sweep.saturated_throughput > KNEE_EFFICIENCY * 0.25
        payload = sweep.to_dict()
        json.dumps(payload)  # serializable as-is

        # write_bench emits the house BENCH_*.json shape, and the CI
        # gate accepts it.
        path = write_bench(tmp_path / "bench.json", [sweep])
        spec = importlib.util.spec_from_file_location(
            "check_load_series", ROOT / "benchmarks" / "check_load_series.py"
        )
        checker = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(checker)
        assert checker.check(path) == []


class TestCampaigns:
    def test_one_report_per_seed(self):
        reports = run_load_campaigns(
            seeds=[0, 1], algorithm="ss-nonblocking", budget=20
        )
        assert len(reports) == 2
        assert [r.spec.seed for r in reports] == [0, 1]
        assert all(r.ok for r in reports)

    def test_jobs_fanout_requires_sim(self):
        with pytest.raises(ConfigurationError):
            run_load_campaigns(seeds=[0], jobs=2, backend="asyncio")


class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", "load", *args],
            capture_output=True,
            text=True,
            timeout=240,
            cwd=ROOT,
            env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_closed_loop_command(self):
        result = self._run(
            "--backend", "sim", "--clients", "2", "--depth", "2",
            "--duration", "15", "--seeds", "1",
        )
        assert result.returncode == 0, result.stderr
        assert "closed load on sim" in result.stdout
        assert "linearizable" in result.stdout

    def test_sweep_writes_bench_file(self, tmp_path):
        out = tmp_path / "bench_load.json"
        result = self._run("--backend", "sim", "--sweep", "--out", str(out))
        assert result.returncode == 0, result.stderr
        assert "knee at" in result.stdout
        payload = json.loads(out.read_text())
        assert payload["pr"] == 5
        assert payload["headline"]["knee_rate"] is not None
        gate = subprocess.run(
            [sys.executable, str(ROOT / "benchmarks" / "check_load_series.py"),
             str(out)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert gate.returncode == 0, gate.stderr
