"""Unit tests for the asyncio kernel adapter."""

import asyncio

import pytest

from repro.runtime.asyncio_kernel import AsyncioEvent, AsyncioGate, AsyncioKernel


def run(coro):
    return asyncio.run(coro)


class TestAsyncioKernelPrimitives:
    def test_sleep_scales_time(self):
        async def main():
            kernel = AsyncioKernel(time_scale=0.001)
            loop = asyncio.get_event_loop()
            start = loop.time()
            await kernel.sleep(10.0)  # 10 units * 1ms = 10ms
            return loop.time() - start

        elapsed = run(main())
        assert 0.005 <= elapsed <= 0.5

    def test_now_in_simulated_units(self):
        async def main():
            kernel = AsyncioKernel(time_scale=0.001)
            before = kernel.now
            await kernel.sleep(5.0)
            return kernel.now - before

        delta = run(main())
        assert delta >= 4.0

    def test_call_later_and_soon(self):
        async def main():
            kernel = AsyncioKernel(time_scale=0.001)
            order = []
            kernel.call_later(5.0, order.append, "later")
            kernel.call_soon(order.append, "soon")
            await kernel.sleep(10.0)
            return order

        assert run(main()) == ["soon", "later"]

    def test_call_at(self):
        async def main():
            kernel = AsyncioKernel(time_scale=0.001)
            fired = []
            kernel.call_at(kernel.now + 3.0, fired.append, True)
            await kernel.sleep(6.0)
            return fired

        assert run(main()) == [True]

    def test_future_and_task(self):
        async def main():
            kernel = AsyncioKernel()
            future = kernel.create_future()
            future.set_result(5)

            async def job():
                return await future

            task = kernel.create_task(job(), name="job")
            return await task

        assert run(main()) == 5

    def test_gather(self):
        async def main():
            kernel = AsyncioKernel(time_scale=0.001)

            async def value(v):
                await kernel.sleep(1.0)
                return v

            return await kernel.gather([value(1), value(2)])

        assert run(main()) == [1, 2]

    def test_wait_for_timeout(self):
        async def main():
            kernel = AsyncioKernel(time_scale=0.001)
            with pytest.raises(TimeoutError):
                await kernel.wait_for(kernel.sleep(100.0), timeout=2.0)

        run(main())

    def test_first_of_winner(self):
        async def main():
            kernel = AsyncioKernel(time_scale=0.001)

            async def fast():
                await kernel.sleep(1.0)

            async def slow():
                await kernel.sleep(50.0)

            return await kernel.first_of(slow(), fast())

        assert run(main()) == 1

    def test_first_of_timeout_preserves_task(self):
        async def main():
            kernel = AsyncioKernel(time_scale=0.001)

            async def slow():
                await kernel.sleep(5.0)
                return "alive"

            task = kernel.create_task(slow())
            index = await kernel.first_of(
                task, timeout=1.0, cancel_on_timeout=False
            )
            assert index == -1
            assert not task.done()
            return await task

        assert run(main()) == "alive"

    def test_first_of_timeout_cancels_by_default(self):
        async def main():
            kernel = AsyncioKernel(time_scale=0.001)

            async def slow():
                await kernel.sleep(50.0)

            task = kernel.create_task(slow())
            index = await kernel.first_of(task, timeout=1.0)
            assert index == -1
            await asyncio.sleep(0.01)
            return task.cancelled()

        assert run(main())


class TestAsyncioEventAndGate:
    def test_event_set_wait_clear(self):
        async def main():
            event = AsyncioEvent()
            assert not event.is_set()
            event.set()
            await event.wait()
            assert event.is_set()
            event.clear()
            assert not event.is_set()

        run(main())

    def test_gate_blocks_and_opens(self):
        async def main():
            gate = AsyncioGate()
            gate.close()
            assert not gate.is_open
            passed = []

            async def walker():
                await gate.passthrough()
                passed.append(True)

            task = asyncio.get_event_loop().create_task(walker())
            await asyncio.sleep(0.01)
            assert passed == []
            gate.open()
            await task
            return passed

        assert run(main()) == [True]

    def test_gate_initially_closed(self):
        gate = AsyncioGate(open_=False)
        assert not gate.is_open
