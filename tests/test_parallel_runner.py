"""Unit tests for the parallel experiment runner (repro.harness.parallel)."""

import pytest

from repro.harness.parallel import (
    Cell,
    ablation_cells,
    chaos_cells,
    experiment_cells,
    extract_jobs,
    run_cells,
)


class TestCells:
    def test_experiment_cells_without_seeds(self):
        cells = experiment_cells(["e01", "e07"])
        assert cells == [Cell("experiment", "e01"), Cell("experiment", "e07")]

    def test_experiment_cells_cross_seeds(self):
        cells = experiment_cells(["e01"], seeds=[0, 1])
        assert cells == [
            Cell("experiment", "e01", (("seed", 0),)),
            Cell("experiment", "e01", (("seed", 1),)),
        ]

    def test_ablation_and_chaos_cells(self):
        assert ablation_cells(["a1"]) == [Cell("ablation", "a1")]
        assert chaos_cells([3], events=10) == [
            Cell("chaos", "ss-always", (("events", 10), ("seed", 3)))
        ]

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown cell kind"):
            run_cells([Cell("nope", "x")])


class TestRunCells:
    def test_serial_matches_parallel(self):
        cells = experiment_cells(["e01"], seeds=[0, 1])
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=2)
        assert serial == parallel
        assert len(serial) == 2

    def test_results_keep_cell_order(self):
        # e13 is slower than e01; order must still follow the cell list,
        # not completion order.
        cells = experiment_cells(["e13", "e01"])
        results = run_cells(cells, jobs=2)
        serial = run_cells(cells, jobs=1)
        assert results == serial

    def test_jobs_none_runs_in_process(self):
        cells = experiment_cells(["e01"])
        assert run_cells(cells, jobs=None) == run_cells(cells, jobs=1)


class TestChaosCampaigns:
    def test_parallel_reports_match_serial(self):
        from repro.harness.chaos import run_chaos_campaigns

        serial = run_chaos_campaigns([0, 1], events=20, jobs=1)
        parallel = run_chaos_campaigns([0, 1], events=20, jobs=2)
        assert serial == parallel
        assert all(report.ok for report in serial)


class TestExtractJobs:
    def test_default(self):
        assert extract_jobs(["e01"]) == (1, ["e01"])

    def test_long_flag(self):
        assert extract_jobs(["--jobs", "4", "e01"]) == (4, ["e01"])

    def test_equals_form(self):
        assert extract_jobs(["e01", "--jobs=2"]) == (2, ["e01"])

    def test_short_flag(self):
        assert extract_jobs(["-j", "3"]) == (3, [])

    def test_missing_value_exits(self):
        with pytest.raises(SystemExit):
            extract_jobs(["--jobs"])

    def test_nonpositive_exits(self):
        with pytest.raises(SystemExit):
            extract_jobs(["--jobs", "0"])


class TestCli:
    def test_chaos_seeds_flag(self, capsys):
        from repro.__main__ import main

        assert main(
            ["chaos", "--budget", "25", "--seeds", "2", "--jobs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "seed 0:" in out and "seed 1:" in out

    def test_ablations_jobs_flag_rejects_unknown(self, capsys):
        from repro.__main__ import main

        assert main(["ablations", "zz", "--jobs", "2"]) == 2


class TestObservedParallelRuns:
    """Worker sessions ship portable snapshots; the parent absorbs them
    in cell order, so ``--stats --jobs N`` equals the serial run."""

    @staticmethod
    def _stats(jobs):
        from repro.obs.observe import Observability, session

        with session(Observability(trace_messages=False)) as obs:
            reports = run_cells(
                chaos_cells([0, 1], events=40, algorithm="ss-always"),
                jobs=jobs,
            )
            obs.finish()
        return [r.summary() for r in reports], obs.collect(), obs.summary()

    def test_parallel_stats_match_serial_exactly(self):
        serial = self._stats(jobs=1)
        parallel = self._stats(jobs=2)
        assert parallel == serial
        # The merged session really carried the workers' observations.
        _, values, summary = parallel
        assert values["ops.total"] > 0
        assert any(name.startswith("health.state") for name in values)
        assert "metrics" in summary

    def test_unobserved_parallel_runs_stay_unobserved(self):
        reports = run_cells(
            chaos_cells([0], events=30, algorithm="ss-always"), jobs=2
        )
        assert len(reports) == 1 and reports[0].ok
