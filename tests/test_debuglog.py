"""Tests for the logging integration."""

import logging

from repro import ClusterConfig, SimBackend
from repro.debuglog import attach_debug_logging


def test_logs_network_events_and_cycles(caplog):
    cluster = SimBackend("ss-nonblocking", ClusterConfig(n=3, seed=0))
    detach = attach_debug_logging(cluster)
    with caplog.at_level(logging.DEBUG):
        cluster.write_sync(0, b"x")
        cluster.run_until(cluster.settle_cycles(1))
    text = "\n".join(record.getMessage() for record in caplog.records)
    assert "WRITE" in text
    assert "cycle 1 complete" in text


def test_detach_stops_network_logging(caplog):
    cluster = SimBackend("ss-nonblocking", ClusterConfig(n=3, seed=0))
    detach = attach_debug_logging(cluster)
    detach()
    detach()  # idempotent
    with caplog.at_level(logging.DEBUG, logger="repro.net"):
        cluster.write_sync(0, b"x")
    assert not any("WRITE" in message for message in caplog.messages)
