"""Gray-failure health classification and the alert engine.

The detector's contract (see ``repro.obs.health``): a crashed node is
classified ``crashed``, a throttled one ``limping``, and only actual
stabilization-layer detections — never slowness — produce
``corrupt-suspect``.  The alert engine latches per ``(rule, node)`` and
keeps history.  Everything here runs on the simulator, so every
classification is deterministic per seed.
"""

import pytest

from repro.config import scenario_config
from repro.backend.sim import SimBackend
from repro.fault import TransientFaultInjector
from repro.harness.chaos import ChaosCampaign
from repro.obs.alerts import (
    AlertEngine,
    RetransmitStormRule,
    SloRule,
    default_rules,
)
from repro.obs.health import (
    CORRUPT_SUSPECT,
    CRASHED,
    HEALTHY,
    LIMPING,
    HealthReport,
    NodeHealth,
)
from repro.obs.observe import Observability, session


def _throttled_run(seed: int, factor: float = 12.0) -> HealthReport:
    """Drive a 4-node cluster with node 3 throttled; return the sample."""
    with session() as obs:
        cluster = SimBackend("ss-nonblocking", scenario_config(n=4, seed=seed))
        cluster.throttle(3, factor)
        for i in range(8):
            cluster.write_sync(i % 3, f"w{i}".encode())
        cluster.run_for(40.0)  # let the straggler's late replies land
        report = cluster.obs.health.sample()
    obs.finish()
    return report


class TestHealthClassification:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_throttled_node_is_limping_never_corrupt(self, seed):
        report = _throttled_run(seed)
        assert report.state_of(3) == LIMPING
        assert report.in_state(CORRUPT_SUSPECT) == []
        assert report.in_state(CRASHED) == []
        for health in report.nodes[:3]:
            assert health.state == HEALTHY
        # Slowness is not corruption evidence: no heal counters moved.
        assert all(h.detections == 0 for h in report.nodes)

    def test_classification_is_deterministic_per_seed(self):
        assert _throttled_run(1).to_dict() == _throttled_run(1).to_dict()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_crashed_node_is_classified_crashed(self, seed):
        with session() as obs:
            cluster = SimBackend(
                "ss-nonblocking", scenario_config(n=4, seed=seed)
            )
            for i in range(4):
                cluster.write_sync(i % 4, f"a{i}".encode())
            cluster.crash(3)
            for i in range(20):
                cluster.write_sync(i % 3, f"b{i}".encode())
                cluster.run_for(5.0)
            report = cluster.obs.health.sample()
        obs.finish()
        assert report.state_of(3) == CRASHED
        assert report.in_state(HEALTHY) == [0, 1, 2]

    @pytest.mark.parametrize("seed", [0, 1])
    def test_corruption_detections_raise_corrupt_suspect(self, seed):
        with session() as obs:
            cluster = SimBackend(
                "ss-always", scenario_config(n=4, seed=seed, delta=2)
            )
            injector = TransientFaultInjector(cluster, seed=seed)
            for i in range(4):
                cluster.write_sync(i % 4, f"a{i}".encode())
            injector.corrupt_registers(node_ids=[2])
            cluster.run_for(10.0)  # gossip detects and heals
            report = cluster.obs.health.sample()
        obs.finish()
        suspects = report.in_state(CORRUPT_SUSPECT)
        assert suspects, "corruption healed without anyone turning suspect"
        # Suspicion comes only from detection-counter movement.
        assert all(report.nodes[n].detections >= 1 for n in suspects)
        assert report.in_state(LIMPING) == []
        assert report.in_state(CRASHED) == []

    def test_suspect_state_expires_after_the_window(self):
        with session() as obs:
            cluster = SimBackend(
                "ss-always", scenario_config(n=4, seed=0, delta=2)
            )
            injector = TransientFaultInjector(cluster, seed=0)
            for i in range(4):
                cluster.write_sync(i % 4, f"a{i}".encode())
            injector.corrupt_registers(node_ids=[2])
            cluster.run_for(10.0)
            assert cluster.obs.health.sample().in_state(CORRUPT_SUSPECT)
            # Keep traffic flowing past the suspect window so nobody
            # accrues enough silence to look crashed instead.
            for i in range(12):
                cluster.write_sync(i % 4, f"b{i}".encode())
                cluster.run_for(5.0)
            report = cluster.obs.health.sample()
        obs.finish()
        assert report.in_state(CORRUPT_SUSPECT) == []
        assert report.in_state(HEALTHY) == [0, 1, 2, 3]

    def test_sample_is_idempotent_per_timestamp(self):
        with session() as obs:
            cluster = SimBackend(
                "ss-nonblocking", scenario_config(n=4, seed=0)
            )
            cluster.write_sync(0, b"x")
            monitor = cluster.obs.health
            first = monitor.sample()
            assert monitor.sample() is first  # same clock → cached report
            cluster.run_for(1.0)
            assert monitor.sample() is not first
        obs.finish()


def _report(time: float, states: list[str], **overrides) -> HealthReport:
    """A synthetic health report with one node per entry of ``states``."""
    fields = {
        "service_ewma": 1.0,
        "replies": 5,
        "silence": 0.5,
        "retransmit_rate": 0.0,
        "queue_depth": 0,
        "detections": 0,
    }
    fields.update(overrides)
    return HealthReport(
        time=time,
        nodes=[
            NodeHealth(node=i, state=state, **fields)
            for i, state in enumerate(states)
        ],
    )


class TestAlertEngine:
    def test_latching_raises_once_then_resolves(self):
        engine = AlertEngine()
        raised = engine.evaluate(_report(1.0, [HEALTHY, LIMPING]))
        assert [(a.rule, a.node) for a in raised] == [("node-limping", 1)]
        alert = raised[0]
        # Condition still holding does not re-raise.
        assert engine.evaluate(_report(2.0, [HEALTHY, LIMPING])) == []
        assert engine.active() == [alert]
        # Condition clearing resolves with a timestamp.
        engine.evaluate(_report(3.0, [HEALTHY, HEALTHY]))
        assert engine.active() == []
        assert alert.resolved_at == 3.0
        assert engine.history == [alert]

    def test_default_rules_cover_every_unhealthy_state(self):
        engine = AlertEngine(default_rules())
        raised = engine.evaluate(
            _report(1.0, [CRASHED, LIMPING, CORRUPT_SUSPECT])
        )
        by_rule = {a.rule: a for a in raised}
        assert set(by_rule) == {
            "node-crashed",
            "node-limping",
            "node-corrupt-suspect",
        }
        assert by_rule["node-crashed"].severity == "critical"
        assert by_rule["node-corrupt-suspect"].severity == "critical"
        assert by_rule["node-limping"].severity == "warning"

    def test_retransmit_storm_rule(self):
        engine = AlertEngine([RetransmitStormRule(rate_threshold=5.0)])
        quiet = _report(1.0, [HEALTHY, HEALTHY])
        assert engine.evaluate(quiet) == []
        storm = _report(2.0, [HEALTHY, HEALTHY], retransmit_rate=20.0)
        raised = engine.evaluate(storm)
        assert {a.node for a in raised} == {0, 1}
        assert all(a.rule == "retransmit-storm" for a in raised)

    def test_slo_rule_reads_histogram_stats(self):
        engine = AlertEngine([SloRule("load.latency", "p99", 10.0)])
        healthy = _report(1.0, [HEALTHY])
        assert engine.evaluate(healthy, {"load.latency": {"p99": 9.0}}) == []
        raised = engine.evaluate(healthy, {"load.latency": {"p99": 50.0}})
        assert [a.rule for a in raised] == ["slo:load.latency.p99"]
        assert "exceeds SLO" in raised[0].message

    def test_alert_to_dict_round_trips_fields(self):
        engine = AlertEngine()
        (alert,) = engine.evaluate(_report(4.0, [LIMPING]))
        as_dict = alert.to_dict()
        assert as_dict["rule"] == "node-limping"
        assert as_dict["node"] == 0
        assert as_dict["time"] == 4.0
        assert as_dict["resolved_at"] is None

    def test_evaluate_session_combines_clusters(self):
        engine = AlertEngine()
        with session() as obs:
            assert engine.evaluate_session(obs) == []  # no clusters yet
            first = SimBackend(
                "ss-nonblocking", scenario_config(n=3, seed=0)
            )
            second = SimBackend(
                "ss-nonblocking", scenario_config(n=3, seed=1)
            )
            first.write_sync(0, b"x")
            second.write_sync(0, b"y")
            assert engine.evaluate_session(obs) == []  # everyone healthy
        obs.finish()


class TestChaosAlerts:
    def test_observed_campaign_collects_all_three_alert_classes(self):
        with session(Observability(trace_messages=False)) as obs:
            report = ChaosCampaign(seed=8, algorithm="ss-always").run(
                events=120
            )
            obs.finish()
        assert report.ok, report.failures
        rules = {alert["rule"] for alert in report.alerts}
        assert {
            "node-crashed",
            "node-limping",
            "node-corrupt-suspect",
        } <= rules
        assert f"{len(report.alerts)} alerts" in report.summary()

    def test_unobserved_campaign_collects_no_alerts(self):
        report = ChaosCampaign(seed=8, algorithm="ss-always").run(events=40)
        assert report.alerts == []
        assert "alerts" not in report.summary()
