"""Behaviour specific to the non-blocking algorithms (paper Section 3)."""

import pytest

from repro import ClusterConfig, SimBackend
from repro.core.register import TimestampedValue
from repro.core.ss_nonblocking import GossipMessage
from repro.errors import CancelledError


def make(algorithm, n=5, seed=0, **kwargs):
    return SimBackend(algorithm, ClusterConfig(n=n, seed=seed, **kwargs))


class TestNonBlockingSemantics:
    def test_writes_terminate_despite_concurrent_snapshot(self):
        """Writes never wait for snapshots (the non-blocking property)."""
        cluster = make("dgfr-nonblocking", seed=3)

        async def workload():
            snap_task = cluster.spawn(cluster.snapshot(4))
            for i in range(10):
                await cluster.write(0, f"w{i}")
            await snap_task
            return True

        assert cluster.run_until(workload())

    def test_snapshot_starves_under_continuous_writes(self):
        """With writes in every round, the snapshot loop cannot exit.

        This is the liveness gap of the non-blocking algorithm that the
        always-terminating algorithms close (benchmark E12 quantifies it).
        """
        cluster = make("dgfr-nonblocking", seed=5)
        stop_writing = []

        async def writer(node):
            index = 0
            while not stop_writing:
                await cluster.write(node, f"w{index}")
                index += 1

        async def probe():
            writer_tasks = [cluster.spawn(writer(node)) for node in range(4)]
            snap_task = cluster.spawn(cluster.snapshot(4))
            await cluster.kernel.sleep(300.0)
            starved = not snap_task.done()
            stop_writing.append(True)  # let writes cease
            await snap_task
            await cluster.kernel.gather(writer_tasks)
            return starved

        assert cluster.run_until(probe(), max_events=None)

    def test_snapshot_terminates_after_writes_cease(self):
        cluster = make("dgfr-nonblocking", seed=7)

        async def workload():
            for i in range(3):
                await cluster.write(1, i)
            return await cluster.snapshot(2)

        result = cluster.run_until(workload())
        assert result.vector_clock[1] == 3

    def test_snapshot_single_round_when_uncontended(self):
        """Uncontended snapshot: one query round, ssn bumps by exactly 2.

        (The repeat-until loop needs one extra confirming round only when
        interference occurred; with no writes, ``prev = reg`` immediately —
        the paper's Figure 1 shows a single round trip.)
        """
        cluster = make("dgfr-nonblocking", seed=9)
        cluster.write_sync(0, "x")
        node = cluster.node(4)
        ssn_before = node.ssn
        cluster.snapshot_sync(4)
        assert node.ssn == ssn_before + 1


class TestGossip:
    def test_baseline_sends_no_gossip(self):
        cluster = make("dgfr-nonblocking")
        cluster.run_until(cluster.settle_cycles(3))
        assert cluster.metrics.snapshot().messages("GOSSIP") == 0

    def test_ss_gossips_every_cycle(self):
        cluster = make("ss-nonblocking", n=4)
        cluster.run_until(cluster.settle_cycles(3))
        gossip = cluster.metrics.snapshot().messages("GOSSIP")
        # n(n-1) gossip messages per cycle, 3+ cycles.
        assert gossip >= 3 * 4 * 3

    def test_gossip_carries_single_entry(self):
        message = GossipMessage(entry=TimestampedValue(1, b"x" * 100))
        # O(ν) bits: one timestamp + one value, independent of n.
        assert message.wire_size() < 200

    def test_gossip_heals_corrupted_low_ts(self):
        """Theorem 1's scenario: ts_i below the system's view of p_i."""
        cluster = make("ss-nonblocking", seed=11)
        cluster.write_sync(0, "v1")
        cluster.write_sync(0, "v2")
        node = cluster.node(0)
        node.ts = 0  # transient fault: ts collapses
        cluster.run_until(cluster.settle_cycles(3))
        assert node.ts >= 2

    def test_operation_heals_stale_foreign_entry(self):
        """Gossip only heals a node's *own* entry (line 11 sends reg[k] to
        p_k); a stale-low copy of another node's entry is lattice-safe and
        is healed by the merge of the next operation's majority replies."""
        cluster = make("ss-nonblocking", seed=13)
        cluster.write_sync(2, "good")
        cluster.run_until(cluster.settle_cycles(2))
        from repro.core.register import BOTTOM

        cluster.node(4).reg[2] = BOTTOM
        result = cluster.snapshot_sync(4)
        assert result.values[2] == "good"
        assert cluster.node(4).reg[2].value == "good"

    def test_baseline_never_heals_shadowed_writer(self):
        """The motivating failure: corrupted-high reg entries shadow a
        writer forever in the baseline, while gossip heals the SS variant
        (reproduces the paper's core robustness difference)."""
        outcomes = {}
        for name in ("dgfr-nonblocking", "ss-nonblocking"):
            cluster = make(name, seed=3)
            for j in range(1, 5):
                cluster.node(j).reg[0] = TimestampedValue(500, "GARBAGE")
            cluster.run_until(cluster.settle_cycles(4))
            cluster.write_sync(0, "fresh")
            outcomes[name] = cluster.snapshot_sync(1).values[0]
        assert outcomes["dgfr-nonblocking"] == "GARBAGE"
        assert outcomes["ss-nonblocking"] == "fresh"


class TestSsnHygiene:
    def test_stale_snapshot_acks_ignored(self):
        """Acks with ssn' != ssn never satisfy the collector (line 9/20)."""
        cluster = make("ss-nonblocking", seed=17)
        node = cluster.node(0)
        node.ssn = 7
        from repro.core.dgfr_nonblocking import SnapshotAckMessage

        # Deliver forged stale acks from a majority; they must be dropped.
        for sender in (1, 2, 3):
            node.deliver(
                sender, SnapshotAckMessage(reg=node.reg.copy(), ssn=3)
            )
        result = cluster.snapshot_sync(0)  # must still run its own round
        assert result.vector_clock == (0,) * 5

    def test_corrupted_high_ssn_does_not_block(self):
        cluster = make("ss-nonblocking", seed=19)
        cluster.node(0).ssn = 10**9
        result = cluster.snapshot_sync(0)
        assert result.vector_clock == (0,) * 5


class TestCancellationSafety:
    def test_kernel_cancel_of_pending_snapshot(self):
        """Cancelling an operation task leaves the node reusable."""
        cluster = make("dgfr-nonblocking", seed=23)
        cluster.crash(1)
        cluster.crash(2)
        cluster.crash(3)
        cluster.crash(4)  # no majority: snapshot cannot finish

        async def run():
            snap_task = cluster.spawn(cluster.snapshot(0))
            await cluster.kernel.sleep(50.0)
            assert not snap_task.done()
            snap_task.cancel()
            await cluster.kernel.sleep(1.0)
            return snap_task.cancelled()

        assert cluster.run_until(run())
        for node_id in (1, 2, 3, 4):
            cluster.resume(node_id)
        with pytest.raises(CancelledError):
            # the recorded history op never responded; direct node op works
            raise CancelledError
        assert cluster.node(0).snapshot is not None
