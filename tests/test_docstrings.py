"""Meta-test: every public item in the library carries a docstring.

Documentation is a deliverable; this test keeps it from regressing.
Public = importable from a ``repro`` module without a leading underscore.
"""

import importlib
import inspect
import pathlib
import pkgutil

import repro

EXEMPT_MODULES = {"repro.__main__"}  # CLI doc lives in the module docstring


def _iter_modules():
    package_dir = pathlib.Path(repro.__file__).parent
    yield repro
    for info in pkgutil.walk_packages([str(package_dir)], prefix="repro."):
        if info.name in EXEMPT_MODULES:
            continue
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        yield name, member


def test_every_module_has_a_docstring():
    undocumented = [
        module.__name__
        for module in _iter_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_every_public_class_and_function_documented():
    missing = []
    for module in _iter_modules():
        for name, member in _public_members(module):
            if not (member.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_public_methods_documented():
    missing = []
    for module in _iter_modules():
        for class_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for method_name, method in vars(cls).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ or "").strip():
                    missing.append(
                        f"{module.__name__}.{class_name}.{method_name}"
                    )
    assert not missing, f"undocumented public methods: {missing}"
