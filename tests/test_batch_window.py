"""Transport batch-window edge cases (``ChannelConfig.batch_window``).

The contract under test: batching is invisible above the transport.  A
window of 1 leaves every seeded run byte-identical to the unbatched
path, bundles split by partitions heal like any other lost packet, and
loss/duplication applied to a bundle (one channel draw for the whole
bundle) still yields linearizable histories on every backend.
"""

import asyncio
from dataclasses import dataclass

import pytest

from repro import ClusterConfig, SimBackend
from repro.analysis.linearizability import check_snapshot_history
from repro.analysis.metrics import MetricsCollector
from repro.config import ChannelConfig, scenario_config
from repro.net.batch import BatchMessage, BatchWindow
from repro.net.message import Message


@dataclass(frozen=True)
class _Probe(Message):
    KIND = "PROBE"

    tag: int


class _FakeKernel:
    """Records ``call_soon`` callbacks so tests control flush timing."""

    def __init__(self):
        self.scheduled = []

    def call_soon(self, fn, *args):
        self.scheduled.append((fn, args))

    def run_scheduled(self):
        pending, self.scheduled = self.scheduled, []
        for fn, args in pending:
            fn(*args)


def window(size, metrics=None):
    kernel = _FakeKernel()
    sent = []
    batcher = BatchWindow(
        kernel, size, lambda src, dst, msg: sent.append((src, dst, msg)),
        metrics=metrics,
    )
    return kernel, batcher, sent


class TestBatchWindowUnit:
    def test_buffers_until_end_of_instant(self):
        kernel, batcher, sent = window(8)
        batcher.push(0, 1, _Probe(tag=1))
        batcher.push(0, 1, _Probe(tag=2))
        assert not sent and batcher.pending() == 2
        kernel.run_scheduled()
        assert batcher.pending() == 0
        assert len(sent) == 1
        bundle = sent[0][2]
        assert isinstance(bundle, BatchMessage)
        assert [m.tag for m in bundle.messages] == [1, 2]

    def test_window_full_flushes_eagerly(self):
        kernel, batcher, sent = window(2)
        batcher.push(0, 1, _Probe(tag=1))
        batcher.push(0, 1, _Probe(tag=2))
        assert len(sent) == 1  # flushed before the end-of-instant callback
        kernel.run_scheduled()  # the stale callback finds nothing to do
        assert len(sent) == 1

    def test_singleton_forwarded_bare(self):
        kernel, batcher, sent = window(8)
        batcher.push(2, 3, _Probe(tag=9))
        kernel.run_scheduled()
        assert sent == [(2, 3, _Probe(tag=9))]

    def test_edges_are_independent(self):
        kernel, batcher, sent = window(8)
        batcher.push(0, 1, _Probe(tag=1))
        batcher.push(0, 2, _Probe(tag=2))
        kernel.run_scheduled()
        assert len(sent) == 2  # one bare message per edge, no cross-bundling
        assert all(not isinstance(m, BatchMessage) for _, _, m in sent)

    def test_flush_all_drains_every_edge(self):
        kernel, batcher, sent = window(8)
        for dst in (1, 2, 3):
            batcher.push(0, dst, _Probe(tag=dst))
            batcher.push(0, dst, _Probe(tag=dst + 10))
        batcher.flush_all()
        assert batcher.pending() == 0
        assert len(sent) == 3

    def test_metrics_count_bundles_and_inner_messages(self):
        metrics = MetricsCollector()
        kernel, batcher, sent = window(4, metrics=metrics)
        for tag in range(4):
            batcher.push(0, 1, _Probe(tag=tag))  # window-full flush
        batcher.push(0, 1, _Probe(tag=99))  # singleton: no bundle recorded
        kernel.run_scheduled()
        snap = metrics.snapshot()
        assert snap.batches == 1
        assert snap.batched_messages == 4


def fingerprint(cluster, snap):
    return (
        tuple(snap.values),
        cluster.metrics.snapshot().total_messages,
        cluster.kernel.events_processed,
        round(cluster.kernel.now, 9),
    )


def seeded_run(config):
    cluster = SimBackend("amortized", config)

    async def workload():
        await cluster.kernel.gather(
            [cluster.write(i % 4, f"v{i}") for i in range(8)]
        )
        return await cluster.snapshot(0)

    snap = cluster.run_until(workload())
    return fingerprint(cluster, snap)


class TestWindowOfOne:
    def test_window_one_is_byte_identical_to_default(self):
        """``batch_window=1`` must not construct a batcher (no extra RNG
        draws), so the seeded schedule matches the default exactly."""
        default = seeded_run(scenario_config(n=4, seed=21))
        explicit = seeded_run(
            ClusterConfig(
                n=4, seed=21,
                channel=ChannelConfig(batch_window=1),
            )
        )
        assert default == explicit

    def test_batched_run_coalesces_on_the_wire(self):
        cluster = SimBackend("amortized", scenario_config(n=4, seed=21, batch=8))

        async def workload():
            await cluster.kernel.gather(
                [cluster.write(0, f"v{i}") for i in range(8)]
            )

        cluster.run_until(workload())
        snap = cluster.metrics.snapshot()
        assert snap.batches > 0
        assert snap.batched_messages >= 2 * snap.batches


class TestPartitionAndLoss:
    def test_batch_split_across_partition_heals(self):
        cluster = SimBackend("amortized", scenario_config(n=4, seed=23, batch=8))

        async def workload():
            cluster.network.partition({3}, {0, 1, 2})
            majority = [cluster.write(0, f"m{i}") for i in range(4)]
            stranded = cluster.spawn(cluster.write(3, "stranded"))
            await cluster.kernel.gather(majority)
            assert not stranded.done()
            cluster.network.heal()
            await stranded
            return await cluster.snapshot(1)

        result = cluster.run_until(workload())
        assert result.values[3] == "stranded"
        report = check_snapshot_history(cluster.history.records(), 4)
        assert report.ok, report.summary()

    def test_batched_ops_under_loss_and_duplication_linearizable(self):
        """One loss/duplication draw covers a whole bundle; dropping or
        doubling bundles must not break linearizability."""
        cluster = SimBackend(
            "amortized",
            scenario_config(
                n=4, seed=29, loss=0.15, duplication=0.1, batch=4
            ),
        )

        async def workload():
            tasks = []
            for node in range(4):
                tasks.extend(
                    cluster.write(node, f"n{node}w{i}") for i in range(3)
                )
                tasks.append(cluster.snapshot(node))
            await cluster.kernel.gather(tasks)

        cluster.run_until(workload())
        report = check_snapshot_history(cluster.history.records(), 4)
        assert report.ok, report.summary()


@pytest.mark.runtime
class TestLiveBackends:
    """The same bundle/unbundle path over real event loops and sockets."""

    def test_batched_ops_linearizable_on_asyncio(self):
        from repro.backend.aio import AsyncioBackend

        async def main():
            cluster = AsyncioBackend(
                "amortized",
                scenario_config(n=4, seed=31, batch=4),
                time_scale=0.002,
            )
            cluster.start()
            try:
                writes = [cluster.write(node, node * 3) for node in range(4)]
                await asyncio.wait_for(asyncio.gather(*writes), timeout=15)
                result = await asyncio.wait_for(cluster.snapshot(2), timeout=15)
                assert result.values == (0, 3, 6, 9)
                report = check_snapshot_history(cluster.history.records(), 4)
                assert report.ok, report.summary()
            finally:
                cluster.stop()

        asyncio.run(main())

    def test_batched_ops_linearizable_over_udp(self):
        from repro.backend.udp import UdpBackend

        async def main():
            cluster = UdpBackend(
                "amortized",
                scenario_config(n=4, seed=37, batch=4),
                time_scale=0.002,
            )
            await cluster.create()
            cluster.start()
            try:
                writes = [
                    cluster.write(node, f"u{node}".encode())
                    for node in range(4)
                ]
                await asyncio.wait_for(asyncio.gather(*writes), timeout=20)
                result = await asyncio.wait_for(cluster.snapshot(1), timeout=20)
                assert result.values == (b"u0", b"u1", b"u2", b"u3")
                report = check_snapshot_history(cluster.history.records(), 4)
                assert report.ok, report.summary()
            finally:
                await cluster.close()

        asyncio.run(main())
