"""Tests for the localhost-UDP transport."""

import asyncio

import pytest

from repro import ClusterConfig
from repro.analysis.linearizability import check_snapshot_history
from repro.errors import ConfigurationError
from repro.backend.udp import UdpBackend

pytestmark = pytest.mark.runtime


def run(coro):
    return asyncio.run(coro)


async def make_cluster(algorithm, config, time_scale=0.002):
    backend = UdpBackend(algorithm, config, time_scale=time_scale)
    await backend.create()
    backend.start()
    return backend


class TestUdpCluster:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            UdpBackend("bogus")

    def test_write_snapshot_over_real_udp(self):
        async def main():
            cluster = await make_cluster(
                "ss-nonblocking", ClusterConfig(n=4, seed=1), time_scale=0.002
            )
            try:
                ts = await asyncio.wait_for(
                    cluster.write(0, b"datagram"), timeout=10
                )
                assert ts == 1
                result = await asyncio.wait_for(cluster.snapshot(1), timeout=10)
                assert result.values[0] == b"datagram"
                # Bytes really crossed sockets.
                assert cluster.metrics.snapshot().total_messages > 0
            finally:
                await cluster.close()

        run(main())

    def test_concurrent_ops_linearizable_over_udp(self):
        async def main():
            cluster = await make_cluster(
                "ss-always", ClusterConfig(n=4, seed=2, delta=1),
                time_scale=0.002,
            )
            try:
                await asyncio.wait_for(
                    asyncio.gather(
                        *(cluster.write(node, node) for node in range(4))
                    ),
                    timeout=20,
                )
                results = await asyncio.wait_for(
                    asyncio.gather(
                        *(cluster.snapshot(node) for node in range(4))
                    ),
                    timeout=20,
                )
                assert all(r.values == (0, 1, 2, 3) for r in results)
                report = check_snapshot_history(cluster.history.records(), 4)
                assert report.ok, report.summary()
            finally:
                await cluster.close()

        run(main())

    def test_crash_and_majority_over_udp(self):
        async def main():
            cluster = await make_cluster(
                "ss-nonblocking", ClusterConfig(n=5, seed=3), time_scale=0.002
            )
            try:
                cluster.crash(3)
                cluster.crash(4)
                await asyncio.wait_for(cluster.write(0, "udp-q"), timeout=15)
                result = await asyncio.wait_for(cluster.snapshot(2), timeout=15)
                assert result.values[0] == "udp-q"
            finally:
                await cluster.close()

        run(main())


def test_legacy_facade_removed():
    with pytest.raises(ImportError, match="create_backend"):
        from repro.runtime import UdpSnapshotCluster  # noqa: F401
