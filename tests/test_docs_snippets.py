"""Executable documentation: docs/*.md code blocks run, links resolve.

Extends the README pattern (``tests/test_readme.py``) to the whole
documentation set:

* every ```` ```python ```` block in ``docs/*.md`` is **executed**
  (blocks within one file share a namespace, doctest-session style, so
  a later block may use an earlier block's imports).  Blocks that
  cannot run standalone opt out explicitly:

  - a block containing top-level ``await`` is compiled with
    ``PyCF_ALLOW_TOP_LEVEL_AWAIT`` (syntax-checked) but not executed —
    it needs a live event loop and a cluster;
  - a block preceded by an HTML comment ``<!-- docs-snippet: no-exec -->``
    on the line above its fence is compiled but not executed.

* every **relative markdown link** in ``README.md`` and ``docs/*.md``
  must point at a file or directory that exists (anchors stripped;
  ``http(s)``/``mailto`` links are out of scope).

Adding a doc snippet that doesn't run — or a link to a file that was
renamed — fails this module, which is what keeps the docs audited.
"""

import ast
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOCS = sorted((ROOT / "docs").glob("*.md"))
LINKED_SOURCES = [ROOT / "README.md", *DOCS]

NO_EXEC_MARKER = "<!-- docs-snippet: no-exec -->"
_BLOCK_RE = re.compile(r"(^|\n)([^\n]*)\n```python\n(.*?)```", re.DOTALL)
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _doc_blocks(path: pathlib.Path):
    """Yield ``(preceding_line, source, line_number)`` per python block."""
    text = path.read_text()
    for match in _BLOCK_RE.finditer(text):
        line = text[: match.start(3)].count("\n") + 1
        yield match.group(2).strip(), match.group(3), line


def _needs_event_loop(source: str) -> bool:
    """True when the block only compiles with top-level ``await``.

    ``ast.parse`` accepts top-level ``await`` (the grammar allows it;
    the error surfaces at bytecode generation), so probe with
    ``compile`` and retry under ``PyCF_ALLOW_TOP_LEVEL_AWAIT``. A block
    that fails both compiles is genuinely broken and raises here.
    """
    try:
        compile(source, "<doc-block>", "exec")
    except SyntaxError:
        compile(source, "<doc-block>", "exec", flags=ast.PyCF_ALLOW_TOP_LEVEL_AWAIT)
        return True
    return False


def _cases():
    for path in DOCS:
        for preceding, source, line in _doc_blocks(path):
            yield pytest.param(
                path, preceding, source,
                id=f"{path.name}:{line}",
            )


@pytest.fixture(scope="module")
def doc_namespaces():
    """One shared namespace per documentation file (session style)."""
    return {}


@pytest.mark.parametrize("path,preceding,source", list(_cases()))
def test_docs_python_block(path, preceding, source, doc_namespaces):
    label = f"{path.name} block"
    if _needs_event_loop(source):
        # Top-level await: syntax-check only (needs a cluster + loop).
        compile(
            source, label, "exec",
            flags=ast.PyCF_ALLOW_TOP_LEVEL_AWAIT,
        )
        return
    code = compile(source, label, "exec")
    if preceding == NO_EXEC_MARKER:
        return
    namespace = doc_namespaces.setdefault(path.name, {})
    exec(code, namespace)  # noqa: S102 - executing our own documentation


def test_every_doc_has_been_collected():
    # A rename that empties DOCS would silently skip everything above.
    names = {path.name for path in DOCS}
    assert {
        "algorithms.md", "api.md", "architecture.md", "benchmarking.md",
        "faq.md", "observability.md", "runtimes.md", "verification.md",
    } <= names


@pytest.mark.parametrize(
    "path", LINKED_SOURCES, ids=lambda p: str(p.relative_to(ROOT))
)
def test_relative_links_resolve(path):
    text = path.read_text()
    broken = []
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name}: broken relative links {broken}"
