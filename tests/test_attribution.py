"""Tail-latency attribution: per-op blame, aggregates, and the PR's
acceptance scenario (a throttled node dominates the blame table and
raises a limping alert naming it)."""

import json

import pytest

from repro.backend.base import run_on_backend
from repro.config import scenario_config
from repro.backend.sim import SimBackend
from repro.load import LoadSpec, run_load
from repro.load.driver import LoadGenerator
from repro.obs.alerts import AlertEngine
from repro.obs.attribution import (
    QuorumRound,
    attribute_ops,
    blame_aggregate,
    blame_rows,
    dominant_phases,
    merge_blame,
    slowest_node,
)
from repro.obs.observe import Observability, session


class TestQuorumRound:
    def test_records_first_reply_only(self):
        rnd = QuorumRound(kind="WRITEack", node=0, start=10.0, threshold=3)
        rnd.record(1, 11.0)
        rnd.record(1, 15.0)  # duplicate ignored
        rnd.record(2, 12.5)
        assert rnd.replies == {1: 1.0, 2: 2.5}
        assert rnd.slowest() == (2, 2.5)

    def test_duration_requires_completion(self):
        rnd = QuorumRound(kind="SNAPSHOTack", node=1, start=5.0, threshold=2)
        assert rnd.duration is None
        rnd.end = 7.5
        rnd.completer = 2
        assert rnd.duration == 2.5
        as_dict = rnd.to_dict()
        assert as_dict["completer"] == 2
        assert as_dict["replies"] == {}


class TestBlameAggregate:
    def test_merge_blame_folds_counts_and_maxima(self):
        into = {
            "attributed": 2,
            "nodes": {1: {
                "blamed": 2, "completed": 1, "replies": 4,
                "latency_sum": 8.0, "latency_max": 3.0,
            }},
        }
        other = {
            "attributed": 3,
            # String keys survive a JSON round trip; merge must coerce.
            "nodes": {"1": {
                "blamed": 1, "completed": 2, "replies": 2,
                "latency_sum": 5.0, "latency_max": 4.5,
            }},
        }
        merge_blame(into, other)
        assert into["attributed"] == 5
        row = into["nodes"][1]
        assert row["blamed"] == 3
        assert row["completed"] == 3
        assert row["replies"] == 6
        assert row["latency_sum"] == 13.0
        assert row["latency_max"] == 4.5

    def test_blame_rows_on_empty_aggregate(self):
        assert blame_rows({"attributed": 0, "nodes": {}}) == []
        assert slowest_node([]) is None


def _observed_spans(seed: int = 0, throttled: int | None = None):
    """Spans from a short observed sim run (optionally one limper)."""
    with session() as obs:
        cluster = SimBackend("ss-nonblocking", scenario_config(n=4, seed=seed))
        if throttled is not None:
            cluster.throttle(throttled, 10.0)
        for i in range(6):
            cluster.write_sync(i % 3, f"w{i}".encode())
            cluster.snapshot_sync((i + 1) % 3)
        cluster.run_for(40.0)  # drain late replies into the round records
    obs.finish()
    return obs.recorder.spans


class TestOperationAttribution:
    def test_every_op_attributes_with_rounds_and_phases(self):
        records = attribute_ops(_observed_spans())
        assert len(records) == 12
        for record in records:
            assert record.rounds >= 1
            assert record.slowest_responder is not None
            assert record.duration > 0
            assert record.dominant_phase.split(".")[0] in ("write", "snapshot")
            assert 0.0 < record.dominant_share <= 1.0
            json.dumps(record.to_dict())  # JSON-safe

    def test_blame_shares_sum_to_one(self):
        rows = blame_rows(blame_aggregate(_observed_spans()))
        assert rows
        assert sum(row["blame_share"] for row in rows) == pytest.approx(1.0)
        for row in rows:
            assert row["max_reply"] >= row["mean_reply"] >= 0.0

    def test_throttled_node_tops_the_blame_table(self):
        spans = _observed_spans(throttled=2)
        node, share = slowest_node(spans)
        assert node == 2
        assert share > 0.5
        phases = dominant_phases(spans)
        assert phases  # time went somewhere nameable
        assert all(length >= 0.0 for length in phases.values())


class TestLimpingAcceptance:
    """The PR's acceptance scenario, golden-tested on the simulator."""

    def test_limping_node_is_alerted_and_blamed(self):
        obs = Observability(trace_messages=False)
        engine = AlertEngine()

        async def body(cluster):
            cluster.throttle(3, 12.0)
            generator = LoadGenerator(
                cluster,
                LoadSpec(clients=4, depth=2, duration=80.0, seed=1),
            )
            await generator.run()
            # Drain: the limper's late replies are the attribution
            # evidence, and they arrive after the quorums completed.
            await cluster.kernel.sleep(60.0)
            engine.evaluate_session(obs)
            return generator.attribution()

        with session(obs):
            attribution = run_on_backend(
                "sim",
                "ss-nonblocking",
                scenario_config(n=5, seed=1),
                body,
                max_events=None,
            )
        obs.finish()

        # The health monitor names the throttled node, and nothing else.
        limping = [a for a in engine.history if a.rule == "node-limping"]
        assert [a.node for a in limping] == [3]
        assert not any(
            a.rule == "node-corrupt-suspect" for a in engine.history
        )

        # >= 90% of attributed operations blame it as slowest responder.
        # The criterion is measured from healthy requesters: an op issued
        # *by* the limper sees every link slowed equally (all its channels
        # carry the factor), so its round blames an arbitrary peer.
        records = [
            r
            for r in attribute_ops(obs.recorder.spans)
            if r.slowest_responder is not None and r.node != 3
        ]
        assert len(records) >= 20
        share = sum(1 for r in records if r.slowest_responder == 3) / len(
            records
        )
        assert share >= 0.9

        # The load generator's reduction agrees: across *all* ops —
        # including the limper's own — node 3 still dominates the table.
        assert attribution is not None
        assert attribution["slowest_node"] == 3
        assert attribution["blame_share"] >= 0.7


class TestLoadAttribution:
    def test_run_load_report_carries_attribution(self):
        report = run_load(spec=LoadSpec(duration=30.0, seed=3))
        assert report.ok, report.failures
        attribution = report.attribution
        assert attribution is not None
        assert attribution["attributed"] > 0
        assert attribution["slowest_node"] in range(report.n)
        row = report.row()
        assert row["slowest_node"] == attribution["slowest_node"]
        assert row["blame_share"] == pytest.approx(
            attribution["blame_share"], abs=1e-3
        )
        assert row["dominant_phase"] == attribution["dominant_phase"]
        json.dumps(row)  # sweep rows stay JSON-safe
