"""Docs-stay-true tests: the README's code examples must execute."""

import pathlib
import re

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_exists_with_expected_sections():
    text = README.read_text()
    for section in ("## Install", "## Quickstart", "## The algorithms",
                    "## Architecture", "## Verifying the paper's claims"):
        assert section in text


def test_quickstart_block_executes():
    blocks = python_blocks()
    assert blocks, "README has no python code blocks"
    namespace = {}
    exec(compile(blocks[0], "README-quickstart", "exec"), namespace)  # noqa: S102
    cut = namespace["cut"]
    assert cut.items() == {"alpha": (1, b"a1"), "beta": (1, b"b1")}


def test_register_level_block_executes():
    blocks = python_blocks()
    assert len(blocks) >= 2, "README lost its register-level example"
    namespace = {}
    exec(compile(blocks[1], "README-registers", "exec"), namespace)  # noqa: S102
    result = namespace["result"]
    assert result.values == (b"alpha", None, None, None, None)


def test_algorithm_table_matches_registry():
    from repro import ALGORITHMS

    text = README.read_text()
    for name in ALGORITHMS:
        if name.startswith("broken") or name == "bfa":
            continue  # test-registered fixtures, not part of the library
        assert f"`{name}`" in text, f"README missing algorithm {name}"
