"""Tests for the fuzz subsystem: specs, executor, shrinker, campaigns.

The end-to-end guarantee under test: a deliberately broken algorithm is
*found* by a fuzz campaign, the failing spec is *shrunk* to a small
pinned counterexample, and the counterexample file *replays* the exact
violation bit-identically — twice.
"""

import json
from dataclasses import replace

import pytest

from repro.config import ConfigurationError, scenario_config
from repro.fuzz import (
    ScenarioEvent,
    ScenarioSpec,
    generate_spec,
    load_counterexample,
    replay_counterexample,
    run_fuzz_campaign,
    run_spec,
    shrink_spec,
    write_counterexample,
)

# Registers the "broken-first-ack" algorithm (a quorum-intersection bug:
# snapshots merge only their first ack) as a fuzz target.
from broken_algorithms import BrokenFirstAckOnly  # noqa: F401

#: The generated seed (under the default generator parameters with
#: ``events=40``) whose spec exposes the broken-first-ack bug — found by
#: the campaign in the e2e test below, pinned here so the shrink tests
#: don't have to search for it.
BUG_SEED = 10


class TestScenarioSpec:
    def test_event_round_trips_through_dict(self):
        event = ScenarioEvent(
            kind="partition", group=(0, 2), mode="", gap=0.25
        )
        assert ScenarioEvent.from_dict(event.to_dict()) == event

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown event kind"):
            ScenarioEvent(kind="meteor-strike")

    def test_spec_round_trips_through_json(self):
        spec = generate_spec(7, events=30)
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_json_form_is_canonical(self):
        spec = generate_spec(7, events=10)
        assert spec.to_json() == ScenarioSpec.from_json(spec.to_json()).to_json()

    def test_save_load_round_trip(self, tmp_path):
        spec = generate_spec(3, events=12)
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ScenarioSpec.load(path) == spec

    def test_generation_is_deterministic(self):
        assert generate_spec(42) == generate_spec(42)
        assert generate_spec(42) != generate_spec(43)

    def test_generated_events_are_well_formed(self):
        for seed in range(8):
            spec = generate_spec(seed, events=30)
            assert 3 <= spec.n <= 5
            assert len(spec.events) == 30
            for event in spec.events:
                if event.kind in ("write", "snapshot", "crash", "resume"):
                    assert 0 <= event.node < spec.n
                if event.kind == "partition":
                    assert event.group
                    assert len(event.group) <= (spec.n - 1) // 2
                    assert all(0 <= i < spec.n for i in event.group)

    def test_with_events_unpins_script(self):
        spec = replace(generate_spec(1, events=5), decision_script=(1, 0))
        trimmed = spec.with_events(spec.events[:2])
        assert trimmed.decision_script is None
        assert len(trimmed.events) == 2

    def test_config_uses_spec_dimensions(self):
        spec = generate_spec(5)
        config = spec.config()
        assert config.n == spec.n
        assert config.seed == spec.seed
        assert config.delta == spec.delta
        assert config.channel.min_delay == spec.min_delay
        assert config.channel.loss_probability == spec.loss


class TestScenarioConfigFactory:
    def test_defaults_match_cluster_config(self):
        config = scenario_config()
        assert config.n == 5
        assert config.delta == 0.0
        assert config.channel.loss_probability == 0.0
        assert config.channel.duplication_probability == 0.0

    def test_fixed_delay_pins_both_bounds(self):
        config = scenario_config(fixed_delay=1.0)
        assert config.channel.min_delay == config.channel.max_delay == 1.0

    def test_fixed_delay_conflicts_with_range(self):
        with pytest.raises(ConfigurationError, match="not both"):
            scenario_config(fixed_delay=1.0, min_delay=0.5)

    def test_duplication_defaults_to_half_loss(self):
        config = scenario_config(loss=0.1)
        assert config.channel.duplication_probability == pytest.approx(0.05)

    def test_overrides_pass_through(self):
        config = scenario_config(n=3, max_int=64, quorum_size=2)
        assert config.max_int == 64
        assert config.quorum_size == 2


class TestExecutor:
    def test_clean_spec_passes(self):
        outcome = run_spec(generate_spec(0, events=20))
        assert outcome.ok, outcome.failures
        assert outcome.applied + outcome.skipped == 20
        assert outcome.checks >= 2  # final history + final invariants

    def test_runs_are_deterministic(self):
        spec = generate_spec(5, events=25)
        first = run_spec(spec)
        second = run_spec(spec)
        assert first.fingerprint() == second.fingerprint()
        assert first.failures == second.failures

    def test_capture_does_not_perturb_the_run(self):
        spec = generate_spec(9, events=25)
        plain = run_spec(spec)
        captured = run_spec(spec, capture_decisions=True)
        assert plain.fingerprint() == captured.fingerprint()
        assert captured.decision_log  # ties were recorded
        assert not plain.decision_log  # …but only under capture

    def test_pinned_script_replays_identically(self):
        spec = generate_spec(9, events=25)
        captured = run_spec(spec, capture_decisions=True)
        pinned = replace(
            spec,
            decision_script=tuple(c for c, _n in captured.decision_log),
        )
        scripted = run_spec(pinned)
        assert scripted.fingerprint() == captured.fingerprint()

    def test_corruption_skipped_for_non_stabilizing_algorithms(self):
        events = (
            ScenarioEvent(kind="write", node=0, value="w0"),
            ScenarioEvent(kind="corrupt", mode="ts"),
            ScenarioEvent(kind="snapshot", node=1),
        )
        spec = ScenarioSpec(
            algorithm="dgfr-nonblocking", n=3, events=events
        )
        outcome = run_spec(spec)
        assert outcome.ok, outcome.failures
        assert outcome.skipped == 1

    def test_corruption_recovery_checked_for_stabilizing_algorithms(self):
        events = (
            ScenarioEvent(kind="write", node=0, value="w0"),
            ScenarioEvent(kind="corrupt", mode="registers"),
            ScenarioEvent(kind="write", node=1, value="w1"),
            ScenarioEvent(kind="snapshot", node=2),
        )
        spec = ScenarioSpec(algorithm="ss-always", n=3, delta=0.0, events=events)
        outcome = run_spec(spec)
        assert outcome.ok, outcome.failures
        assert outcome.checks >= 4  # pre-corruption + post-recovery + finals

    def test_crash_guard_never_kills_majority(self):
        events = tuple(
            ScenarioEvent(kind="crash", node=node) for node in range(4)
        ) + (ScenarioEvent(kind="write", node=0, value="w"),)
        outcome = run_spec(ScenarioSpec(algorithm="ss-always", n=4, events=events))
        assert outcome.ok, outcome.failures
        assert outcome.skipped >= 3  # only one crash fits n=4


class TestShrinker:
    def test_shrink_requires_a_failing_spec(self):
        with pytest.raises(ValueError, match="needs a failing spec"):
            shrink_spec(generate_spec(0, events=10))

    def test_shrinks_bug_to_small_pinned_counterexample(self):
        spec = generate_spec(BUG_SEED, algorithm="broken-first-ack", events=40)
        assert not run_spec(spec).ok  # the seed really exposes the bug
        result = shrink_spec(spec)
        assert result.original_events == 40
        # The acceptance bar: the counterexample keeps at most 25% of the
        # original event program.
        assert result.final_events <= 10
        # The schedule was pinned to an explicit decision script and the
        # minimized spec still fails.
        assert result.spec.decision_script is not None
        outcome = run_spec(result.spec)
        assert not outcome.ok
        assert outcome.fingerprint() == result.outcome.fingerprint()


class TestCampaignAndReplay:
    def test_campaign_finds_shrinks_and_replays_the_bug(self, tmp_path):
        seeds = list(range(BUG_SEED + 1))
        reports = run_fuzz_campaign(
            seeds,
            algorithm="broken-first-ack",
            budget=40,
            out_dir=tmp_path,
        )
        failing = [report for report in reports if not report.ok]
        assert failing, "fuzz campaign failed to find the injected bug"
        report = failing[-1]
        assert report.seed == BUG_SEED
        assert report.shrunk_events is not None
        assert report.shrunk_events <= report.events // 4
        assert report.counterexample is not None

        # The counterexample file replays the violation bit-identically —
        # twice.
        first = replay_counterexample(report.counterexample)
        second = replay_counterexample(report.counterexample)
        assert first.ok and second.ok
        assert first.outcome.fingerprint() == second.outcome.fingerprint()
        assert first.outcome.history == second.outcome.history

    def test_parallel_probe_matches_serial(self):
        seeds = [0, 1, 2, 3]
        serial = run_fuzz_campaign(seeds, jobs=1, budget=15)
        parallel = run_fuzz_campaign(seeds, jobs=4, budget=15)
        assert [r.summary() for r in serial] == [
            r.summary() for r in parallel
        ]

    def test_counterexample_format_is_versioned_json(self, tmp_path):
        spec = generate_spec(BUG_SEED, algorithm="broken-first-ack", events=40)
        outcome = run_spec(spec)
        path = tmp_path / "ce.json"
        write_counterexample(path, spec, outcome)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-fuzz-counterexample"
        assert payload["version"] == 1
        loaded, _ = load_counterexample(path)
        assert loaded == spec

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a repro-fuzz-counterexample"):
            load_counterexample(path)

    def test_replay_detects_divergence(self, tmp_path):
        spec = generate_spec(BUG_SEED, algorithm="broken-first-ack", events=40)
        outcome = run_spec(spec)
        path = tmp_path / "ce.json"
        write_counterexample(path, spec, outcome)
        payload = json.loads(path.read_text())
        payload["fingerprint"]["sim_time"] += 1.0
        path.write_text(json.dumps(payload))
        result = replay_counterexample(path)
        assert result.reproduced
        assert not result.fingerprint_matches
        assert not result.ok
