"""Fast regression tests for the experiment harness itself.

The benchmarks assert the paper's claims at full scale; these tests run
each experiment at reduced scale and validate row structure plus the
core qualitative shapes, so a harness regression is caught in the unit
suite, not only at benchmark time.
"""

import math

from repro.config import UNBOUNDED_DELTA
from repro.harness.costs import (
    e01_nonblocking_op_costs,
    e02_gossip_overhead,
    e03_stacking_comparison,
    e04_always_terminating_costs,
    e05_delta_snapshot_costs,
    e06_concurrent_snapshots,
    e15_message_sizes,
)
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.faults import e13_crash_tolerance
from repro.harness.latency import e09_delta_latency, e11_writes_between_blocks
from repro.harness.recovery import (
    e07_recovery_nonblocking,
    e08_recovery_always,
    e14_bounded_reset,
)
from repro.harness.report import format_table, print_table


class TestCostExperiments:
    def test_e01_matches_theory(self):
        rows = e01_nonblocking_op_costs(n_values=(3, 5))
        for row in rows:
            assert row["write_msgs"] == 2 * (row["n"] - 1)
            assert row["snapshot_rtts"] == 1

    def test_e02_gossip_quadratic(self):
        rows = e02_gossip_overhead(n_values=(3, 6), cycles=3)
        small, large = rows
        assert large["gossip_msgs_per_cycle"] > 3 * small["gossip_msgs_per_cycle"]

    def test_e03_ratio_four(self):
        rows = e03_stacking_comparison(n_values=(4,))
        assert rows[0]["ratio"] == 4.0

    def test_e04_superlinear(self):
        rows = e04_always_terminating_costs(n_values=(4, 8))
        assert rows[1]["total_msgs"] > 3 * rows[0]["total_msgs"]

    def test_e05_delta_ordering(self):
        rows = e05_delta_snapshot_costs(n_values=(5,))
        row = rows[0]
        assert row["dinf_msgs"] <= row["d4_msgs"] <= row["d0_msgs"]
        assert row["d0_msgs"] < row["alg2_msgs"]

    def test_e06_alg3_cheaper(self):
        rows = e06_concurrent_snapshots(n_values=(4,))
        assert rows[0]["alg3_msgs"] < rows[0]["alg2_msgs"]

    def test_e15_gossip_size_independent_of_n(self):
        rows = e15_message_sizes(nu_values=(64,), n_values=(4, 8))
        assert rows[0]["gossip_msg_bytes"] == rows[1]["gossip_msg_bytes"]
        assert rows[1]["write_msg_bytes"] > rows[0]["write_msg_bytes"]


class TestRecoveryExperiments:
    @staticmethod
    def _cycle_cells(row):
        return {
            key: value
            for key, value in row.items()
            if key not in ("variant", "n", "detections")
        }

    def test_e07_small_constants(self):
        rows = e07_recovery_nonblocking(n_values=(4,))
        assert [row["variant"] for row in rows] == [
            "unbounded",
            "bounded+consensus",
            "bounded+coordinator",
        ]
        for value in self._cycle_cells(rows[0]).values():
            assert isinstance(value, int) and value <= 6
        # Corruption classes that actually perturbed state were detected
        # (healed) by the cleanup lines, and the registry reported them.
        assert isinstance(rows[0]["detections"], int)
        assert rows[0]["detections"] > 0
        # Bounded rows recover too (their wild indices overflow MAXINT,
        # so these cells time a full corruption-triggered global reset),
        # and the consensus-backed reset stays within the O(1) claim.
        for row in rows[1:]:
            for value in self._cycle_cells(row).values():
                assert isinstance(value, int) and value <= 8

    def test_e08_small_constants(self):
        rows = e08_recovery_always(n_values=(4,))
        for value in self._cycle_cells(rows[0]).values():
            assert isinstance(value, int) and value <= 6
        assert isinstance(rows[0]["detections"], int)
        assert rows[0]["detections"] > 0
        for row in rows[1:]:
            for value in self._cycle_cells(row).values():
                assert isinstance(value, int) and value <= 8

    def test_e14_resets_and_survival(self):
        rows = e14_bounded_reset(max_int=8, rounds=12)
        row = rows[0]
        assert row["resets"] >= 1
        assert row["values_survive"] and row["epochs_agree"]


class TestLatencyExperiments:
    def test_e09_all_terminate(self):
        rows = e09_delta_latency(deltas=(0, 4))
        assert all(row["latency_cycles"] <= 12 for row in rows)

    def test_e11_gaps_at_least_delta(self):
        rows = e11_writes_between_blocks(delta=4, snapshots=3)
        assert rows
        assert all(row["claim_met"] for row in rows)

    def test_e13_threshold(self):
        rows = e13_crash_tolerance(algorithms=("ss-nonblocking",), n=5)
        for row in rows:
            assert row["ops_terminate"] == row["majority_alive"]
            assert row["history_safe"]


class TestRegistryAndReport:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {f"e{i:02d}" for i in range(1, 21)}

    def test_run_experiment_by_id(self):
        rows = run_experiment("e01")
        assert rows and "write_msgs" in rows[0]

    def test_format_table_basic(self):
        table = format_table(
            [{"a": 1, "b": "x"}, {"a": 22, "b": float("inf")}], title="T"
        )
        assert "T" in table
        assert "22" in table
        assert "∞" in table

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_nan_and_none(self):
        table = format_table([{"a": float("nan"), "b": None}])
        assert table.count("—") == 2

    def test_print_table(self, capsys):
        print_table([{"x": 1}], title="P")
        out = capsys.readouterr().out
        assert "P" in out and "1" in out

    def test_unbounded_delta_renders(self):
        table = format_table([{"delta": UNBOUNDED_DELTA}])
        assert "∞" in table
        assert math.isinf(UNBOUNDED_DELTA)


class TestBarChart:
    def test_scales_to_peak(self):
        from repro.harness.report import format_bar_chart

        chart = format_bar_chart(
            [{"x": "a", "y": 10}, {"x": "b", "y": 5}],
            "x",
            "y",
            width=10,
            title="T",
        )
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert lines[1].count("█") == 10
        assert lines[2].count("█") == 5

    def test_infinite_bar(self):
        from repro.harness.report import format_bar_chart

        chart = format_bar_chart(
            [{"x": "inf", "y": float("inf")}, {"x": "one", "y": 1}],
            "x",
            "y",
            width=8,
        )
        assert "∞" in chart
        assert chart.splitlines()[0].count("█") == 8

    def test_empty(self):
        from repro.harness.report import format_bar_chart

        assert "(no rows)" in format_bar_chart([], "x", "y")

    def test_non_numeric_rendered_as_dash(self):
        from repro.harness.report import format_bar_chart

        chart = format_bar_chart([{"x": "a", "y": "oops"}], "x", "y")
        assert "—" in chart

    def test_ablations_registry_complete(self):
        from repro.harness.ablations import ABLATIONS

        assert set(ABLATIONS) == {"a1", "a2", "a3", "a4", "a5"}
