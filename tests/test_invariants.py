"""Tests for the Definition-1 consistency predicates."""

from repro import ClusterConfig, SimBackend
from repro.analysis.invariants import (
    definition1_consistent,
    sns_consistent,
    ssn_consistent,
    ts_consistent,
    vc_consistent,
)
from repro.core.register import TimestampedValue
from repro.core.ss_always import PendingTask


def make(algorithm="ss-always", n=4, **kwargs):
    return SimBackend(algorithm, ClusterConfig(n=n, seed=0, **kwargs))


class TestTsConsistency:
    def test_fresh_cluster_is_consistent(self):
        assert ts_consistent(make()).ok

    def test_detects_stale_low_own_ts(self):
        cluster = make()
        cluster.node(1).reg[0] = TimestampedValue(5, "x")
        report = ts_consistent(cluster)
        assert not report.ok
        assert "reg_1[0].ts=5" in report.failures[0]

    def test_detects_poisoned_in_flight_register(self):
        cluster = make()
        from repro.core.base import WriteMessage
        from repro.core.register import RegisterArray

        poisoned = RegisterArray(4)
        poisoned[2] = TimestampedValue(99, "bad")
        cluster.network.channel(0, 1).send(WriteMessage(reg=poisoned))
        report = ts_consistent(cluster)
        assert not report.ok
        assert "in-flight" in report.failures[0]

    def test_detects_poisoned_gossip_entry(self):
        cluster = make("ss-nonblocking")
        from repro.core.ss_nonblocking import GossipMessage

        cluster.network.channel(0, 1).send(
            GossipMessage(entry=TimestampedValue(42, "bad"))
        )
        report = ts_consistent(cluster)
        assert not report.ok


class TestSsnConsistency:
    def test_detects_future_snapshot_ack(self):
        cluster = make("ss-nonblocking")
        from repro.core.dgfr_nonblocking import SnapshotAckMessage

        cluster.network.channel(1, 0).send(
            SnapshotAckMessage(reg=cluster.node(1).reg.copy(), ssn=77)
        )
        report = ssn_consistent(cluster)
        assert not report.ok

    def test_query_ssn_attributed_to_sender(self):
        cluster = make("ss-nonblocking")
        cluster.node(0).ssn = 10
        from repro.core.dgfr_nonblocking import SnapshotMessage

        cluster.network.channel(0, 1).send(
            SnapshotMessage(reg=cluster.node(0).reg.copy(), ssn=10)
        )
        assert ssn_consistent(cluster).ok


class TestSnsConsistency:
    def test_fresh_cluster(self):
        assert sns_consistent(make()).ok

    def test_detects_sns_mismatch(self):
        cluster = make()
        cluster.node(2).sns = 5  # without updating pnd_tsk[2]
        report = sns_consistent(cluster)
        assert not report.ok

    def test_detects_foreign_view_ahead_of_owner(self):
        cluster = make()
        cluster.node(1).pnd_tsk[3] = PendingTask(sns=9)
        report = sns_consistent(cluster)
        assert not report.ok

    def test_skipped_for_algorithms_without_pnd_tsk(self):
        cluster = make("ss-nonblocking")
        assert sns_consistent(cluster).ok


class TestVcConsistency:
    def test_fresh_cluster(self):
        assert vc_consistent(make()).ok

    def test_detects_future_vector_clock(self):
        cluster = make()
        cluster.node(0).pnd_tsk[1] = PendingTask(sns=1, vc=(9, 9, 9, 9))
        report = vc_consistent(cluster)
        assert not report.ok

    def test_accepts_past_vector_clock(self):
        cluster = make()
        cluster.write_sync(0, "x")
        cluster.run_until(cluster.settle_cycles(2))
        owner = cluster.node(1)
        owner.pnd_tsk[1] = PendingTask(sns=1, vc=(0, 0, 0, 0))
        owner.sns = 1
        assert vc_consistent(cluster).ok


class TestCombined:
    def test_definition1_aggregates_failures(self):
        cluster = make()
        cluster.node(1).reg[0] = TimestampedValue(5, "x")
        cluster.node(2).sns = 5
        report = definition1_consistent(cluster)
        assert not report.ok
        assert len(report.failures) >= 2

    def test_bool_protocol(self):
        cluster = make()
        assert definition1_consistent(cluster)
        cluster.node(1).reg[0] = TimestampedValue(5, "x")
        assert not definition1_consistent(cluster)
