"""Unit tests for channels and the network fabric."""

import random
from dataclasses import dataclass

import pytest

from repro.analysis.metrics import MetricsCollector
from repro.config import ChannelConfig, ClusterConfig
from repro.errors import NetworkError
from repro.net.channel import Channel
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Process
from repro.sim.kernel import Kernel


@dataclass(frozen=True)
class Ping(Message):
    KIND = "PING"
    payload: int = 0


def make_channel(kernel, config, delivered, metrics=None, seed=0):
    return Channel(
        kernel,
        random.Random(seed),
        config,
        src=0,
        dst=1,
        deliver=lambda s, d, m: delivered.append((s, d, m)),
        metrics=metrics,
    )


class TestChannel:
    def test_delivers_within_delay_bounds(self):
        kernel = Kernel()
        delivered = []
        channel = make_channel(
            kernel, ChannelConfig(min_delay=1.0, max_delay=2.0), delivered
        )
        channel.send(Ping(payload=1))
        kernel.run()
        assert len(delivered) == 1
        assert 1.0 <= kernel.now <= 2.0

    def test_loss_drops_messages(self):
        kernel = Kernel()
        delivered = []
        metrics = MetricsCollector()
        channel = make_channel(
            kernel,
            ChannelConfig(loss_probability=0.5),
            delivered,
            metrics,
            seed=1,
        )
        for i in range(200):
            channel.send(Ping(payload=i))
            kernel.run()
        assert 0 < len(delivered) < 200
        assert metrics.dropped_loss == 200 - len(delivered)

    def test_duplication(self):
        kernel = Kernel()
        delivered = []
        metrics = MetricsCollector()
        channel = make_channel(
            kernel,
            ChannelConfig(duplication_probability=1.0),
            delivered,
            metrics,
            seed=2,
        )
        channel.send(Ping(payload=7))
        kernel.run()
        assert len(delivered) == 2
        assert metrics.duplicated == 1

    def test_capacity_bound(self):
        kernel = Kernel()
        delivered = []
        metrics = MetricsCollector()
        channel = make_channel(
            kernel, ChannelConfig(capacity=3), delivered, metrics
        )
        for i in range(10):
            channel.send(Ping(payload=i))
        assert channel.in_flight_count == 3
        assert metrics.dropped_capacity == 7
        kernel.run()
        assert len(delivered) == 3

    def test_reordering_occurs(self):
        kernel = Kernel()
        delivered = []
        channel = make_channel(
            kernel, ChannelConfig(min_delay=0.1, max_delay=10.0), delivered, seed=3
        )
        for i in range(20):
            channel.send(Ping(payload=i))
        kernel.run()
        payloads = [m.payload for (_, _, m) in delivered]
        assert sorted(payloads) == list(range(20))
        assert payloads != list(range(20))  # some reordering with this seed

    def test_blocked_channel_drops(self):
        kernel = Kernel()
        delivered = []
        channel = make_channel(kernel, ChannelConfig(), delivered)
        channel.blocked = True
        channel.send(Ping())
        kernel.run()
        assert delivered == []

    def test_corrupt_in_flight_replaces_and_deletes(self):
        kernel = Kernel()
        delivered = []
        channel = make_channel(kernel, ChannelConfig(), delivered)
        channel.send(Ping(payload=1))
        channel.send(Ping(payload=2))
        affected = channel.corrupt_in_flight(
            lambda m: None if m.payload == 1 else Ping(payload=99)
        )
        assert affected == 2
        kernel.run()
        assert [m.payload for (_, _, m) in delivered] == [99]

    def test_drop_all_in_flight(self):
        kernel = Kernel()
        delivered = []
        channel = make_channel(kernel, ChannelConfig(), delivered)
        channel.send(Ping())
        assert channel.drop_all_in_flight() == 1
        kernel.run()
        assert delivered == []


class EchoProcess(Process):
    """Minimal process that records deliveries."""

    def initialize_state(self):
        self.received = []
        self.register_handler(Ping.KIND, lambda s, m: self.received.append((s, m)))

    def register_handler(self, kind, handler):
        # allow re-registration across restarts in this test helper
        self._handlers[kind] = handler


class TestNetwork:
    def make(self, n=3, **channel_kwargs):
        kernel = Kernel(seed=5)
        config = ClusterConfig(n=n, channel=ChannelConfig(**channel_kwargs))
        network = Network(kernel, config)
        processes = [EchoProcess(i, kernel, network, config) for i in range(n)]
        return kernel, network, processes

    def test_send_and_deliver(self):
        kernel, network, processes = self.make()
        network.send(0, 1, Ping(payload=42))
        kernel.run()
        assert processes[1].received[0][1].payload == 42

    def test_loopback_not_counted(self):
        kernel, network, processes = self.make()
        network.send(0, 0, Ping())
        kernel.run()
        assert processes[0].received
        assert network.metrics.snapshot().total_messages == 0

    def test_network_counts_sends(self):
        kernel, network, _ = self.make()
        network.send(0, 1, Ping())
        network.send(1, 2, Ping())
        stats = network.metrics.snapshot()
        assert stats.messages_by_kind == {"PING": 2}
        assert stats.total_bytes > 0

    def test_double_attach_rejected(self):
        kernel, network, processes = self.make()
        with pytest.raises(NetworkError):
            network.attach(processes[0])

    def test_unknown_channel_rejected(self):
        kernel, network, _ = self.make()
        with pytest.raises(NetworkError):
            network.channel(0, 0)

    def test_partition_blocks_cross_traffic(self):
        kernel, network, processes = self.make(n=4)
        network.partition({0, 1}, {2, 3})
        network.send(0, 2, Ping(payload=1))
        network.send(0, 1, Ping(payload=2))
        kernel.run()
        assert processes[2].received == []
        assert processes[1].received[0][1].payload == 2
        network.heal()
        network.send(0, 2, Ping(payload=3))
        kernel.run()
        assert processes[2].received[0][1].payload == 3

    def test_crashed_process_drops_deliveries(self):
        kernel, network, processes = self.make()
        processes[1].crash()
        network.send(0, 1, Ping())
        kernel.run()
        assert processes[1].received == []
        processes[1].resume()
        network.send(0, 1, Ping())
        kernel.run()
        assert len(processes[1].received) == 1

    def test_crashed_process_cannot_send(self):
        kernel, network, processes = self.make()
        processes[0].crash()
        processes[0].send(1, Ping())
        kernel.run()
        assert processes[1].received == []

    def test_detectable_restart_reinitializes(self):
        kernel, network, processes = self.make()
        network.send(0, 1, Ping())
        kernel.run()
        assert processes[1].received
        processes[1].crash()
        processes[1].resume(restart=True)
        assert processes[1].received == []
