"""Prometheus text exposition, the ``repro top`` dashboard, and the
cross-backend throttle (gray-failure) knob."""

import asyncio
import json

import pytest

from repro.__main__ import main
from repro.backend.base import run_on_backend
from repro.config import scenario_config
from repro.backend.sim import SimBackend
from repro.errors import ConfigurationError, NetworkError
from repro.load import LoadSpec
from repro.load.driver import LoadGenerator
from repro.obs.alerts import AlertEngine
from repro.obs.observe import Observability, session
from repro.obs.promtext import (
    CONTENT_TYPE,
    MetricsExposition,
    prometheus_text,
)
from repro.obs.top import parse_throttle, render_frame


class TestPrometheusText:
    def test_scalars_render_as_sorted_gauges(self):
        text = prometheus_text({"ops.total": 12.0, "net.messages_total": 300})
        lines = text.splitlines()
        assert "# TYPE repro_net_messages_total gauge" in lines
        assert "repro_net_messages_total 300" in lines
        assert "repro_ops_total 12" in lines
        # Deterministic ordering: messages before ops (sorted by name).
        assert lines.index("repro_net_messages_total 300") < lines.index(
            "repro_ops_total 12"
        )

    def test_health_gauges_get_cluster_node_labels(self):
        text = prometheus_text(
            {"health.state.c0.n1": 1, "health.state.c0.n0": 0}
        )
        lines = text.splitlines()
        assert "# TYPE repro_health_state gauge" in lines
        assert 'repro_health_state{cluster="0",node="0"} 0' in lines
        assert 'repro_health_state{cluster="0",node="1"} 1' in lines

    def test_histogram_dicts_render_as_summaries(self):
        text = prometheus_text(
            {
                "load.latency": {
                    "count": 4,
                    "sum": 10.0,
                    "min": 1.0,
                    "max": 4.0,
                    "mean": 2.5,
                    "p50": 2.0,
                    "p95": 3.9,
                    "p99": 4.0,
                }
            }
        )
        lines = text.splitlines()
        assert "# TYPE repro_load_latency summary" in lines
        assert 'repro_load_latency{quantile="0.5"} 2' in lines
        assert 'repro_load_latency{quantile="0.95"} 3.9' in lines
        assert 'repro_load_latency{quantile="0.99"} 4' in lines
        assert "repro_load_latency_count 4" in lines
        assert "repro_load_latency_sum 10" in lines

    def test_names_are_mangled_and_nan_is_zero(self):
        text = prometheus_text({"weird-name!x": float("nan")})
        assert "repro_weird_name_x 0" in text.splitlines()

    def test_content_type_is_prometheus_v004(self):
        assert CONTENT_TYPE.startswith("text/plain; version=0.0.4")

    def test_full_session_collect_is_renderable(self):
        with session() as obs:
            cluster = SimBackend(
                "ss-nonblocking", scenario_config(n=3, seed=0)
            )
            cluster.write_sync(0, b"x")
            text = prometheus_text(obs.collect())
        obs.finish()
        for node in range(3):
            assert f'repro_health_state{{cluster="0",node="{node}"}}' in text
        assert "repro_net_messages_total" in text
        assert "nan" not in text.lower()


class TestRenderFrame:
    def test_frame_shows_header_health_and_alerts(self):
        engine = AlertEngine()
        with session(Observability(trace_messages=False)) as obs:
            cluster = SimBackend(
                "ss-nonblocking", scenario_config(n=3, seed=0)
            )
            cluster.write_sync(0, b"x")
            engine.evaluate_session(obs)
            frame = render_frame(
                engine=engine, obs=obs, time=cluster.kernel.now, backend="sim"
            )
        obs.finish()
        assert frame.startswith("repro top — backend=sim")
        assert "node health" in frame
        assert "healthy" in frame
        assert "alerts: (none)" in frame

    def test_frame_lists_active_alerts_and_blame(self):
        engine = AlertEngine()
        with session(Observability(trace_messages=False)) as obs:
            cluster = SimBackend(
                "ss-nonblocking", scenario_config(n=4, seed=1)
            )
            cluster.throttle(3, 12.0)
            for i in range(8):
                cluster.write_sync(i % 3, f"w{i}".encode())
            cluster.run_for(40.0)
            engine.evaluate_session(obs)
            frame = render_frame(
                obs, engine, time=cluster.kernel.now, backend="sim"
            )
        obs.finish()
        assert "limping" in frame
        assert "blame (slowest quorum responder)" in frame
        assert "[WARNING " in frame
        assert "node-limping node=3" in frame


class TestParseThrottle:
    def test_parses_node_and_factor(self):
        assert parse_throttle("3:12") == (3, 12.0)
        assert parse_throttle("0:1.5") == (0, 1.5)

    @pytest.mark.parametrize("bad", ["3", "3:", ":2", "a:b", "1:2:3"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            parse_throttle(bad)


class TestTopCommand:
    def test_top_runs_on_sim_and_reports_the_limping_alert(self, capsys):
        assert (
            main(
                [
                    "top",
                    "--budget", "40",
                    "--refresh", "20",
                    "--throttle", "3:12",
                    "--plain",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "repro top — backend=sim" in out
        assert "node health" in out
        assert "limping" in out
        assert "alert(s) raised over the run" in out
        assert "node-limping node=3" in out

    def test_top_rejects_metrics_port_on_simulated_time(self):
        with pytest.raises(SystemExit, match="live backend"):
            main(["top", "--metrics-port", "0"])

    def test_top_rejects_unknown_backend(self):
        with pytest.raises(SystemExit, match="unknown backend"):
            main(["top", "--backend", "bogus"])

    def test_top_rejects_nonpositive_refresh(self):
        with pytest.raises(SystemExit, match="refresh"):
            main(["top", "--refresh", "0"])


class TestThrottleSemantics:
    def test_throttle_validates_and_restores(self):
        cluster = SimBackend("ss-nonblocking", scenario_config(n=3, seed=0))
        with pytest.raises(NetworkError):
            cluster.throttle(0, 0.0)
        with pytest.raises(NetworkError):
            cluster.throttle(7, 2.0)
        cluster.throttle(1, 8.0)
        assert cluster.network.throttled() == {1: 8.0}
        cluster.throttle(1, 1.0)  # factor 1.0 restores
        assert cluster.network.throttled() == {}

    def test_throttle_preserves_the_seeded_schedule(self):
        """The factor multiplies already-drawn delays: no RNG impact."""

        def history(factor):
            cluster = SimBackend(
                "ss-nonblocking", scenario_config(n=4, seed=5)
            )
            if factor != 1.0:
                cluster.throttle(2, factor)
            for i in range(4):
                cluster.write_sync(i % 4, f"w{i}".encode())
            return [
                (r.kind, r.node_id, r.argument, r.result)
                for r in cluster.history.records()
            ]

        # Same ops, same order, same values — only the timing differs.
        assert history(1.0) == history(6.0)


@pytest.mark.runtime
class TestMetricsExpositionRuntime:
    def test_serves_rendered_text_over_http(self):
        async def scrape():
            exposition = MetricsExposition(
                lambda: prometheus_text({"ops.total": 3.0})
            )
            host, port = await exposition.start()
            assert exposition.url == f"http://{host}:{port}/metrics"
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            data = await reader.read(-1)
            writer.close()
            await exposition.stop()
            await exposition.stop()  # idempotent
            return data.decode()

        response = asyncio.run(scrape())
        assert response.startswith("HTTP/1.1 200 OK")
        assert CONTENT_TYPE in response
        assert "repro_ops_total 3" in response

    def test_udp_backend_exposes_matching_health_metrics(self):
        """The acceptance scenario's live half: the same throttled
        workload on the UDP backend exposes per-node health through the
        text exposition endpoint."""
        obs = Observability(trace_messages=False)

        async def body(cluster):
            cluster.throttle(1, 4.0)
            assert cluster.network.throttled() == {1: 4.0}
            generator = LoadGenerator(
                cluster,
                LoadSpec(clients=2, depth=1, duration=20.0, seed=1),
            )
            await generator.run()
            exposition = MetricsExposition(
                lambda: prometheus_text(obs.collect())
            )
            host, port = await exposition.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            data = await reader.read(-1)
            writer.close()
            await exposition.stop()
            return data.decode()

        with session(obs):
            response = run_on_backend(
                "udp",
                "ss-nonblocking",
                scenario_config(n=3, seed=1),
                body,
                time_scale=0.002,
            )
        obs.finish()
        assert response.startswith("HTTP/1.1 200 OK")
        for node in range(3):
            assert (
                f'repro_health_state{{cluster="0",node="{node}"}}' in response
            )
            assert (
                f'repro_health_service_ewma{{cluster="0",node="{node}"}}'
                in response
            )
        assert "repro_net_messages_total" in response
