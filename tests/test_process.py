"""Unit tests for the Process base class (node substrate)."""

from dataclasses import dataclass

import pytest

from repro.config import ClusterConfig
from repro.errors import SimulationError
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Process
from repro.net.quorum import AckCollector
from repro.sim.kernel import Kernel


@dataclass(frozen=True)
class Tick(Message):
    KIND = "TICK"
    value: int = 0


class CountingProcess(Process):
    def initialize_state(self):
        self.ticks = []
        self.init_count = getattr(self, "init_count", 0) + 1
        self._handlers = {}
        self.register_handler(Tick.KIND, lambda s, m: self.ticks.append(m.value))


def make(n=3):
    kernel = Kernel(seed=0)
    config = ClusterConfig(n=n, gossip_interval=1.0)
    network = Network(kernel, config)
    processes = [CountingProcess(i, kernel, network, config) for i in range(n)]
    return kernel, network, processes


class TestHandlers:
    def test_duplicate_handler_rejected(self):
        kernel, network, processes = make()
        with pytest.raises(SimulationError):
            processes[0].register_handler(Tick.KIND, lambda s, m: None)

    def test_unknown_kind_silently_ignored(self):
        kernel, network, processes = make()

        @dataclass(frozen=True)
        class Mystery(Message):
            KIND = "MYSTERY"

        processes[0].deliver(1, Mystery())  # no handler: dropped

    def test_ack_sink_add_remove(self):
        kernel, network, processes = make()
        node = processes[0]
        collector = AckCollector(node, Tick.KIND, 1)
        node.add_ack_sink(Tick.KIND, collector)
        node.deliver(1, Tick(value=5))
        assert collector.satisfied
        node.remove_ack_sink(Tick.KIND, collector)
        node.remove_ack_sink(Tick.KIND, collector)  # idempotent
        node.remove_ack_sink("OTHER", collector)  # unknown kind: no-op


class TestBroadcast:
    def test_broadcast_includes_self_by_default(self):
        kernel, network, processes = make()
        processes[0].broadcast(Tick(value=1))
        kernel.run()
        assert processes[0].ticks == [1]
        assert processes[1].ticks == [1]

    def test_broadcast_exclude_self(self):
        kernel, network, processes = make()
        processes[0].broadcast(Tick(value=2), include_self=False)
        kernel.run()
        assert processes[0].ticks == []
        assert processes[1].ticks == [2]

    def test_peers(self):
        kernel, network, processes = make()
        assert processes[1].peers() == [0, 2]


class TestLifecycle:
    def test_double_start_rejected(self):
        kernel, network, processes = make()
        processes[0].start()
        with pytest.raises(SimulationError):
            processes[0].start()

    def test_stop_then_start_allowed(self):
        kernel, network, processes = make()
        processes[0].start()
        processes[0].stop()
        processes[0].start()

    def test_iteration_listener_called(self):
        kernel, network, processes = make()
        seen = []
        processes[0].add_iteration_listener(seen.append)
        processes[0].start()
        kernel.run(until_time=3.5)
        assert seen == [0, 0, 0, 0]
        assert processes[0].iterations_completed == 4

    def test_crashed_loop_pauses_and_resumes(self):
        kernel, network, processes = make()
        processes[0].start()
        kernel.run(until_time=2.5)
        iterations_before = processes[0].iterations_completed
        processes[0].crash()
        kernel.run(until_time=10.0)
        assert processes[0].iterations_completed <= iterations_before + 1
        processes[0].resume()
        kernel.run(until_time=15.0)
        assert processes[0].iterations_completed > iterations_before + 1

    def test_detectable_restart_reinitializes_state(self):
        kernel, network, processes = make()
        node = processes[0]
        node.deliver(1, Tick(value=9))
        assert node.ticks == [9]
        node.crash()
        node.resume(restart=True)
        assert node.ticks == []
        assert node.init_count == 2

    def test_repr_shows_status(self):
        kernel, network, processes = make()
        assert "p0" in repr(processes[0])
        assert "up" in repr(processes[0])
        processes[0].crash()
        assert "crashed" in repr(processes[0])

    def test_majority_property(self):
        kernel, network, processes = make()
        assert processes[0].majority == 2
