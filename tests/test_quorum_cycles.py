"""Unit tests for the quorum service and the cycle tracker."""

from dataclasses import dataclass

import pytest

from repro.analysis.cycles import CycleTracker
from repro.config import ChannelConfig, ClusterConfig
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Process
from repro.net.quorum import AckCollector, broadcast_until
from repro.sim.kernel import Kernel


@dataclass(frozen=True)
class Req(Message):
    KIND = "REQ"
    round: int = 0


@dataclass(frozen=True)
class Ack(Message):
    KIND = "ACK"
    round: int = 0


class Responder(Process):
    """Acks every REQ with the same round number."""

    def initialize_state(self):
        if "REQ" not in self._handlers:
            self.register_handler(
                Req.KIND, lambda s, m: self.send(s, Ack(round=m.round))
            )


def make_cluster(n=5, **channel_kwargs):
    kernel = Kernel(seed=9)
    config = ClusterConfig(
        n=n, channel=ChannelConfig(**channel_kwargs), retransmit_interval=3.0
    )
    network = Network(kernel, config)
    processes = [Responder(i, kernel, network, config) for i in range(n)]
    return kernel, config, network, processes


class TestAckCollector:
    def test_threshold_validation(self):
        kernel, config, network, processes = make_cluster()
        with pytest.raises(ValueError):
            AckCollector(processes[0], "ACK", 0)

    def test_collects_distinct_senders(self):
        kernel, config, network, processes = make_cluster()
        collector = AckCollector(processes[0], "ACK", 3)
        collector.offer(1, Ack(round=1))
        collector.offer(1, Ack(round=1))  # duplicate sender
        collector.offer(2, Ack(round=1))
        assert not collector.satisfied
        collector.offer(3, Ack(round=1))
        assert collector.satisfied
        assert set(collector.replies) == {1, 2, 3}

    def test_match_predicate_filters(self):
        kernel, config, network, processes = make_cluster()
        collector = AckCollector(
            processes[0], "ACK", 2, match=lambda s, m: m.round == 5
        )
        assert not collector.offer(1, Ack(round=4))
        assert collector.offer(1, Ack(round=5))
        assert collector.offer(2, Ack(round=5))
        assert collector.satisfied

    def test_broadcast_until_majority_on_reliable_channels(self):
        kernel, config, network, processes = make_cluster()
        node = processes[0]

        async def run():
            with AckCollector(node, "ACK", config.majority) as collector:
                await broadcast_until(node, lambda: Req(round=1), collector)
                return len(collector.replies)

        count = kernel.run_until_complete(run())
        assert count >= config.majority

    def test_broadcast_until_retransmits_through_loss(self):
        kernel, config, network, processes = make_cluster(loss_probability=0.9)
        node = processes[0]

        async def run():
            with AckCollector(node, "ACK", config.majority) as collector:
                await broadcast_until(node, lambda: Req(round=2), collector)
            return True

        assert kernel.run_until_complete(run(), max_events=500_000)
        # Loss forced at least one retransmission round.
        assert network.metrics.snapshot().messages("REQ") > config.n - 1

    def test_broadcast_until_survives_minority_crash(self):
        kernel, config, network, processes = make_cluster()
        processes[3].crash()
        processes[4].crash()
        node = processes[0]

        async def run():
            with AckCollector(node, "ACK", config.majority) as collector:
                await broadcast_until(node, lambda: Req(round=3), collector)
                return set(collector.replies)

        responders = kernel.run_until_complete(run())
        assert responders <= {0, 1, 2}
        assert len(responders) == 3

    def test_collector_detaches_on_exit(self):
        kernel, config, network, processes = make_cluster()
        node = processes[0]
        collector = AckCollector(node, "ACK", 1)
        with collector:
            pass
        node.deliver(1, Ack(round=0))
        assert not collector.satisfied


class LoopingProcess(Process):
    """Process whose do-forever iteration just counts."""

    def initialize_state(self):
        self.loops = 0

    async def do_forever_iteration(self):
        self.loops += 1


class TestCycleTracker:
    def make(self, n=3):
        kernel = Kernel(seed=1)
        config = ClusterConfig(n=n, gossip_interval=1.0)
        network = Network(kernel, config)
        processes = [LoopingProcess(i, kernel, network, config) for i in range(n)]
        tracker = CycleTracker(kernel, processes)
        for process in processes:
            process.start()
        return kernel, processes, tracker

    def test_cycle_needs_every_node(self):
        kernel, processes, tracker = self.make()
        kernel.run_until_complete(tracker.wait_cycles(3))
        assert tracker.cycles_elapsed >= 3
        assert all(p.loops >= 3 for p in processes)

    def test_crashed_nodes_do_not_block_cycles(self):
        kernel, processes, tracker = self.make()
        processes[2].crash()
        kernel.run_until_complete(tracker.wait_cycles(2))
        assert tracker.cycles_elapsed >= 2
        assert processes[2].loops == 0

    def test_reset(self):
        kernel, processes, tracker = self.make()
        kernel.run_until_complete(tracker.wait_cycles(2))
        tracker.reset()
        assert tracker.cycles_elapsed == 0
        kernel.run_until_complete(tracker.wait_cycles(1))
        assert tracker.cycles_elapsed >= 1

    def test_boundary_listener(self):
        kernel, processes, tracker = self.make()
        boundaries = []
        tracker.add_boundary_listener(boundaries.append)
        kernel.run_until_complete(tracker.wait_cycles(2))
        assert boundaries[:2] == [1, 2]

    def test_stop_halts_loop(self):
        kernel, processes, tracker = self.make()
        kernel.run_until_complete(tracker.wait_cycles(1))
        loops_before = processes[0].loops
        processes[0].stop()
        kernel.run(until_time=kernel.now + 10.0)
        assert processes[0].loops == loops_before
