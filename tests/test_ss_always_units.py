"""Unit tests for Algorithm 3's macros and handlers (line-level checks)."""

import math

from repro import ClusterConfig, SimBackend, UNBOUNDED_DELTA
from repro.core.register import RegisterArray, TimestampedValue
from repro.core.ss_always import (
    PendingTask,
    SaveMessage,
    SnapshotMessage3,
    TaskDescriptor,
)


def make(delta=2, n=4, seed=0):
    return SimBackend(
        "ss-always", ClusterConfig(n=n, seed=seed, delta=delta)
    )


class TestVcMacro:
    def test_vc_reflects_register_timestamps(self):
        cluster = make()
        node = cluster.node(0)
        node.reg[1] = TimestampedValue(3, "x")
        node.reg[2] = TimestampedValue(7, "y")
        assert node.vc_now() == (0, 3, 7, 0)

    def test_writes_observed_since(self):
        cluster = make()
        node = cluster.node(0)
        node.reg[1] = TimestampedValue(3, "x")
        assert node._writes_observed_since((0, 0, 0, 0)) == 3
        assert node._writes_observed_since((0, 3, 0, 0)) == 0


class TestDeltaSetMacro:
    def test_own_pending_task_always_eligible(self):
        cluster = make(delta=UNBOUNDED_DELTA)
        node = cluster.node(1)
        node.pnd_tsk[1] = PendingTask(sns=1)
        assert 1 in node.delta_set()

    def test_foreign_task_needs_delta_writes(self):
        cluster = make(delta=3)
        node = cluster.node(0)
        node.pnd_tsk[2] = PendingTask(sns=1, vc=(0, 0, 0, 0))
        assert 2 not in node.delta_set()
        node.reg[3] = TimestampedValue(3, "w")  # 3 writes observed
        assert 2 in node.delta_set()

    def test_foreign_task_without_vc_not_eligible_at_positive_delta(self):
        cluster = make(delta=1)
        node = cluster.node(0)
        node.pnd_tsk[2] = PendingTask(sns=1, vc=None)
        assert 2 not in node.delta_set()

    def test_delta_zero_serves_all_pending(self):
        cluster = make(delta=0)
        node = cluster.node(0)
        node.pnd_tsk[2] = PendingTask(sns=1)
        node.pnd_tsk[3] = PendingTask(sns=4)
        assert set(node.delta_set()) == {2, 3}

    def test_resolved_tasks_excluded(self):
        cluster = make(delta=0)
        node = cluster.node(0)
        node.pnd_tsk[2] = PendingTask(
            sns=1, fnl=RegisterArray(4)
        )
        assert 2 not in node.delta_set()

    def test_sns_zero_never_eligible(self):
        cluster = make(delta=0)
        node = cluster.node(0)
        node.pnd_tsk[2] = PendingTask(sns=0, vc=(0, 0, 0, 0))
        assert node.delta_set() == {}


class TestSnapshotQueryHandler:
    def test_adopts_newer_task(self):
        cluster = make()
        node = cluster.node(0)
        message = SnapshotMessage3(
            tasks=(TaskDescriptor(2, 5, (0, 0, 0, 0)),),
            reg=RegisterArray(4),
            ssn=1,
        )
        node._on_snapshot_query(1, message)
        assert node.pnd_tsk[2].sns == 5
        assert node.pnd_tsk[2].vc == (0, 0, 0, 0)

    def test_ignores_stale_task(self):
        cluster = make()
        node = cluster.node(0)
        node.pnd_tsk[2] = PendingTask(sns=9)
        node._on_snapshot_query(
            1,
            SnapshotMessage3(
                tasks=(TaskDescriptor(2, 5, None),),
                reg=RegisterArray(4),
                ssn=1,
            ),
        )
        assert node.pnd_tsk[2].sns == 9

    def test_ignores_corrupt_descriptor(self):
        cluster = make()
        node = cluster.node(0)
        node._on_snapshot_query(
            1,
            SnapshotMessage3(
                tasks=(
                    TaskDescriptor(99, 5, None),   # out-of-range node
                    TaskDescriptor(-1, 5, None),   # negative node
                    TaskDescriptor(2, 0, None),    # sns 0 never legitimate
                ),
                reg=RegisterArray(4),
                ssn=1,
            ),
        )
        assert all(task.sns == 0 for task in node.pnd_tsk)

    def test_does_not_clobber_vc_for_same_sns(self):
        cluster = make()
        node = cluster.node(0)
        node.pnd_tsk[2] = PendingTask(sns=5, vc=(1, 1, 1, 1))
        node._on_snapshot_query(
            1,
            SnapshotMessage3(
                tasks=(TaskDescriptor(2, 5, (9, 9, 9, 9)),),
                reg=RegisterArray(4),
                ssn=1,
            ),
        )
        assert node.pnd_tsk[2].vc == (1, 1, 1, 1)


class TestSaveHandler:
    def test_adopts_result_for_newer_sns(self):
        cluster = make()
        node = cluster.node(0)
        result = RegisterArray(4)
        node._on_save(1, SaveMessage(entries=((2, 3, result),)))
        assert node.pnd_tsk[2].sns == 3
        assert node.pnd_tsk[2].fnl is result

    def test_fills_result_for_same_sns(self):
        cluster = make()
        node = cluster.node(0)
        node.pnd_tsk[2] = PendingTask(sns=3)
        result = RegisterArray(4)
        node._on_save(1, SaveMessage(entries=((2, 3, result),)))
        assert node.pnd_tsk[2].fnl is result

    def test_never_overwrites_existing_result_for_same_sns(self):
        cluster = make()
        node = cluster.node(0)
        original = RegisterArray(4)
        node.pnd_tsk[2] = PendingTask(sns=3, fnl=original)
        node._on_save(1, SaveMessage(entries=((2, 3, RegisterArray(4)),)))
        assert node.pnd_tsk[2].fnl is original

    def test_ignores_stale_save(self):
        cluster = make()
        node = cluster.node(0)
        node.pnd_tsk[2] = PendingTask(sns=9)
        node._on_save(1, SaveMessage(entries=((2, 3, RegisterArray(4)),)))
        assert node.pnd_tsk[2].sns == 9
        assert node.pnd_tsk[2].fnl is None


class TestDoForeverCleanup:
    def test_line75_absorbs_indices(self):
        cluster = make()
        node = cluster.node(0)
        node.reg[0] = TimestampedValue(12, "x")
        node.pnd_tsk[0].sns = 7
        cluster.run_until(cluster.settle_cycles(1))
        assert node.ts >= 12
        assert node.sns >= 7

    def test_line76_clears_illogical_vc(self):
        cluster = make()
        node = cluster.node(0)
        node.pnd_tsk[2] = PendingTask(sns=1, vc=(5, 0, 0, 0))
        cluster.run_until(cluster.settle_cycles(1))
        assert node.pnd_tsk[2].vc is None

    def test_line77_reasserts_own_entry(self):
        cluster = make()
        node = cluster.node(0)
        node.sns = 4  # corrupted high relative to pnd_tsk[0]
        cluster.run_until(cluster.settle_cycles(1))
        assert node.pnd_tsk[0].sns == node.sns

    def test_pending_task_copy(self):
        task = PendingTask(sns=2, vc=(1, 2), fnl=None)
        clone = task.copy()
        clone.sns = 9
        assert task.sns == 2

    def test_unbounded_delta_helpers(self):
        cluster = make(delta=UNBOUNDED_DELTA)
        assert cluster.node(0).is_unbounded_delta()
        assert math.isinf(cluster.node(0).delta)


class TestServedSetIdentity:
    def test_superseded_task_leaves_served_set(self):
        """S ∩ Δ matches task identities (node, sns): once a newer
        invocation supersedes the sampled task, it must not be served
        under the old sample — otherwise a view computed for task s
        could be stored as the result of task s+1."""
        cluster = make(delta=0)
        node = cluster.node(0)
        node.pnd_tsk[2] = PendingTask(sns=1)
        sampled = frozenset(
            (k, d.sns) for k, d in node.delta_set().items()
        )
        assert 2 in node._served_now(sampled)
        node.pnd_tsk[2] = PendingTask(sns=2)  # superseded mid-service
        assert 2 not in node._served_now(sampled)

    def test_resolved_task_leaves_served_set(self):
        cluster = make(delta=0)
        node = cluster.node(0)
        node.pnd_tsk[3] = PendingTask(sns=1)
        sampled = frozenset(
            (k, d.sns) for k, d in node.delta_set().items()
        )
        assert 3 in node._served_now(sampled)
        node.pnd_tsk[3].fnl = RegisterArray(4)
        assert 3 not in node._served_now(sampled)
