"""Fine-grained tests for reliable-broadcast internals."""

from dataclasses import dataclass

from repro.broadcast.reliable import RbAckMessage, RbDataMessage, ReliableBroadcast
from repro.config import ChannelConfig, ClusterConfig
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Process
from repro.sim.kernel import Kernel


@dataclass(frozen=True)
class Note(Message):
    KIND = "NOTE"
    text: str = ""


class RbNode(Process):
    def initialize_state(self):
        self.delivered = []

    def attach_rb(self):
        self.rb = ReliableBroadcast(
            self, lambda origin, payload: self.delivered.append((origin, payload))
        )


def make(n=3, retransmit_interval=2.0, **channel_kwargs):
    kernel = Kernel(seed=7)
    config = ClusterConfig(
        n=n,
        channel=ChannelConfig(**channel_kwargs),
        retransmit_interval=retransmit_interval,
    )
    network = Network(kernel, config)
    nodes = [RbNode(i, kernel, network, config) for i in range(n)]
    for node in nodes:
        node.attach_rb()
    return kernel, network, nodes


class TestIds:
    def test_origin_sequence_unique_per_sender(self):
        kernel, network, nodes = make()
        nodes[0].rb.broadcast(Note(text="a"))
        nodes[0].rb.broadcast(Note(text="b"))
        ids = set(nodes[0].rb._known)
        assert ids == {(0, 1), (0, 2)}

    def test_same_seq_different_origins_distinct(self):
        kernel, network, nodes = make()
        nodes[0].rb.broadcast(Note(text="from0"))
        nodes[1].rb.broadcast(Note(text="from1"))
        kernel.run(until_time=20.0)
        for node in nodes:
            assert len(node.delivered) == 2


class TestAcking:
    def test_receiver_acks_every_data_message(self):
        kernel, network, nodes = make()
        message = RbDataMessage(origin=0, seq=1, payload=Note(text="x"))
        nodes[1].deliver(0, message)
        nodes[1].deliver(0, message)  # duplicate: re-acked, not re-delivered
        kernel.run(until_time=5.0)
        assert len(nodes[1].delivered) == 1
        # Node 0 got acks and marked node 1.
        assert 1 in nodes[0].rb._acked.get((0, 1), set())

    def test_ack_for_unknown_message_ignored(self):
        kernel, network, nodes = make()
        nodes[0].deliver(1, RbAckMessage(origin=9, seq=9))  # no such message

    def test_local_delivery_immediate(self):
        kernel, network, nodes = make()
        nodes[2].rb.broadcast(Note(text="self"))
        assert nodes[2].delivered[0][1].text == "self"


class TestBackoff:
    def test_retransmissions_back_off_for_dead_peer(self):
        """A permanently crashed peer must cost vanishing bandwidth."""
        kernel, network, nodes = make(retransmit_interval=2.0)
        nodes[2].crash()
        nodes[0].rb.broadcast(Note(text="x"))
        kernel.run(until_time=40.0)
        early = network.metrics.snapshot().messages("RB")
        kernel.run(until_time=400.0)
        late = network.metrics.snapshot().messages("RB")
        # 360 further units at interval 2.0 would be ~180 sends per
        # responsible node without backoff; with x2-up-to-x16 backoff the
        # tail adds only a handful per node.
        assert late - early < 60

    def test_crashed_relayer_pauses_retransmission(self):
        kernel, network, nodes = make()
        nodes[0].rb.broadcast(Note(text="x"))
        kernel.run(until_time=5.0)
        nodes[0].crash()
        sent = network.metrics.snapshot().messages("RB")
        kernel.run(until_time=30.0)
        # Node 0 sends nothing while crashed; relayers may still talk,
        # but everyone has acked by now, so traffic is flat.
        assert network.metrics.snapshot().messages("RB") <= sent + 4
