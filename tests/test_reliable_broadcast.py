"""Unit tests for the reliable-broadcast substrate."""

from dataclasses import dataclass

from repro.broadcast.reliable import ReliableBroadcast
from repro.config import ChannelConfig, ClusterConfig
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Process
from repro.sim.kernel import Kernel


@dataclass(frozen=True)
class Note(Message):
    KIND = "NOTE"
    text: str = ""


class RbNode(Process):
    def initialize_state(self):
        self.delivered = []

    def attach_rb(self):
        self.rb = ReliableBroadcast(
            self, lambda origin, payload: self.delivered.append((origin, payload))
        )


def make(n=4, **channel_kwargs):
    kernel = Kernel(seed=5)
    config = ClusterConfig(
        n=n, channel=ChannelConfig(**channel_kwargs), retransmit_interval=2.0
    )
    network = Network(kernel, config)
    nodes = [RbNode(i, kernel, network, config) for i in range(n)]
    for node in nodes:
        node.attach_rb()
    return kernel, nodes


class TestReliableBroadcast:
    def test_all_nodes_deliver(self):
        kernel, nodes = make()
        nodes[0].rb.broadcast(Note(text="hello"))
        kernel.run(until_time=20.0)
        for node in nodes:
            assert [(o, p.text) for (o, p) in node.delivered] == [(0, "hello")]

    def test_exactly_once_despite_duplication(self):
        kernel, nodes = make(duplication_probability=0.8)
        nodes[1].rb.broadcast(Note(text="dup"))
        kernel.run(until_time=50.0)
        for node in nodes:
            assert len(node.delivered) == 1

    def test_delivery_through_heavy_loss(self):
        kernel, nodes = make(loss_probability=0.7)
        nodes[0].rb.broadcast(Note(text="lossy"))
        kernel.run(until_time=500.0)
        for node in nodes:
            assert len(node.delivered) == 1

    def test_relay_covers_crashed_origin(self):
        """If any correct node delivered, all correct nodes deliver —
        even when the origin crashes right after its first broadcast."""
        kernel, nodes = make()
        nodes[0].rb.broadcast(Note(text="orphan"))
        # Let the first wave of sends enter the channels, then crash 0.
        kernel.run(max_events=3)
        nodes[0].crash()
        kernel.run(until_time=200.0)
        for node in nodes[1:]:
            assert len(node.delivered) == 1, node

    def test_crashed_receiver_catches_up_on_resume(self):
        kernel, nodes = make()
        nodes[3].crash()
        nodes[0].rb.broadcast(Note(text="late"))
        kernel.run(until_time=30.0)
        assert nodes[3].delivered == []
        nodes[3].resume()
        kernel.run(until_time=300.0)
        assert len(nodes[3].delivered) == 1

    def test_multiple_messages_ordered_ids(self):
        kernel, nodes = make()
        nodes[0].rb.broadcast(Note(text="a"))
        nodes[0].rb.broadcast(Note(text="b"))
        nodes[2].rb.broadcast(Note(text="c"))
        kernel.run(until_time=50.0)
        for node in nodes:
            texts = sorted(p.text for (_, p) in node.delivered)
            assert texts == ["a", "b", "c"]

    def test_retransmission_stops_after_full_ack(self):
        kernel, nodes = make()
        nodes[0].rb.broadcast(Note(text="quiet"))
        kernel.run(until_time=100.0)
        sent_before = network_rb_count(nodes)
        kernel.run(until_time=500.0)
        assert network_rb_count(nodes) == sent_before


def network_rb_count(nodes):
    return nodes[0].network.metrics.snapshot().messages("RB")
