"""Determinism regression gates for the fast-path engine.

The performance work in the kernel/channel/codec hot paths must not
change what a seeded run *does* — only how fast it does it.  Three gates
hold that line:

* run-to-run: the same ``(algorithm, seed, workload)`` yields an
  identical final snapshot, metrics snapshot, event count, and clock;
* golden fingerprints: frozen literals for one seeded workload per
  algorithm, so a refactor that shifts RNG consumption (and therefore
  every schedule) fails loudly instead of silently re-baselining.
  Update these literals only for a *deliberate* schedule-affecting
  change, and say so in the commit message;
* scripted mode: the model checker's ``decision_log`` replays exactly;
* CLI: ``--jobs 4`` experiment output is byte-identical to ``--jobs 1``.
"""

import pytest

from repro import ClusterConfig, SimBackend
from repro.config import ChannelConfig
from repro.sim.kernel import TieBreak

ALGORITHMS = ["dgfr-nonblocking", "ss-nonblocking", "ss-always"]

#: algorithm -> (final snapshot values, total messages, final sim clock)
#: for the seeded workload in ``run_workload`` (seed 7, n=4, lossy).
GOLDEN_FINGERPRINTS = {
    "dgfr-nonblocking": (("v4", "v1", "v2", "v3"), 37, 12.535404),
    "ss-nonblocking": (("v4", "v1", "v2", "v3"), 122, 12.250002),
    "ss-always": (("v4", "v1", "v2", "v3"), 138, 17.875608),
}


def run_workload(algorithm, seed=7):
    """A small seeded workload touching every hot path (loss, dup, gossip)."""
    cluster = SimBackend(
        algorithm,
        ClusterConfig(
            n=4,
            seed=seed,
            channel=ChannelConfig(
                loss_probability=0.05, duplication_probability=0.02
            ),
        ),
    )
    for i in range(5):
        cluster.write_sync(i % 4, f"v{i}")
    snap = cluster.snapshot_sync(0)
    return cluster, snap


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_same_seed_same_run(algorithm):
    cluster_a, snap_a = run_workload(algorithm)
    cluster_b, snap_b = run_workload(algorithm)
    assert snap_a.values == snap_b.values
    assert cluster_a.metrics.snapshot() == cluster_b.metrics.snapshot()
    assert cluster_a.kernel.events_processed == cluster_b.kernel.events_processed
    assert cluster_a.kernel.now == cluster_b.kernel.now


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_golden_fingerprint(algorithm):
    cluster, snap = run_workload(algorithm)
    expected_values, expected_messages, expected_now = GOLDEN_FINGERPRINTS[
        algorithm
    ]
    assert tuple(snap.values) == expected_values
    assert cluster.metrics.snapshot().total_messages == expected_messages
    assert round(cluster.kernel.now, 6) == expected_now


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_golden_fingerprint_with_tracing_on(algorithm):
    """Observability must not perturb seeded schedules.

    The same workload run under a full capture session (spans, message
    trace, kernel stats, per-process heal counters) must reproduce the
    frozen fingerprints exactly — the obs hooks consume no RNG and
    schedule no events, so the schedule cannot shift.
    """
    from repro.obs import session

    with session() as obs:
        cluster, snap = run_workload(algorithm)
    obs.finish()
    expected_values, expected_messages, expected_now = GOLDEN_FINGERPRINTS[
        algorithm
    ]
    assert tuple(snap.values) == expected_values
    assert cluster.metrics.snapshot().total_messages == expected_messages
    assert round(cluster.kernel.now, 6) == expected_now
    # And the capture itself saw the run: spans and trace are populated.
    assert len(obs.recorder.ops()) == 6  # 5 writes + 1 snapshot
    assert all(span.status == "ok" for span in obs.recorder.ops())
    assert len(obs.clusters[0].trace.events) > 0
    assert obs.collect()["net.messages_total"] == expected_messages


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_scripted_decision_log_replays(algorithm):
    def scripted_run():
        cluster = SimBackend(
            algorithm,
            ClusterConfig(
                n=3, seed=0, channel=ChannelConfig(min_delay=1.0, max_delay=1.0)
            ),
            tie_break=TieBreak.SCRIPTED,
        )

        async def scenario():
            await cluster.write(0, "v")
            await cluster.snapshot(1)

        cluster.run_until(scenario(), max_events=200_000)
        return cluster.kernel.decision_log

    log_a = scripted_run()
    log_b = scripted_run()
    assert log_a and log_a == log_b


def test_jobs4_output_equals_jobs1_output(capsys):
    from repro.harness.experiments import main

    assert main(["e01", "e07", "--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert main(["e01", "e07", "--jobs", "4"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel
    assert "E1" in serial and "E7" in serial


def test_counterexample_replay_is_bit_identical_even_under_tracing(
    capsys, tmp_path
):
    """A fuzz counterexample round-trips: spec JSON is canonical, every
    replay reproduces the recorded history fingerprint exactly, and a
    ``--trace-out`` capture neither perturbs the replay nor varies
    between replays (two captures are byte-identical)."""
    import json

    import broken_algorithms  # noqa: F401  (registers broken-first-ack)

    from repro.__main__ import main as repro_main
    from repro.fuzz import ScenarioSpec, generate_spec, run_spec, shrink_spec

    spec = generate_spec(10, algorithm="broken-first-ack", events=40)
    shrunk = shrink_spec(spec)
    # Canonical serialization: spec -> JSON -> spec -> JSON is a fixpoint.
    assert ScenarioSpec.from_json(shrunk.spec.to_json()) == shrunk.spec

    from repro.fuzz import write_counterexample

    ce = tmp_path / "ce.json"
    write_counterexample(ce, shrunk.spec, shrunk.outcome)
    traces = []
    for index in range(2):
        trace_path = tmp_path / f"trace-{index}.json"
        assert repro_main(
            ["replay", str(ce), "--trace-out", str(trace_path)]
        ) == 0
        capsys.readouterr()
        traces.append(trace_path.read_bytes())
    assert traces[0] == traces[1]
    # And the traced replay equals the untraced one.
    untraced = run_spec(shrunk.spec)
    assert untraced.fingerprint() == shrunk.outcome.fingerprint()
    payload = json.loads(traces[0].decode())
    assert payload["traceEvents"], "trace capture saw the replayed cluster"
