"""Tests for the asyncio runtime: same algorithms, real event loop."""

import asyncio

import pytest

from repro import ClusterConfig
from repro.analysis.linearizability import check_snapshot_history
from repro.backend.aio import AsyncioBackend

pytestmark = pytest.mark.runtime


def run(coro):
    return asyncio.run(coro)


ALGORITHMS = ["dgfr-nonblocking", "ss-nonblocking", "ss-always", "stacked"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_write_then_snapshot(algorithm):
    async def main():
        cluster = AsyncioBackend(
            algorithm, ClusterConfig(n=4, delta=1), time_scale=0.002
        )
        cluster.start()
        try:
            ts = await asyncio.wait_for(cluster.write(0, b"live"), timeout=10)
            assert ts == 1
            result = await asyncio.wait_for(cluster.snapshot(1), timeout=10)
            assert result.values[0] == b"live"
        finally:
            cluster.stop()

    run(main())


def test_concurrent_operations_linearizable():
    async def main():
        cluster = AsyncioBackend(
            "ss-nonblocking", ClusterConfig(n=4, seed=3), time_scale=0.002
        )
        cluster.start()
        try:
            writes = [cluster.write(node, node * 7) for node in range(4)]
            await asyncio.wait_for(asyncio.gather(*writes), timeout=15)
            snaps = [cluster.snapshot(node) for node in range(4)]
            results = await asyncio.wait_for(asyncio.gather(*snaps), timeout=15)
            assert all(r.values == (0, 7, 14, 21) for r in results)
            report = check_snapshot_history(cluster.history.records(), 4)
            assert report.ok, report.summary()
        finally:
            cluster.stop()

    run(main())


def test_crash_and_resume_on_asyncio():
    async def main():
        cluster = AsyncioBackend(
            "ss-nonblocking", ClusterConfig(n=5, seed=4), time_scale=0.002
        )
        cluster.start()
        try:
            cluster.crash(3)
            cluster.crash(4)
            await asyncio.wait_for(cluster.write(0, "quorum"), timeout=15)
            result = await asyncio.wait_for(cluster.snapshot(1), timeout=15)
            assert result.values[0] == "quorum"
            cluster.resume(3)
            cluster.resume(4)
        finally:
            cluster.stop()

    run(main())


def test_gossip_runs_in_wall_clock():
    async def main():
        cluster = AsyncioBackend(
            "ss-nonblocking",
            ClusterConfig(n=3, gossip_interval=1.0),
            time_scale=0.002,
        )
        cluster.start()
        try:
            await asyncio.sleep(0.2)
            assert cluster.metrics.snapshot().messages("GOSSIP") > 0
        finally:
            cluster.stop()

    run(main())


def test_unknown_algorithm_rejected():
    from repro.errors import ConfigurationError

    async def main():
        with pytest.raises(ConfigurationError):
            AsyncioBackend("bogus")

    run(main())


def test_legacy_facade_removed():
    with pytest.raises(ImportError, match="create_backend"):
        from repro.runtime import AsyncioSnapshotCluster  # noqa: F401
