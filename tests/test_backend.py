"""The backend contract: one cluster API over sim, asyncio, and UDP.

Three kinds of coverage:

* **cross-backend equivalence** — the same sequential write/snapshot
  workload produces the same write timestamps, the same snapshot
  vector, and a linearizable history on every backend, for all four
  paper algorithms (message passing is the only thing the substrate
  changes; the algorithms' vector-clock semantics must not move);
* **real-network fault injection** — the UDP datagram gate forces
  loss/duplication on live packets and the algorithms' retransmission
  still completes every operation;
* **capability degradation** — sim-only features raise one
  :class:`~repro.errors.ConfigurationError` naming the capability, on
  the library surface and through the CLI.

Live-backend tests carry the ``runtime`` marker (wall-clock, real
sockets; ``-m 'not runtime'`` skips them; a SIGALRM watchdog in
``conftest.py`` bounds each one).
"""

import asyncio

import pytest

from repro import ClusterConfig
from repro.analysis.linearizability import check_snapshot_history
from repro.backend import (
    ClusterBackend,
    UdpBackend,
    backend_capabilities,
    backend_class,
    backend_names,
    create_backend,
    run_on_backend,
)
from repro.config import ChannelConfig, scenario_config
from repro.core.cluster import ALGORITHMS
from repro.errors import ConfigurationError

#: Live backends are parametrized with the runtime marker so
#: ``-m "not runtime"`` keeps only the simulator rows.
ALL_BACKENDS = [
    "sim",
    pytest.param("asyncio", marks=pytest.mark.runtime),
    pytest.param("udp", marks=pytest.mark.runtime),
]


def _workload_result(backend: str, algorithm: str) -> dict:
    """Run the shared equivalence workload and distill comparable facts."""
    config = scenario_config(n=3, seed=7, delta=2)

    async def body(cluster):
        ts_first = await cluster.write(0, b"alpha")
        ts_other = await cluster.write(1, b"beta")
        ts_second = await cluster.write(0, b"alpha2")
        snapshot = await cluster.snapshot(2)
        report = check_snapshot_history(cluster.history.records(), 3)
        return {
            "write_ts": (ts_first, ts_other, ts_second),
            "snapshot": tuple(snapshot.values),
            "linearizable": report.ok,
        }

    return run_on_backend(backend, algorithm, config, body, time_scale=0.002)


class TestContract:
    def test_registry_names(self):
        assert backend_names() == ["asyncio", "sim", "udp"]

    def test_unknown_backend_rejected(self):
        with pytest.raises(
            ConfigurationError, match=r"'asyncio', 'sim', 'udp'"
        ):
            backend_class("tcp")

    def test_every_backend_subclasses_the_contract(self):
        for name in backend_names():
            assert issubclass(backend_class(name), ClusterBackend)

    def test_capability_matrix(self):
        sim = backend_capabilities("sim")
        aio = backend_capabilities("asyncio")
        udp = backend_capabilities("udp")
        # Determinism and schedule pinning are the simulator's domain.
        assert sim.deterministic and sim.schedule_pinning
        assert not aio.deterministic and not aio.schedule_pinning
        assert not udp.deterministic and not udp.schedule_pinning
        # Fault vocabulary is shared by all three.
        for capabilities in (sim, aio, udp):
            assert capabilities.partitions and capabilities.channel_faults
        # Only UDP crosses real sockets; its packets are opaque bytes.
        assert udp.real_sockets and not udp.in_flight_inspection
        assert aio.in_flight_inspection and not aio.real_sockets

    def test_require_names_the_capability_and_backend(self):
        with pytest.raises(ConfigurationError) as excinfo:
            backend_capabilities("udp").require(
                "schedule_pinning", "replaying a pinned decision_script"
            )
        message = str(excinfo.value)
        assert "schedule_pinning" in message
        assert "udp" in message
        assert "pinned decision_script" in message


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestEquivalence:
    def test_same_workload_same_semantics(self, backend, algorithm):
        result = _workload_result(backend, algorithm)
        reference = _workload_result("sim", algorithm)
        assert result["write_ts"] == reference["write_ts"] == (1, 1, 2)
        assert result["snapshot"] == reference["snapshot"]
        assert result["snapshot"][0] == b"alpha2"
        assert result["snapshot"][1] == b"beta"
        assert result["linearizable"] and reference["linearizable"]


@pytest.mark.runtime
class TestUdpFaultInjection:
    def test_retransmission_survives_loss_and_duplication(self):
        channel = ChannelConfig(
            min_delay=0.1,
            max_delay=0.5,
            loss_probability=0.25,
            duplication_probability=0.25,
        )
        config = ClusterConfig(n=3, seed=11, delta=1, channel=channel)

        async def main():
            cluster = await create_backend(
                "udp", "ss-nonblocking", config, time_scale=0.002
            )
            try:
                for k in range(4):
                    await asyncio.wait_for(
                        cluster.write(k % 3, f"v{k}".encode()), timeout=30
                    )
                result = await asyncio.wait_for(
                    cluster.snapshot(0), timeout=30
                )
                assert result.values[0] == b"v3"
                stats = cluster.metrics.snapshot()
                return stats.dropped_loss, stats.duplicated
            finally:
                await cluster.close()

        dropped, duplicated = asyncio.run(main())
        # The gate really did hit live datagrams — yet every operation
        # above still completed, because the algorithms retransmit.
        assert dropped > 0
        assert duplicated > 0


@pytest.mark.runtime
class TestCloseLifecycle:
    def test_close_is_idempotent(self):
        async def main():
            cluster = await create_backend("udp", "ss-nonblocking")
            await cluster.close()
            await cluster.close()

        asyncio.run(main())

    def test_close_before_create_is_safe(self):
        async def main():
            backend = UdpBackend("ss-nonblocking")
            await backend.close()
            await backend.close()

        asyncio.run(main())

    def test_operations_after_close_do_not_hang_forever(self):
        async def main():
            cluster = await create_backend("udp", "ss-nonblocking")
            await cluster.write(0, b"before")
            await cluster.close()
            assert cluster.network is None or not cluster.network._open

        asyncio.run(main())


class TestCapabilityErrors:
    """Sim-only features fail loudly — and identically — off-sim."""

    def test_fuzz_jobs_on_live_backend(self):
        from repro.fuzz import run_fuzz_campaign

        with pytest.raises(ConfigurationError, match="process_fanout"):
            run_fuzz_campaign([0], jobs=2, backend="udp")

    def test_pinned_schedule_on_live_backend(self):
        from dataclasses import replace

        from repro.fuzz.executor import run_spec
        from repro.fuzz.spec import generate_spec

        spec = generate_spec(0, events=5)
        pinned = replace(spec, decision_script=(0, 1, 0))
        with pytest.raises(ConfigurationError, match="schedule_pinning"):
            run_spec(pinned, backend="udp")

    def test_chaos_cli_jobs_on_live_backend(self):
        from repro.__main__ import main

        with pytest.raises(ConfigurationError, match="process_fanout"):
            main(["chaos", "--backend", "udp", "--jobs", "2", "--seeds", "2"])

    def test_latency_cli_jobs_on_live_backend(self):
        from repro.__main__ import main

        with pytest.raises(ConfigurationError, match="process_fanout"):
            main(["latency", "--backend", "asyncio", "--jobs", "3"])

    def test_unknown_backend_flag_exits(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="tcp"):
            main(["chaos", "--backend", "tcp"])

    def test_sim_only_experiment_selection_rejected(self):
        from repro.harness.experiments import main as experiments_main

        assert experiments_main(["e01", "--backend", "udp"]) == 2


class TestBackendCli:
    def test_backends_command_prints_matrix(self, capsys):
        from repro.__main__ import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in backend_names():
            assert name in out
        assert "schedule_pinning" in out

    def test_latency_campaign_on_sim(self, capsys):
        from repro.__main__ import main

        assert main(["latency", "--seeds", "2", "--budget", "2"]) == 0
        out = capsys.readouterr().out
        assert "msgs/op" in out

    def test_e16_rows_on_sim(self):
        from repro.harness.latency import e16_backend_parity

        rows = e16_backend_parity(backend="sim", ops=2)
        assert [row["backend"] for row in rows] == ["sim"]
        assert rows[0]["write_msgs_per_op"] > 0
