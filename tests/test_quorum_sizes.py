"""Why majority quorums: experiments with the quorum_size override.

The paper requires ``2f < n`` so that any two quorums intersect.  These
tests demonstrate both directions: with sub-majority quorums the
intersection property fails and the object observably loses writes;
with super-majority quorums safety holds but crash tolerance shrinks.
"""

import pytest

from repro import ChannelConfig, ClusterConfig, SimBackend
from repro.analysis.linearizability import check_snapshot_history
from repro.errors import ConfigurationError


class TestConfigValidation:
    def test_quorum_size_bounds(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(n=4, quorum_size=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(n=4, quorum_size=5)

    def test_default_is_majority(self):
        assert ClusterConfig(n=5).majority == 3
        assert ClusterConfig(n=5, quorum_size=4).majority == 4


class TestSubMajorityQuorumsBreakSafety:
    def test_non_intersecting_quorums_lose_a_write(self):
        """quorum_size=2 with n=5: a write acknowledged by {0,1} and a
        snapshot served by {4,3} never meet — the snapshot misses the
        completed write and the checker flags the violation."""
        channel = ChannelConfig(min_delay=1.0, max_delay=1.0)
        cluster = SimBackend(
            "dgfr-nonblocking",
            ClusterConfig(n=5, seed=0, quorum_size=2, channel=channel),
            start=False,
        )
        # Sever node 0 from nodes 2,3,4: its write can still complete
        # via the tiny quorum {0,1}.
        for dst in (2, 3, 4):
            cluster.network.channel(0, dst).blocked = True
            cluster.network.channel(dst, 0).blocked = True
        # And keep node 1 (the only informed peer) away from node 4's
        # snapshot quorum.
        cluster.network.channel(1, 4).blocked = True

        async def scenario():
            await cluster.write(0, "acknowledged")
            await cluster.kernel.sleep(0.5)
            return await cluster.snapshot(4)

        result = cluster.run_until(scenario(), max_events=None)
        assert result.values[0] is None  # the completed write is invisible
        report = check_snapshot_history(cluster.history.records(), 5)
        assert not report.ok
        assert "misses write" in report.summary()

    def test_majority_quorums_survive_identical_adversity(self):
        """The same partition with proper majorities: the write cannot
        complete on the isolated side, so safety is never at risk."""
        channel = ChannelConfig(min_delay=1.0, max_delay=1.0)
        cluster = SimBackend(
            "dgfr-nonblocking",
            ClusterConfig(n=5, seed=0, channel=channel),
            start=False,
        )
        for dst in (2, 3, 4):
            cluster.network.channel(0, dst).blocked = True
            cluster.network.channel(dst, 0).blocked = True
        cluster.network.channel(1, 4).blocked = True

        async def scenario():
            write_task = cluster.spawn(cluster.write(0, "pending"))
            await cluster.kernel.sleep(40.0)
            # {0,1} is not a majority: the write is still retrying.
            assert not write_task.done()
            snap = await cluster.snapshot(4)
            write_task.cancel()
            return snap

        result = cluster.run_until(scenario(), max_events=None)
        # Whatever the snapshot shows is consistent: the write never
        # completed, so seeing or missing it are both linearizable.
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()


class TestSuperMajorityQuorums:
    def test_full_quorum_blocks_on_single_crash(self):
        cluster = SimBackend(
            "dgfr-nonblocking", ClusterConfig(n=4, seed=1, quorum_size=4)
        )
        cluster.write_sync(0, "all-alive")  # works with everyone up
        cluster.crash(3)
        with pytest.raises(TimeoutError):
            cluster.run_until(
                cluster.kernel.wait_for(cluster.write(0, "stuck"), 100.0),
                max_events=None,
            )

    def test_super_majority_still_linearizable(self):
        cluster = SimBackend(
            "ss-nonblocking", ClusterConfig(n=5, seed=2, quorum_size=4)
        )
        for node in range(5):
            cluster.write_sync(node, f"v{node}")
        cluster.snapshot_sync(0)
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()
