"""Tests for the applications layer (counter, barrier, predicates)."""

import pytest

from repro import ClusterConfig, SimBackend
from repro.apps import DistributedCounter, PhaseBarrier, PredicateDetector
from repro.fault import TransientFaultInjector


def make(algorithm="ss-nonblocking", n=4, seed=0, **kwargs):
    return SimBackend(algorithm, ClusterConfig(n=n, seed=seed, **kwargs))


class TestDistributedCounter:
    def test_increments_sum(self):
        cluster = make()
        counter = DistributedCounter(cluster)
        counter.increment_sync(0)
        counter.increment_sync(1, amount=5)
        counter.increment_sync(0, amount=2)
        reading = counter.read_sync(3)
        assert reading.total == 8
        assert reading.per_node == (3, 5, 0, 0)

    def test_amount_must_be_positive(self):
        cluster = make()
        counter = DistributedCounter(cluster)
        with pytest.raises(ValueError):
            counter.increment_sync(0, amount=0)

    def test_reads_are_monotone(self):
        cluster = make(seed=1)
        counter = DistributedCounter(cluster)

        async def run():
            readings = []
            for round_index in range(4):
                await counter.increment(round_index % 4)
                readings.append(await counter.read(0))
            return readings

        readings = cluster.run_until(run())
        totals = [reading.total for reading in readings]
        assert totals == sorted(totals)
        for earlier, later in zip(readings, readings[1:]):
            assert later.dominates(earlier)

    def test_concurrent_increments_never_lost(self):
        cluster = make(seed=2)
        counter = DistributedCounter(cluster)

        async def run():
            tasks = [
                cluster.spawn(counter.increment(node, amount=node + 1))
                for node in range(4)
            ]
            await cluster.kernel.gather(tasks)
            return await counter.read(0)

        reading = cluster.run_until(run())
        assert reading.total == 1 + 2 + 3 + 4

    def test_read_never_misses_completed_increment(self):
        cluster = make(seed=3)
        counter = DistributedCounter(cluster)
        counter.increment_sync(2, amount=7)
        reading = counter.read_sync(1)
        assert reading.per_node[2] == 7

    def test_contribution_recovered_after_detectable_restart(self):
        cluster = make(seed=4)
        counter = DistributedCounter(cluster)
        counter.increment_sync(1, amount=3)
        cluster.run_until(cluster.settle_cycles(2))
        cluster.crash(1)
        cluster.resume(1, restart=True)
        cluster.run_until(cluster.settle_cycles(3))
        fresh = DistributedCounter(cluster)  # no local cache
        fresh.increment_sync(1, amount=2)
        assert fresh.read_sync(0).per_node[1] == 5

    def test_counter_survives_transient_fault(self):
        cluster = make(seed=5)
        counter = DistributedCounter(cluster)
        counter.increment_sync(0, amount=4)
        TransientFaultInjector(cluster, seed=5).corrupt_write_indices()
        cluster.run_until(cluster.settle_cycles(4))
        counter.increment_sync(0, amount=1)
        reading = counter.read_sync(2)
        assert reading.per_node[0] == 5


class TestPhaseBarrier:
    def test_all_participants_synchronize(self):
        cluster = make(seed=6)
        barrier = PhaseBarrier(cluster)

        async def run():
            tasks = [
                cluster.spawn(barrier.run_phases(node, phases=3))
                for node in range(4)
            ]
            await cluster.kernel.gather(tasks)
            return await cluster.snapshot(0)

        view = cluster.run_until(run(), max_events=None)
        assert all(value == 3 for value in view.values)

    def test_barrier_blocks_until_laggard_arrives(self):
        cluster = make(seed=7)
        barrier = PhaseBarrier(cluster, participants=[0, 1])

        async def run():
            await barrier.enter(0, 1)
            waiter = cluster.spawn(barrier.await_phase(0, 1))
            await cluster.kernel.sleep(20.0)
            assert not waiter.done()  # node 1 has not entered
            await barrier.enter(1, 1)
            phases = await waiter
            return phases

        assert cluster.run_until(run(), max_events=None) == (1, 1)

    def test_phase_validation(self):
        cluster = make()
        barrier = PhaseBarrier(cluster)
        with pytest.raises(ValueError):
            cluster.run_until(barrier.enter(0, 0))

    def test_observers_excluded(self):
        cluster = make(seed=8)
        barrier = PhaseBarrier(cluster, participants=[0, 1, 2])

        async def run():
            for node in (0, 1, 2):
                await barrier.enter(node, 1)
            # Node 3 never participates; the barrier must still open.
            return await barrier.await_phase(0, 1)

        assert cluster.run_until(run(), max_events=None) == (1, 1, 1)


class TestPredicateDetector:
    def test_detects_stable_predicate(self):
        cluster = make(seed=9)
        detector = PredicateDetector(
            cluster,
            predicate=lambda values: all(v == "done" for v in values),
        )

        async def run():
            waiter = cluster.spawn(detector.wait_until(0))
            for node in range(4):
                await cluster.write(node, "done")
            return await waiter

        values = cluster.run_until(run(), max_events=None)
        assert values == ("done",) * 4

    def test_check_single_evaluation(self):
        cluster = make(seed=10)
        detector = PredicateDetector(
            cluster, predicate=lambda values: values[0] is not None
        )
        assert not cluster.run_until(detector.check(1))
        cluster.write_sync(0, "x")
        assert cluster.run_until(detector.check(1))

    def test_wait_until_times_out(self):
        cluster = make(seed=11)
        detector = PredicateDetector(
            cluster, predicate=lambda values: False
        )
        with pytest.raises(TimeoutError):
            cluster.run_until(detector.wait_until(0, max_polls=3))
