"""Smoke tests: every example script runs and prints what it promises.

Keeps the examples working as the library evolves — broken examples are
a documentation bug.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, timeout=240):
    # -W error::DeprecationWarning: the examples are the library's
    # showcase, so they must not lean on deprecated facades.
    result = subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning",
         str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_contents():
    names = {path.name for path in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "distributed_monitoring.py",
        "fault_recovery_demo.py",
        "delta_tuning.py",
        "asyncio_cluster.py",
        "paper_figures.py",
    } <= names


def test_quickstart():
    out = run_example("quickstart.py")
    assert "'alpha': (2, b'a2')" in out
    assert "linearizable    : True" in out
    assert "epoch 0->1" in out


def test_distributed_monitoring():
    out = run_example("distributed_monitoring.py")
    assert "total load" in out
    assert "all observed global states consistent: True" in out


def test_fault_recovery_demo():
    out = run_example("fault_recovery_demo.py")
    assert "STUCK FOREVER" in out  # the baseline fails…
    assert "RECOVERED" in out  # …and the SS variant heals


@pytest.mark.slow
def test_delta_tuning():
    out = run_example("delta_tuning.py", timeout=600)
    assert "delta trade-off" in out
    assert "∞" in out


def test_asyncio_cluster():
    out = run_example("asyncio_cluster.py")
    assert "history linearizable: True" in out
    assert "written-while-3-down" in out


def test_paper_figures():
    out = run_example("paper_figures.py")
    for marker in (
        "Figure 1 (upper)",
        "Figure 1 (lower)",
        "Figure 2",
        "Figure 3 (upper)",
        "Figure 3 (lower)",
    ):
        assert marker in out


def test_live_reconfiguration():
    out = run_example("live_reconfiguration.py")
    assert "carried 2 entries" in out
    assert "timestamp 3" in out


def test_snapshot_applications():
    out = run_example("snapshot_applications.py")
    assert "items processed : 60 (expected 60)" in out


def test_udp_cluster():
    out = run_example("udp_cluster.py")
    assert "history linearizable: True" in out
    assert "datagrams" in out
