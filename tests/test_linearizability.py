"""Unit tests for both linearizability checkers on hand-built histories."""

import pytest

from repro.analysis.history import SNAPSHOT, WRITE, HistoryRecorder
from repro.analysis.linearizability import (
    check_exhaustive,
    check_snapshot_history,
)
from repro.core.base import SnapshotResult
from repro.errors import HistoryError


def snap_result(vc, values=None):
    if values is None:
        values = tuple(f"v{ts}" if ts else None for ts in vc)
    return SnapshotResult(values=tuple(values), vector_clock=tuple(vc))


def build(ops):
    """Build a history from tuples (node, kind, invoked, responded, result, arg)."""
    history = HistoryRecorder()
    for node, kind, invoked, responded, result, arg in ops:
        op = history.invoke(node, kind, arg, now=invoked)
        if responded is not None:
            history.respond(op, result=result, now=responded)
    return history.records()


class TestSpecializedChecker:
    def test_empty_history_ok(self):
        assert check_snapshot_history([], n=3).ok

    def test_simple_sequential_history(self):
        records = build(
            [
                (0, WRITE, 0.0, 1.0, 1, "v1"),
                (1, SNAPSHOT, 2.0, 3.0, snap_result((1, 0)), None),
                (1, WRITE, 4.0, 5.0, 1, "v1"),
                (0, SNAPSHOT, 6.0, 7.0, snap_result((1, 1)), None),
            ]
        )
        report = check_snapshot_history(records, n=2)
        assert report.ok, report.summary()

    def test_snapshot_missing_preceding_write(self):
        records = build(
            [
                (0, WRITE, 0.0, 1.0, 1, "a"),
                (1, SNAPSHOT, 2.0, 3.0, snap_result((0, 0)), None),
            ]
        )
        report = check_snapshot_history(records, n=2)
        assert not report.ok
        assert "misses write" in report.summary()

    def test_snapshot_sees_future_write(self):
        records = build(
            [
                (1, SNAPSHOT, 0.0, 1.0, snap_result((1, 0)), None),
                (0, WRITE, 2.0, 3.0, 1, "a"),
            ]
        )
        report = check_snapshot_history(records, n=2)
        assert not report.ok
        assert "future write" in report.summary()

    def test_incomparable_snapshots_rejected(self):
        records = build(
            [
                (0, WRITE, 0.0, 10.0, 1, "v1"),
                (1, WRITE, 0.0, 10.0, 1, "v1"),
                (2, SNAPSHOT, 0.0, 10.0, snap_result((1, 0, 0, 0)), None),
                (3, SNAPSHOT, 0.0, 10.0, snap_result((0, 1, 0, 0)), None),
            ]
        )
        report = check_snapshot_history(records, n=4)
        assert not report.ok
        assert "incomparable" in report.summary()

    def test_realtime_order_between_snapshots(self):
        records = build(
            [
                (0, WRITE, 0.0, 1.0, 1, "a"),
                (1, SNAPSHOT, 2.0, 3.0, snap_result((1, 0)), None),
                (1, SNAPSHOT, 4.0, 5.0, snap_result((0, 0)), None),
            ]
        )
        report = check_snapshot_history(records, n=2)
        assert not report.ok

    def test_nonmonotonic_writer_timestamps(self):
        records = build(
            [
                (0, WRITE, 0.0, 1.0, 2, "a"),
                (0, WRITE, 2.0, 3.0, 1, "b"),
            ]
        )
        report = check_snapshot_history(records, n=1)
        assert not report.ok
        assert "not increasing" in report.summary()

    def test_value_mismatch_detected(self):
        records = build(
            [
                (0, WRITE, 0.0, 1.0, 1, "real"),
                (1, SNAPSHOT, 2.0, 3.0, snap_result((1, 0), ("fake", None)), None),
            ]
        )
        assert not check_snapshot_history(records, n=2).ok
        assert check_snapshot_history(records, n=2, check_values=False).ok

    def test_bottom_with_value_detected(self):
        records = build(
            [(1, SNAPSHOT, 0.0, 1.0, snap_result((0, 0), ("junk", None)), None)]
        )
        assert not check_snapshot_history(records, n=2).ok

    def test_wrong_vector_length_raises(self):
        records = build(
            [(0, SNAPSHOT, 0.0, 1.0, snap_result((0, 0)), None)]
        )
        with pytest.raises(HistoryError):
            check_snapshot_history(records, n=3)

    def test_concurrent_ops_any_order_ok(self):
        # Write and snapshot fully overlap; snapshot may or may not see it.
        for vc in [(0, 0), (1, 0)]:
            records = build(
                [
                    (0, WRITE, 0.0, 10.0, 1, "v1"),
                    (1, SNAPSHOT, 0.0, 10.0, snap_result(vc), None),
                ]
            )
            assert check_snapshot_history(records, n=2).ok


class TestExhaustiveChecker:
    def test_simple_ok(self):
        records = build(
            [
                (0, WRITE, 0.0, 1.0, 1, "a"),
                (1, SNAPSHOT, 2.0, 3.0, snap_result((1, 0)), None),
            ]
        )
        assert check_exhaustive(records, n=2)

    def test_missed_write_rejected(self):
        records = build(
            [
                (0, WRITE, 0.0, 1.0, 1, "a"),
                (1, SNAPSHOT, 2.0, 3.0, snap_result((0, 0)), None),
            ]
        )
        assert not check_exhaustive(records, n=2)

    def test_concurrent_snapshot_both_orders(self):
        records = build(
            [
                (0, WRITE, 0.0, 10.0, 1, "a"),
                (1, SNAPSHOT, 0.0, 10.0, snap_result((0, 0)), None),
            ]
        )
        assert check_exhaustive(records, n=2)

    def test_incomparable_snapshots_rejected(self):
        records = build(
            [
                (0, WRITE, 0.0, 10.0, 1, "v1"),
                (1, WRITE, 0.0, 10.0, 1, "v1"),
                (2, SNAPSHOT, 0.0, 10.0, snap_result((1, 0, 0, 0)), None),
                (3, SNAPSHOT, 0.0, 10.0, snap_result((0, 1, 0, 0)), None),
            ]
        )
        assert not check_exhaustive(records, n=4)

    def test_large_history_rejected(self):
        records = build(
            [(0, WRITE, float(i), float(i) + 0.5, i + 1, "x") for i in range(25)]
        )
        with pytest.raises(HistoryError):
            check_exhaustive(records, n=1)

    def test_agrees_with_specialized_on_valid(self):
        records = build(
            [
                (0, WRITE, 0.0, 1.0, 1, "v1"),
                (1, WRITE, 0.5, 1.5, 1, "v1"),
                (2, SNAPSHOT, 2.0, 3.0, snap_result((1, 1, 0)), None),
                (0, WRITE, 3.5, 4.5, 2, "v2"),
                (2, SNAPSHOT, 5.0, 6.0, snap_result((2, 1, 0)), None),
            ]
        )
        assert check_exhaustive(records, n=3)
        assert check_snapshot_history(records, n=3).ok
