"""Tests for the stateless model checker (schedule exploration)."""

import pytest

from repro.config import ChannelConfig, ClusterConfig
from repro.core.base import SnapshotResult
from repro.backend.sim import SimBackend
from repro.sim.kernel import Kernel, TieBreak
from repro.verify import explore, explore_snapshot_scenario


class TestScriptedKernel:
    def test_default_script_behaves_like_fifo(self):
        def run(tie_break, script=()):
            kernel = Kernel(tie_break=tie_break)
            kernel.decision_script = list(script)
            order = []
            for label in "abc":
                kernel.call_later(1.0, order.append, label)
            kernel.run()
            return order, kernel.decision_log

        fifo_order, _ = run(TieBreak.FIFO)
        scripted_order, log = run(TieBreak.SCRIPTED)
        assert scripted_order == fifo_order == list("abc")
        assert log == [(0, 3), (0, 2)]

    def test_script_reorders_ties(self):
        kernel = Kernel(tie_break=TieBreak.SCRIPTED)
        kernel.decision_script = [2, 1]
        order = []
        for label in "abc":
            kernel.call_later(1.0, order.append, label)
        kernel.run()
        assert order == ["c", "b", "a"]

    def test_out_of_range_choices_clamped(self):
        kernel = Kernel(tie_break=TieBreak.SCRIPTED)
        kernel.decision_script = [99]
        order = []
        for label in "ab":
            kernel.call_later(1.0, order.append, label)
        kernel.run()
        assert order == ["b", "a"]
        assert kernel.decision_log[0] == (1, 2)

    def test_singleton_events_not_logged(self):
        kernel = Kernel(tie_break=TieBreak.SCRIPTED)
        kernel.call_later(1.0, lambda: None)
        kernel.call_later(2.0, lambda: None)
        kernel.run()
        assert kernel.decision_log == []


class TestExplore:
    def test_enumerates_small_tree_exhaustively(self):
        """A scenario with one 3-way and one 2-way choice: 6 leaves."""
        observed = []

        def run_one(script):
            kernel = Kernel(tie_break=TieBreak.SCRIPTED)
            kernel.decision_script = list(script)
            order = []
            for label in "abc":
                kernel.call_later(1.0, order.append, label)
            kernel.run()
            observed.append(tuple(order))
            return kernel.decision_log, True, ""

        result = explore(run_one, max_runs=50)
        assert result.exhausted
        assert result.ok
        assert len(set(observed)) == 6  # all 3! permutations reached

    def test_budget_limits_runs(self):
        def run_one(script):
            kernel = Kernel(tie_break=TieBreak.SCRIPTED)
            kernel.decision_script = list(script)
            for index in range(6):
                kernel.call_later(1.0, lambda: None)
            kernel.run()
            return kernel.decision_log, True, ""

        result = explore(run_one, max_runs=10)
        assert result.runs == 10
        assert not result.exhausted

    def test_violation_carries_reproducible_script(self):
        def run_one(script):
            kernel = Kernel(tie_break=TieBreak.SCRIPTED)
            kernel.decision_script = list(script)
            order = []
            for label in "ab":
                kernel.call_later(1.0, order.append, label)
            kernel.run()
            ok = order != ["b", "a"]  # declare one interleaving "a bug"
            return kernel.decision_log, ok, f"order={order}"

        result = explore(run_one, max_runs=10)
        assert not result.ok
        assert result.violations[0].script == (1,)
        assert "['b', 'a']" in result.violations[0].details


from broken_algorithms import BrokenFirstAckOnly  # noqa: E402, F401


def _partitioned_run_one(algorithm):
    """Scenario: node 0 cannot reach nodes 3/4; write then snapshot at 4.

    After node 0's write completes via the majority {0,1,2}, nodes 3 and
    4 are still stale.  The snapshot's ack order decides whether a buggy
    first-ack-only merge reads the stale node.
    """
    channel = ChannelConfig(min_delay=1.0, max_delay=1.0)

    def run_one(script):
        config = ClusterConfig(n=5, seed=0, channel=channel)
        cluster = SimBackend(
            algorithm, config, tie_break=TieBreak.SCRIPTED, start=False
        )
        cluster.kernel.decision_script = list(script)
        cluster.network.channel(0, 3).blocked = True
        cluster.network.channel(0, 4).blocked = True

        async def scenario():
            await cluster.write(0, "committed")
            await cluster.kernel.sleep(0.5)  # strict real-time separation
            await cluster.snapshot(4)

        cluster.run_until(scenario(), max_events=200_000)
        from repro.analysis.linearizability import check_snapshot_history

        report = check_snapshot_history(cluster.history.records(), 5)
        return cluster.kernel.decision_log, report.ok, report.summary()

    return run_one


class TestModelCheckingAlgorithms:
    @pytest.mark.parametrize(
        "algorithm", ["dgfr-nonblocking", "ss-nonblocking"]
    )
    def test_correct_algorithms_pass_all_explored_schedules(self, algorithm):
        result = explore_snapshot_scenario(
            algorithm,
            [("write", 0, "v1"), ("write", 1, "v1"), ("snapshot", 2, None)],
            n=3,
            max_runs=150,
            max_depth=10,
        )
        assert result.ok, result.violations[:1]
        assert result.runs == 150  # the space is large; budget applies

    def test_ss_always_passes_explored_schedules(self):
        result = explore_snapshot_scenario(
            "ss-always",
            [("write", 0, "v1"), ("snapshot", 1, None)],
            n=3,
            delta=0,
            max_runs=80,
            max_depth=8,
        )
        assert result.ok, result.violations[:1]

    def test_finds_quorum_bug_in_broken_algorithm(self):
        """The explorer must find the schedule where the first-ack-only
        snapshot reads from a stale node and misses a *completed* write
        — a real-time linearizability violation that only manifests
        under particular ack orderings.

        Setup: node 0's channels to nodes 3 and 4 are severed, so after
        node 0's write completes (via the majority {0,1,2}) nodes 3 and
        4 are still stale.  A later snapshot at node 4 that merges only
        its first ack returns the stale view exactly when node 3's ack
        wins the race — one specific branch of the tie between the acks.
        """
        result = explore(
            _partitioned_run_one("broken-first-ack"),
            max_runs=200,
            max_depth=40,
            strategy="random-walk",
        )
        assert not result.ok, result.summary()
        violation = result.violations[0]
        assert "misses write" in violation.details
        # The counterexample script replays the violation exactly.
        log, ok, details = _partitioned_run_one("broken-first-ack")(
            list(violation.script)
        )
        assert not ok

    def test_correct_algorithm_survives_same_adversity(self):
        """The unmodified algorithm passes every schedule of the exact
        setup that breaks the buggy one (majority intersection saves it)."""
        result = explore(
            _partitioned_run_one("dgfr-nonblocking"),
            max_runs=200,
            max_depth=40,
            strategy="random-walk",
        )
        assert result.ok, result.violations[:1]
