"""Behaviour specific to the always-terminating algorithms (Section 4)."""

import math

import pytest

from repro import ClusterConfig, SimBackend, UNBOUNDED_DELTA
from repro.analysis.linearizability import check_snapshot_history


def make(algorithm, n=5, seed=0, delta=0, **kwargs):
    return SimBackend(
        algorithm, ClusterConfig(n=n, seed=seed, delta=delta, **kwargs)
    )


class ContinuousWriters:
    """Drives saturating write load from a set of nodes."""

    def __init__(self, cluster, nodes):
        self.cluster = cluster
        self.nodes = nodes
        self.stopped = []
        self.counts = {node: 0 for node in nodes}
        self.tasks = []

    async def _writer(self, node):
        while not self.stopped:
            await self.cluster.write(node, (node, self.counts[node]))
            self.counts[node] += 1

    def start(self):
        self.tasks = [
            self.cluster.spawn(self._writer(node)) for node in self.nodes
        ]

    async def stop(self):
        self.stopped.append(True)
        await self.cluster.kernel.gather(self.tasks)

    @property
    def total(self):
        return sum(self.counts.values())


@pytest.mark.parametrize("algorithm", ["dgfr-always", "ss-always"])
class TestAlwaysTermination:
    def test_snapshot_terminates_under_continuous_writes(self, algorithm):
        """The headline guarantee that the non-blocking variant lacks."""
        cluster = make(algorithm, seed=1)
        writers = ContinuousWriters(cluster, [0, 1, 2, 3])

        async def probe():
            writers.start()
            await cluster.kernel.sleep(20.0)  # let write load build up
            result = await cluster.snapshot(4)
            await writers.stop()
            return result

        result = cluster.run_until(probe(), max_events=None)
        assert result is not None
        assert writers.total > 0
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()

    def test_repeated_snapshots_under_load(self, algorithm):
        cluster = make(algorithm, seed=2)
        writers = ContinuousWriters(cluster, [0, 1])

        async def probe():
            writers.start()
            results = []
            for _ in range(3):
                results.append(await cluster.snapshot(4))
            await writers.stop()
            return results

        results = cluster.run_until(probe(), max_events=None)
        vcs = [r.vector_clock for r in results]
        for earlier, later in zip(vcs, vcs[1:]):
            assert all(a <= b for a, b in zip(earlier, later))

    def test_all_nodes_snapshot_concurrently(self, algorithm):
        """Figure 2 vs Figure 3 (lower): concurrent snapshot invocations."""
        cluster = make(algorithm, seed=3)

        async def probe():
            cluster.spawn(cluster.write(0, "w"))
            snaps = [cluster.spawn(cluster.snapshot(i)) for i in range(5)]
            return await cluster.kernel.gather(snaps)

        results = cluster.run_until(probe(), max_events=None)
        assert len(results) == 5
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()


class TestDgfrAlwaysSpecifics:
    def test_rep_snap_accumulates_results(self):
        cluster = make("dgfr-always")
        cluster.snapshot_sync(0)
        cluster.snapshot_sync(1)
        cluster.run_until(cluster.settle_cycles(3))
        # Reliable broadcast spread both END results everywhere.
        for node in cluster.processes:
            assert (0, 1) in node.rep_snap
            assert (1, 1) in node.rep_snap

    def test_every_node_serves_every_task(self):
        """The O(n²) job-stealing scheme: all nodes bump ssn per task."""
        cluster = make("dgfr-always")
        before = [node.ssn for node in cluster.processes]
        cluster.snapshot_sync(0)
        cluster.run_until(cluster.settle_cycles(4))
        after = [node.ssn for node in cluster.processes]
        assert all(b > a for a, b in zip(before, after))

    def test_writes_deferred_while_task_pending(self):
        """A write invoked during a snapshot is served by the loop after."""
        cluster = make("dgfr-always", seed=5)

        async def probe():
            snap_task = cluster.spawn(cluster.snapshot(1))
            write_task = cluster.spawn(cluster.write(0, "deferred"))
            await cluster.kernel.gather([snap_task, write_task])
            return await cluster.snapshot(2)

        result = cluster.run_until(probe(), max_events=None)
        assert result.values[0] == "deferred"


class TestSsAlwaysDeltaSemantics:
    def test_delta_zero_all_nodes_help_immediately(self):
        cluster = make("ss-always", delta=0, seed=7)
        cluster.snapshot_sync(0)
        cluster.run_until(cluster.settle_cycles(2))
        # With δ=0 every node adopted and served the task.
        for node in cluster.processes:
            assert node.pnd_tsk[0].sns == 1

    def test_unbounded_delta_only_owner_serves(self):
        cluster = make("ss-always", delta=UNBOUNDED_DELTA, seed=9)
        with cluster.metrics.window() as window:
            cluster.snapshot_sync(0)
        # Only the initiating node ran query rounds: O(n) messages, all
        # SNAPSHOT traffic originating from node 0.
        assert cluster.metrics.sender_messages(1, "SNAPSHOT") == 0
        assert window.stats.messages("SNAPSHOT") <= 2 * (cluster.config.n - 1)

    def test_unbounded_delta_snapshot_starves_like_algorithm1(self):
        """With δ = ∞ nobody helps and termination is *not guaranteed*:
        under this adversarial schedule (saturating writers, write pacing
        faster than a query round) the snapshot is still pending after
        300 time units, exactly the Algorithm 1 liveness gap."""
        from repro import ChannelConfig

        cluster = make(
            "ss-always",
            delta=UNBOUNDED_DELTA,
            seed=1,
            gossip_interval=0.4,
            channel=ChannelConfig(min_delay=1.0, max_delay=1.0),
        )
        writers = ContinuousWriters(cluster, [0, 1, 2, 3])

        async def probe():
            writers.start()
            snap_task = cluster.spawn(cluster.snapshot(4))
            await cluster.kernel.sleep(300.0)
            starved = not snap_task.done()
            await writers.stop()
            await snap_task
            return starved

        assert cluster.run_until(probe(), max_events=None)

    def test_finite_delta_terminates_under_load(self):
        """Theorem 3: with finite δ the snapshot terminates despite load."""
        cluster = make("ss-always", delta=4, seed=13)
        writers = ContinuousWriters(cluster, [0, 1, 2, 3])

        async def probe():
            writers.start()
            await cluster.kernel.sleep(20.0)
            result = await cluster.snapshot(4)
            await writers.stop()
            return result

        result = cluster.run_until(probe(), max_events=None)
        assert result is not None

    def test_vc_sample_set_after_interfered_round(self):
        """Line 93: an interfered round samples VC into pndTsk[i].vc."""
        cluster = make("ss-always", delta=1000, seed=15)
        writers = ContinuousWriters(cluster, [0, 1])

        async def probe():
            writers.start()
            snap_task = cluster.spawn(cluster.snapshot(4))
            await cluster.kernel.sleep(60.0)
            vc = cluster.node(4).pnd_tsk[4].vc
            await writers.stop()
            await snap_task
            return vc

        vc = cluster.run_until(probe(), max_events=None)
        assert vc is not None

    def test_delta_result_delivered_via_save_helping(self):
        """A node holding a finished result forwards it to a late querier
        (line 107's helping path)."""
        cluster = make("ss-always", delta=0, seed=17)
        result = cluster.snapshot_sync(2)
        assert result is not None
        # The initiator's entry holds the final result...
        assert cluster.node(2).pnd_tsk[2].fnl is not None
        # ...and after a couple of cycles a majority stored it too.
        cluster.run_until(cluster.settle_cycles(3))
        holders = sum(
            1 for node in cluster.processes if node.pnd_tsk[2].fnl is not None
        )
        assert holders >= cluster.config.majority

    def test_second_snapshot_resets_own_task(self):
        cluster = make("ss-always", delta=0, seed=19)
        cluster.snapshot_sync(3)
        assert cluster.node(3).pnd_tsk[3].sns == 1
        cluster.snapshot_sync(3)
        assert cluster.node(3).pnd_tsk[3].sns == 2
        assert cluster.node(3).sns == 2

    def test_cheaper_than_algorithm2_per_snapshot(self):
        """Figure 3 (upper) vs Figure 2: at δ=0 both algorithms run O(n²)
        query rounds, but Algorithm 3 replaces Algorithm 2's reliable
        broadcast (SNAP + END dissemination with per-peer retransmission)
        by one majority-acknowledged SAVE — far fewer messages per task."""
        counts = {}
        for name in ("ss-always", "dgfr-always"):
            cluster = make(name, delta=0, seed=21)
            cluster.run_until(cluster.settle_cycles(1))
            with cluster.metrics.window() as window:
                cluster.snapshot_sync(0)
                cluster.run_until(cluster.settle_cycles(2))
            stats = window.stats
            counts[name] = stats.total_messages - stats.messages("GOSSIP")
        assert counts["dgfr-always"] > counts["ss-always"] * 1.5

    def test_math_inf_delta_flag(self):
        cluster = make("ss-always", delta=UNBOUNDED_DELTA)
        assert cluster.node(0).is_unbounded_delta()
        assert math.isinf(cluster.node(0).delta)
        cluster2 = make("ss-always", delta=3)
        assert not cluster2.node(0).is_unbounded_delta()
