"""Tests for the bounded-counter variant and global reset (Section 5)."""

import pytest

from repro import ClusterConfig, SimBackend
from repro.analysis.linearizability import check_snapshot_history
from repro.errors import ResetInProgressError
from repro.stabilization.reset import EpochEnvelope, ResetCommitMessage


def make(n=5, seed=0, max_int=12, **kwargs):
    return SimBackend(
        "bounded-ss-nonblocking",
        ClusterConfig(n=n, seed=seed, max_int=max_int, **kwargs),
    )


async def write_all(cluster, rounds, on_abort="retry"):
    """Write from every node for ``rounds``, retrying across resets."""
    aborts = 0
    for round_index in range(rounds):
        for node in range(cluster.config.n):
            while True:
                try:
                    await cluster.write(node, (round_index, node))
                    break
                except ResetInProgressError:
                    aborts += 1
                    if on_abort == "raise":
                        raise
                    await cluster.tracker.wait_cycles(3)
    return aborts


class TestBoundedOperation:
    def test_behaves_normally_below_maxint(self):
        cluster = make(max_int=1000)
        cluster.write_sync(0, "plain")
        result = cluster.snapshot_sync(1)
        assert result.values[0] == "plain"
        assert all(p.resets_completed == 0 for p in cluster.processes)

    def test_overflow_triggers_reset(self):
        cluster = make(max_int=6, seed=1)
        cluster.run_until(write_all(cluster, 8), max_events=None)
        assert all(p.resets_completed >= 1 for p in cluster.processes)

    def test_epochs_agree_after_reset(self):
        cluster = make(max_int=6, seed=2)
        cluster.run_until(write_all(cluster, 8), max_events=None)
        cluster.run_until(cluster.settle_cycles(4), max_events=None)
        epochs = {p.epoch for p in cluster.processes}
        assert len(epochs) == 1
        assert epochs.pop() >= 1

    def test_register_values_survive_reset(self):
        cluster = make(max_int=8, seed=3)

        async def run():
            for node in range(5):
                await cluster.write(node, f"keep-{node}")
            # Force overflow with repeated writes from node 0.
            while cluster.node(0).resets_completed == 0:
                try:
                    await cluster.write(0, "burn")
                except ResetInProgressError:
                    await cluster.tracker.wait_cycles(3)
            await cluster.tracker.wait_cycles(3)
            return await cluster.snapshot(1)

        result = cluster.run_until(run(), max_events=None)
        for node in range(1, 5):
            assert result.values[node] == f"keep-{node}"

    def test_indices_restart_after_reset(self):
        cluster = make(max_int=6, seed=4)
        cluster.run_until(write_all(cluster, 3), max_events=None)
        cluster.run_until(cluster.settle_cycles(4), max_events=None)
        assert all(p.ts < 6 for p in cluster.processes)

    def test_operations_rejected_during_reset(self):
        cluster = make(max_int=6, seed=5)
        node = cluster.node(0)
        node.resetting = True
        with pytest.raises(ResetInProgressError):
            cluster.write_sync(0, "nope")
        with pytest.raises(ResetInProgressError):
            cluster.snapshot_sync(0)
        # The aborted operations are recorded as aborted, keeping the
        # history well-formed and the checker happy.
        cluster.history.validate_well_formed()
        assert all(r.aborted for r in cluster.history.records())

    def test_multiple_resets_keep_system_usable(self):
        cluster = make(max_int=5, seed=6)
        aborts = cluster.run_until(write_all(cluster, 14), max_events=None)
        assert all(p.resets_completed >= 2 for p in cluster.processes)
        result = cluster.snapshot_sync(2)
        assert result.values == tuple((13, node) for node in range(5))
        # The paper's criteria: only a bounded number of aborts per reset.
        assert aborts <= 3 * cluster.node(0).resets_completed + 3

    def test_post_reset_history_linearizable(self):
        cluster = make(max_int=10, seed=7)
        cluster.run_until(write_all(cluster, 4), max_events=None)
        cluster.run_until(cluster.settle_cycles(4), max_events=None)
        from repro.analysis.history import HistoryRecorder

        cluster.history = HistoryRecorder()
        for node in range(5):
            cluster.write_sync(node, f"fresh-{node}")
        cluster.snapshot_sync(0)
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()


class TestEpochHygiene:
    def test_envelope_reports_inner_kind(self):
        from repro.core.base import WriteMessage
        from repro.core.register import RegisterArray

        inner = WriteMessage(reg=RegisterArray(3))
        envelope = EpochEnvelope(epoch=2, inner=inner)
        assert envelope.kind == "WRITE"
        assert envelope.wire_size() > inner.wire_size()

    def test_stale_epoch_messages_dropped(self):
        cluster = make(max_int=1000, seed=8)
        from repro.core.base import WriteMessage
        from repro.core.register import RegisterArray, TimestampedValue

        poisoned = RegisterArray(5)
        poisoned[0] = TimestampedValue(999, "poison")
        node = cluster.node(1)
        node.deliver(
            0, EpochEnvelope(epoch=7, inner=WriteMessage(reg=poisoned))
        )
        assert node.reg[0].ts == 0  # dropped: wrong epoch

    def test_current_epoch_messages_accepted(self):
        cluster = make(max_int=1000, seed=9)
        from repro.core.base import WriteMessage
        from repro.core.register import RegisterArray, TimestampedValue

        fresh = RegisterArray(5)
        fresh[0] = TimestampedValue(1, "ok")
        node = cluster.node(1)
        node.deliver(0, EpochEnvelope(epoch=0, inner=WriteMessage(reg=fresh)))
        assert node.reg[0].value == "ok"

    def test_commit_message_carries_merged_values(self):
        """The coordinator's commit installs the join of all votes, so
        divergent pre-reset replicas cannot survive as irreconcilable
        ts-0 entries."""
        cluster = make(max_int=6, seed=10)
        cluster.run_until(write_all(cluster, 8), max_events=None)
        cluster.run_until(cluster.settle_cycles(4), max_events=None)
        reference = [p.reg.snapshot_values() for p in cluster.processes]
        assert all(values == reference[0] for values in reference)
