"""Behavioural tests shared across all four snapshot algorithms."""

import pytest

from repro import ChannelConfig, ClusterConfig, SimBackend
from repro.analysis.linearizability import check_snapshot_history
from repro.errors import ConfigurationError, ReproError

ALL = ["dgfr-nonblocking", "ss-nonblocking", "dgfr-always", "ss-always"]


def make(algorithm, n=5, seed=0, delta=2, **kwargs):
    return SimBackend(
        algorithm, ClusterConfig(n=n, seed=seed, delta=delta, **kwargs)
    )


@pytest.mark.parametrize("algorithm", ALL)
class TestBasicSemantics:
    def test_empty_snapshot(self, algorithm):
        cluster = make(algorithm)
        result = cluster.snapshot_sync(0)
        assert result.values == (None,) * 5
        assert result.vector_clock == (0,) * 5

    def test_write_then_snapshot(self, algorithm):
        cluster = make(algorithm)
        ts = cluster.write_sync(2, b"hello")
        assert ts == 1
        result = cluster.snapshot_sync(0)
        assert result.values[2] == b"hello"
        assert result.vector_clock[2] == 1

    def test_successive_writes_bump_timestamps(self, algorithm):
        cluster = make(algorithm)
        assert cluster.write_sync(0, "a") == 1
        assert cluster.write_sync(0, "b") == 2
        assert cluster.write_sync(0, "c") == 3
        result = cluster.snapshot_sync(1)
        assert result.values[0] == "c"
        assert result.vector_clock[0] == 3

    def test_every_node_can_write_and_snapshot(self, algorithm):
        cluster = make(algorithm)
        for node in range(5):
            cluster.write_sync(node, f"value-{node}")
        for node in range(5):
            result = cluster.snapshot_sync(node)
            assert result.values == tuple(f"value-{k}" for k in range(5))

    def test_snapshot_reflects_only_own_writer_order(self, algorithm):
        cluster = make(algorithm)
        cluster.write_sync(0, "x1")
        cluster.write_sync(1, "y1")
        cluster.write_sync(0, "x2")
        result = cluster.snapshot_sync(3)
        assert result.values[0] == "x2"
        assert result.values[1] == "y1"
        assert result.vector_clock[:2] == (2, 1)

    def test_history_linearizable_sequential(self, algorithm):
        cluster = make(algorithm)
        for i, node in enumerate([0, 3, 1, 4, 2]):
            cluster.write_sync(node, f"v{i}")
            cluster.snapshot_sync((node + 1) % 5)
        cluster.history.validate_well_formed()
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()


@pytest.mark.parametrize("algorithm", ALL)
class TestConcurrency:
    def test_concurrent_writers_all_visible(self, algorithm):
        cluster = make(algorithm, seed=13)

        async def workload():
            writes = [cluster.spawn(cluster.write(i, i * 11)) for i in range(5)]
            await cluster.kernel.gather(writes)
            return await cluster.snapshot(0)

        result = cluster.run_until(workload())
        assert result.values == tuple(i * 11 for i in range(5))
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()

    def test_concurrent_snapshots_comparable(self, algorithm):
        cluster = make(algorithm, seed=17)

        async def workload():
            cluster.spawn(cluster.write(0, "w"))
            snaps = [cluster.spawn(cluster.snapshot(i)) for i in range(1, 5)]
            return await cluster.kernel.gather(snaps)

        results = cluster.run_until(workload())
        vcs = sorted(r.vector_clock for r in results)
        for earlier, later in zip(vcs, vcs[1:]):
            assert all(a <= b for a, b in zip(earlier, later))

    def test_linearizable_under_loss_and_duplication(self, algorithm):
        cluster = make(
            algorithm,
            seed=23,
            channel=ChannelConfig(
                loss_probability=0.25, duplication_probability=0.15
            ),
        )

        async def workload():
            tasks = []
            for round_index in range(3):
                for node in range(5):
                    tasks.append(
                        cluster.spawn(
                            cluster.write(node, (round_index, node))
                        )
                    )
                tasks.append(cluster.spawn(cluster.snapshot(round_index)))
                await cluster.kernel.gather(tasks)
                tasks = []

        cluster.run_until(workload())
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()


@pytest.mark.parametrize("algorithm", ALL)
class TestCrashTolerance:
    def test_operations_complete_with_minority_crashed(self, algorithm):
        cluster = make(algorithm, seed=29)
        cluster.crash(3)
        cluster.crash(4)
        cluster.write_sync(0, "survives")
        result = cluster.snapshot_sync(1)
        assert result.values[0] == "survives"

    def test_resume_without_restart_rejoins(self, algorithm):
        cluster = make(algorithm, seed=31)
        cluster.write_sync(0, "before")
        cluster.crash(2)
        cluster.write_sync(0, "during")
        cluster.resume(2)
        cluster.run_for(30.0)
        result = cluster.snapshot_sync(2)
        assert result.values[0] == "during"

    def test_alive_nodes_tracking(self, algorithm):
        cluster = make(algorithm)
        assert cluster.alive_nodes() == [0, 1, 2, 3, 4]
        cluster.crash(1)
        assert cluster.alive_nodes() == [0, 2, 3, 4]
        cluster.resume(1)
        assert cluster.alive_nodes() == [0, 1, 2, 3, 4]


class TestClusterFacade:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            SimBackend("no-such-algorithm")

    def test_concurrent_same_node_ops_rejected(self):
        cluster = make("dgfr-nonblocking")

        async def misuse():
            first = cluster.spawn(cluster.write(0, "a"))
            await cluster.kernel.sleep(0.1)  # let the first write start
            with pytest.raises(ReproError):
                await cluster.write(0, "b")
            await first

        cluster.run_until(misuse())

    def test_repr(self):
        cluster = make("ss-always")
        assert "ss-always" in repr(cluster)
        assert "n=5" in repr(cluster)

    def test_settle_cycles(self):
        cluster = make("ss-nonblocking")
        cluster.run_until(cluster.settle_cycles(3))
        assert cluster.tracker.cycles_elapsed >= 3

    def test_quiescent_registers_converge(self):
        cluster = make("ss-nonblocking")
        cluster.write_sync(0, "x")
        cluster.run_until(cluster.settle_cycles(4))
        vcs = cluster.quiescent_registers()
        assert all(vc == vcs[0] for vc in vcs)
