"""Tests for the bounded-counter variant of Algorithm 3 (Section 5)."""

import pytest

from repro import ClusterConfig, SimBackend
from repro.analysis.linearizability import check_snapshot_history
from repro.errors import ResetInProgressError


def make(n=5, seed=0, max_int=12, delta=2, **kwargs):
    return SimBackend(
        "bounded-ss-always",
        ClusterConfig(n=n, seed=seed, max_int=max_int, delta=delta, **kwargs),
    )


async def churn(cluster, rounds, snapshot_every=0):
    """Writes from every node (retrying across resets), optional snapshots."""
    aborts = 0
    for round_index in range(rounds):
        for node in range(cluster.config.n):
            while True:
                try:
                    await cluster.write(node, (round_index, node))
                    break
                except ResetInProgressError:
                    aborts += 1
                    await cluster.tracker.wait_cycles(3)
        if snapshot_every and round_index % snapshot_every == 0:
            try:
                await cluster.snapshot(round_index % cluster.config.n)
            except ResetInProgressError:
                await cluster.tracker.wait_cycles(3)
    return aborts


class TestBoundedAlways:
    def test_normal_operation_below_maxint(self):
        cluster = make(max_int=1000)
        cluster.write_sync(0, "v")
        assert cluster.snapshot_sync(1).values[0] == "v"
        assert cluster.node(0).resets_completed == 0

    def test_overflow_triggers_reset_and_system_stays_usable(self):
        cluster = make(max_int=8, seed=1)
        cluster.run_until(churn(cluster, 12, snapshot_every=4), max_events=None)
        assert all(p.resets_completed >= 1 for p in cluster.processes)
        result = cluster.snapshot_sync(0)
        assert result.values == tuple((11, node) for node in range(5))

    def test_snapshot_task_state_cleared_by_reset(self):
        cluster = make(max_int=8, seed=2)
        cluster.run_until(churn(cluster, 12), max_events=None)
        cluster.run_until(cluster.settle_cycles(4), max_events=None)
        for process in cluster.processes:
            assert process.sns < 8
            for task in process.pnd_tsk:
                assert task.sns < 8

    def test_sns_overflow_also_triggers_reset(self):
        """Snapshot indices count toward MAXINT, not just write indices."""
        cluster = make(max_int=6, seed=3)

        async def snap_heavy():
            for _ in range(10):
                try:
                    await cluster.snapshot(2)  # same node: sns grows past 6
                except ResetInProgressError:
                    await cluster.tracker.wait_cycles(3)
            await cluster.tracker.wait_cycles(3)

        cluster.run_until(snap_heavy(), max_events=None)
        assert any(p.resets_completed >= 1 for p in cluster.processes)

    def test_operations_rejected_during_reset(self):
        cluster = make()
        cluster.node(0).resetting = True
        with pytest.raises(ResetInProgressError):
            cluster.snapshot_sync(0)
        assert cluster.history.records()[0].aborted

    def test_post_reset_history_linearizable(self):
        cluster = make(max_int=8, seed=4)
        cluster.run_until(churn(cluster, 10), max_events=None)
        cluster.run_until(cluster.settle_cycles(4), max_events=None)
        from repro.analysis.history import HistoryRecorder

        cluster.history = HistoryRecorder()
        for node in range(5):
            cluster.write_sync(node, f"post-{node}")
        cluster.snapshot_sync(2)
        report = check_snapshot_history(cluster.history.records(), 5)
        assert report.ok, report.summary()

    def test_epochs_converge(self):
        cluster = make(max_int=8, seed=5)
        cluster.run_until(churn(cluster, 12), max_events=None)
        cluster.run_until(cluster.settle_cycles(5), max_events=None)
        assert len({p.epoch for p in cluster.processes}) == 1
