"""Fault-injection demo: why self-stabilization matters.

Side-by-side narrative of the paper's core robustness claim.  A transient
fault arbitrarily corrupts every node's state and every in-flight
message.  The original Delporte-Gallet et al. algorithm never recovers —
a corrupted-high register entry shadows a writer forever.  The paper's
self-stabilizing variant heals within a few asynchronous cycles and
subsequent operations are linearizable again.

Run:  python examples/fault_recovery_demo.py
"""

from repro import ClusterConfig, SimBackend
from repro.analysis.invariants import definition1_consistent
from repro.core.register import TimestampedValue
from repro.fault import TransientFaultInjector


def demo(algorithm: str) -> None:
    print(f"=== {algorithm} ===")
    cluster = SimBackend(algorithm, ClusterConfig(n=5, seed=3))

    cluster.write_sync(0, "genuine-v1")
    print("before fault  :", cluster.snapshot_sync(1).values[0])

    # Transient fault: every replica's view of node 0 jumps to a bogus
    # future timestamp (plus general corruption of indices and channels).
    injector = TransientFaultInjector(cluster, seed=99)
    for node in range(1, 5):
        cluster.node(node).reg[0] = TimestampedValue(10_000, "CORRUPTED")
    injector.corrupt_write_indices(node_ids=[0], value=1)
    injector.scramble_channels()

    # Let the system run for a few asynchronous cycles.
    cluster.tracker.reset()
    cluster.run_until(cluster.tracker.wait_cycles(6), max_events=None)
    consistent = definition1_consistent(cluster).ok
    print("state consistent after 6 cycles:", consistent)

    # Node 0 writes again. Does the system see it?
    cluster.write_sync(0, "genuine-v2")
    observed = cluster.snapshot_sync(1).values[0]
    print("after new write:", observed)
    verdict = "RECOVERED" if observed == "genuine-v2" else "STUCK FOREVER"
    print(f"verdict        : {verdict}\n")


def main() -> None:
    demo("dgfr-nonblocking")   # the baseline: never recovers
    demo("ss-nonblocking")     # paper's Algorithm 1: heals in O(1) cycles


if __name__ == "__main__":
    main()
