"""Regenerate the paper's Figures 1–3 as ASCII space-time diagrams.

The paper's only figures are message-flow drawings of the algorithms'
executions.  This example replays the exact scenarios (a write, then a
snapshot, then a second write — and, for Figure 3 lower, concurrent
snapshot invocations by all nodes) with message tracing enabled and
renders each as a space-time diagram: one lane per node, time flowing
downward, one arrow per network message.

Compare fig1-upper (no gossip) with fig1-lower (GOSSIP rows that never
interfere with operations), and fig2 (every node runs query rounds) with
fig3-upper (only the initiator queries; one SAVE round delivers the
result).

Run:  python examples/paper_figures.py
      python -m repro figures fig2        # single figure via the CLI
"""

from repro.harness.figures import FIGURES, render_figure


def main() -> None:
    for name in FIGURES:
        print(render_figure(name))
        print("\n" + "=" * 72 + "\n")


if __name__ == "__main__":
    main()
