"""Building blocks on top of the snapshot object: counter + barrier.

The paper's opening motivation: snapshot objects make algorithms built
on shared registers easy to design *and analyze*.  This example composes
two classic constructions from ``repro.apps``:

* a **linearizable distributed counter** — increments are writes to the
  caller's own register; reads are snapshots summed over the entries, so
  a read never misses a completed increment and reads are totally
  ordered;
* a **phase barrier** — workers process items in supersteps; the barrier
  opens only when an atomic cut shows every worker done with the phase.

Each application gets its *own* snapshot object (each node owns one
register per object); the two clusters share a single simulated timeline
via a shared kernel — the same pattern ``repro.reconfig`` uses.

Run:  python examples/snapshot_applications.py
"""

from repro import ClusterConfig, SimBackend
from repro.apps import DistributedCounter, PhaseBarrier

N = 4
PHASES = 3
ITEMS_PER_PHASE = 5


def main() -> None:
    counter_cluster = SimBackend(
        "ss-always", ClusterConfig(n=N, delta=2, seed=21)
    )
    barrier_cluster = SimBackend(
        "ss-always",
        ClusterConfig(n=N, delta=2, seed=22),
        kernel=counter_cluster.kernel,  # one shared timeline
    )
    counter = DistributedCounter(counter_cluster)
    barrier = PhaseBarrier(barrier_cluster, participants=list(range(N)))
    kernel = counter_cluster.kernel

    async def worker(node: int) -> None:
        for phase in range(1, PHASES + 1):
            for _ in range(ITEMS_PER_PHASE):
                await counter.increment(node)
            await barrier.enter(node, phase)
            await barrier.await_phase(node, phase)

    async def run() -> None:
        tasks = [kernel.create_task(worker(node)) for node in range(N)]
        await kernel.gather(tasks)

    kernel.run_until_complete(run())

    reading = counter.read_sync(0)
    expected = N * PHASES * ITEMS_PER_PHASE
    print(f"items processed : {reading.total} (expected {expected})")
    print(f"per worker      : {reading.per_node}")
    print(f"phases completed: all workers at phase {PHASES}")
    assert reading.total == expected


if __name__ == "__main__":
    main()
