"""Quickstart: a 5-node self-stabilizing snapshot object in 30 lines.

Builds a simulated cluster running the paper's Algorithm 3 (the
self-stabilizing always-terminating snapshot object with δ=2), performs
writes from several nodes, and takes an atomic snapshot.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, SnapshotCluster


def main() -> None:
    config = ClusterConfig(n=5, delta=2, seed=42)
    cluster = SnapshotCluster("ss-always", config)

    # Each node owns one single-writer register; write from three of them.
    cluster.write_sync(0, b"alpha")
    cluster.write_sync(1, b"beta")
    cluster.write_sync(2, b"gamma")
    cluster.write_sync(0, b"alpha-v2")  # overwrite node 0's register

    # Any node can take an atomic snapshot of all registers.
    result = cluster.snapshot_sync(4)
    print("snapshot values :", result.values)
    print("vector clock    :", result.vector_clock)

    # The recorded history is linearizable — verify it mechanically.
    from repro.analysis.linearizability import check_snapshot_history

    report = check_snapshot_history(cluster.history.records(), config.n)
    print("linearizable    :", report.ok)

    stats = cluster.metrics.snapshot()
    print("network messages:", stats.total_messages, "by kind:",
          dict(sorted(stats.messages_by_kind.items())))


if __name__ == "__main__":
    main()
