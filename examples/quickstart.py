"""Quickstart: a keyed self-stabilizing snapshot store in 30 lines.

Builds a two-shard simulated fabric (each shard a 4-node cluster running
the paper's self-stabilizing non-blocking algorithm) behind the
``SnapshotClient`` facade, writes a few keys, and takes one composed
atomic snapshot of the whole keyspace.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, SnapshotClient


def main() -> None:
    config = ClusterConfig(n=4, seed=42)
    client = SnapshotClient.local(shards=2, config=config)

    # Keys route to shards by consistent hash; versions are per key.
    client.write_sync("alpha", b"a1")
    client.write_sync("beta", b"b1")
    client.write_sync("gamma", b"g1")
    client.write_sync("alpha", b"a2")  # overwrite → version 2

    # One linearizable cut across every shard.
    cut = client.snapshot_sync()
    print("snapshot        :", dict(sorted(cut.items().items())))
    print("shards / epoch  :", client.shards, "/", client.epoch)
    print("fenced          :", cut.fenced, "rounds:", cut.rounds)

    # The per-shard histories and composed cuts are checked mechanically.
    print("linearizable    :", client.check() == [])

    # Grow the deployment online: one more shard, keys migrate live.
    report = client.split_sync()
    print("split           :", f"epoch {report.old_epoch}->{report.new_epoch},",
          report.moved_keys, "keys moved")
    print("after split     :", dict(sorted(client.snapshot_sync().items().items())))


if __name__ == "__main__":
    main()
