"""Real datagrams: the snapshot object over localhost UDP.

The deepest deployment mode in the library: every node binds its own
UDP socket on 127.0.0.1, messages travel as real datagrams in the
library's binary codec, and the OS supplies genuine asynchrony.  The
quorum service's retransmission absorbs any datagram loss.

Run:  python examples/udp_cluster.py
"""

import asyncio
import time

from repro import ClusterConfig
from repro.analysis.linearizability import check_snapshot_history
from repro.backend import create_backend

N = 5


async def main() -> None:
    cluster = await create_backend(
        "udp", "ss-always", ClusterConfig(n=N, delta=2, seed=9),
        time_scale=0.005,
    )
    wall_start = time.perf_counter()
    try:
        # Concurrent writers, racing over real sockets.
        await asyncio.gather(
            *(cluster.write(node, f"udp-{node}".encode()) for node in range(N))
        )
        view = await cluster.snapshot(0)
        print("snapshot over UDP  :", view.values)

        # A crash is survived exactly as in simulation.
        cluster.crash(4)
        await cluster.write(0, b"while-4-down")
        view = await cluster.snapshot(1)
        print("with node 4 crashed:", view.values[0])
        cluster.resume(4)

        report = check_snapshot_history(cluster.history.records(), N)
        stats = cluster.metrics.snapshot()
        print("history linearizable:", report.ok)
        print(
            f"{stats.total_messages} datagrams ({stats.total_bytes} bytes) "
            f"in {time.perf_counter() - wall_start:.2f}s wall time"
        )
    finally:
        await cluster.close()


if __name__ == "__main__":
    asyncio.run(main())
