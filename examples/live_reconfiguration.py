"""Live reconfiguration: grow the cluster without losing a write.

The paper's discussion points to reconfigurable extensions of its
algorithms.  This example migrates a running 3-node snapshot object onto
a 6-node configuration (and switches from Algorithm 1 to Algorithm 3 in
the same handoff): the transfer point is an atomic snapshot, so every
completed write survives and per-writer timestamp sequences continue.

Run:  python examples/live_reconfiguration.py
"""

from repro import ClusterConfig, SimBackend
from repro.reconfig import reconfigure


def main() -> None:
    old = SimBackend("ss-nonblocking", ClusterConfig(n=3, seed=11))
    old.write_sync(0, "inventory=42")
    old.write_sync(1, "orders=17")
    old.write_sync(0, "inventory=41")
    print("old cluster (n=3):", old.snapshot_sync(2).values)

    async def handoff():
        return await reconfigure(
            old,
            ClusterConfig(n=6, seed=12, delta=2),
            algorithm="ss-always",
        )

    report = old.run_until(handoff(), max_events=None)
    new = report.new_cluster
    print(
        f"reconfigured to n=6 (ss-always); carried "
        f"{report.carried_entries} entries, dropped {report.dropped}"
    )

    # The new nodes participate immediately.
    new.kernel.run_until_complete(new.write(5, "replicas=6"))
    view = new.kernel.run_until_complete(new.snapshot(4))
    print("new cluster (n=6):", view.values)

    # Writer 0 continues its timestamp sequence — no index reuse.
    ts = new.kernel.run_until_complete(new.write(0, "inventory=40"))
    print(f"node 0's next write used timestamp {ts} (continued from 2)")


if __name__ == "__main__":
    main()
