"""Distributed monitoring: consistent global states without stopping work.

The motivating use-case from the paper's introduction: snapshot objects
let an algorithm construct *consistent global states* of shared storage
"in a way that does not disrupt the system computation".

Here, ten nodes continuously publish their local load metric through the
snapshot object's write() operation while a monitor node periodically
takes atomic snapshots.  Every observed global state is internally
consistent (it corresponds to an instant of the linearized execution),
which a naive read-one-register-at-a-time poller cannot guarantee.

The demo detects a *global* condition — total load crossing a threshold —
which is only meaningful on a consistent cut.

Run:  python examples/distributed_monitoring.py
"""

import random

from repro import ClusterConfig, SimBackend


N = 10
ROUNDS = 6
THRESHOLD = 60


def main() -> None:
    config = ClusterConfig(n=N, delta=3, seed=7)
    cluster = SimBackend("ss-always", config)
    rng = random.Random(7)

    async def sensor(node: int) -> None:
        """Publish a fluctuating load metric from this node."""
        load = rng.randrange(0, 10)
        for _ in range(ROUNDS):
            load = max(0, min(20, load + rng.randrange(-4, 7)))
            await cluster.write(node, load)
            await cluster.kernel.sleep(rng.uniform(2.0, 6.0))

    async def monitor() -> None:
        """Take periodic atomic snapshots and evaluate a global predicate."""
        for tick in range(ROUNDS):
            await cluster.kernel.sleep(5.0)
            view = await cluster.snapshot(0)
            loads = [value if value is not None else 0 for value in view.values]
            total = sum(loads)
            status = "ALERT" if total > THRESHOLD else "ok"
            print(
                f"t={cluster.kernel.now:7.1f}  total load={total:3d}  "
                f"[{status:5s}]  per-node={loads}"
            )

    async def run() -> None:
        tasks = [cluster.spawn(sensor(node)) for node in range(1, N)]
        tasks.append(cluster.spawn(monitor()))
        await cluster.kernel.gather(tasks)

    cluster.run_until(run(), max_events=None)

    # Atomicity check: the monitor's observations must be totally ordered.
    from repro.analysis.linearizability import check_snapshot_history

    report = check_snapshot_history(cluster.history.records(), N)
    print("\nall observed global states consistent:", report.ok)


if __name__ == "__main__":
    main()
