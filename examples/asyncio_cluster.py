"""Live deployment: the same algorithms on a real asyncio event loop.

Everything else in ``examples/`` runs on the deterministic simulation
kernel.  This example runs the identical algorithm objects over asyncio
wall-clock time (one simulated unit = 5 ms here): concurrent writers,
periodic snapshots, a node crash and an undetectable restart — all in a
couple of wall-clock seconds.

Run:  python examples/asyncio_cluster.py
"""

import asyncio
import time

from repro import ClusterConfig
from repro.analysis.linearizability import check_snapshot_history
from repro.backend import create_backend

N = 5


async def main() -> None:
    cluster = await create_backend(
        "asyncio", "ss-always", ClusterConfig(n=N, delta=2, seed=1),
        time_scale=0.005,
    )
    wall_start = time.perf_counter()
    try:
        # Concurrent writers on four nodes.
        await asyncio.gather(
            *(cluster.write(node, f"boot-{node}") for node in range(4))
        )
        view = await cluster.snapshot(4)
        print("initial snapshot:", view.values)

        # Crash one node mid-flight; the majority keeps the object live.
        cluster.crash(3)
        await cluster.write(0, "written-while-3-down")
        view = await cluster.snapshot(1)
        print("with node 3 down:", view.values[0])

        # Undetectable restart: node 3 resumes and catches up via gossip.
        cluster.resume(3)
        await asyncio.sleep(0.3)
        view = await cluster.snapshot(3)
        print("node 3 after resume sees:", view.values[0])

        report = check_snapshot_history(cluster.history.records(), N)
        print("history linearizable:", report.ok)
        wall = time.perf_counter() - wall_start
        stats = cluster.metrics.snapshot()
        print(
            f"wall time {wall:.2f}s, {stats.total_messages} live messages "
            f"({stats.total_bytes} bytes)"
        )
    finally:
        await cluster.close()


if __name__ == "__main__":
    asyncio.run(main())
