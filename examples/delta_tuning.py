"""Tuning δ: the latency / communication / throughput trade-off.

Algorithm 3's input parameter δ decides how many concurrent writes a
snapshot tolerates before the cluster blocks writers to help it finish:

* δ = 0   — always help: snapshots finish fastest, writers suffer,
            O(n²) messages per snapshot (Algorithm 2 behaviour);
* δ large — rarely help: writers run at full speed, snapshots take
            longer (up to forever at δ=∞ — Algorithm 1 behaviour),
            O(n) messages per snapshot.

This example sweeps δ under a saturating write workload and prints the
measured trade-off table (the same data as benchmark E10).

Run:  python examples/delta_tuning.py
"""

from repro import UNBOUNDED_DELTA
from repro.harness.latency import e10_delta_tradeoff
from repro.harness.report import format_bar_chart, print_table


def main() -> None:
    rows = e10_delta_tradeoff(deltas=(0, 1, 2, 4, 8, 16, 64, UNBOUNDED_DELTA))
    print_table(
        rows,
        title="delta trade-off: snapshot cost/latency vs write throughput",
    )
    print(format_bar_chart(rows, "delta", "snap_latency",
                           title="snapshot latency vs delta"))
    print()
    print(format_bar_chart(rows, "delta", "write_rate",
                           title="write throughput vs delta"))
    print()
    print(
        "reading guide: pick the smallest delta whose write_rate meets\n"
        "your SLO; snap_latency(inf) = snapshot starvation under load."
    )


if __name__ == "__main__":
    main()
