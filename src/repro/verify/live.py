"""Live-backend verification: linearizability checking over real runtimes.

Schedule *exploration* (DFS / seeded random walks over kernel tie-break
decisions) is a ``schedule_pinning`` capability of the simulator; a live
event loop schedules itself.  What a live backend *can* verify is the
paper's correctness claim on executions the real substrate actually
produces: drive a seeded concurrent write/snapshot workload against a
live cluster and check the recorded operation history for
linearizability — the same oracle the sim explorer applies per schedule,
now applied to wall-clock interleavings over modeled (``asyncio``) or
real (``udp``) channels.

:func:`run_live_verify_campaigns` honours the unified campaign protocol
(``seeds``/``algorithm``/``budget`` in, per-seed reports with
``ok``/``failures``/``summary()`` out), so ``python -m repro verify
--backend udp`` reads exactly like the sim run.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from repro.analysis.linearizability import check_snapshot_history
from repro.config import scenario_config

__all__ = ["LiveVerifyReport", "verify_live_seed", "run_live_verify_campaigns"]

#: Wall-clock guard (seconds) for one operation batch — far above any
#: healthy completion time, so tripping it is itself a liveness failure.
_BATCH_WALL_TIMEOUT = 30.0


@dataclass(slots=True)
class LiveVerifyReport:
    """Outcome of one seed's live verification workload."""

    seed: int
    backend: str
    algorithm: str
    operations: int = 0
    writes: int = 0
    snapshots: int = 0
    checks: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every check passed."""
        return not self.failures

    def summary(self) -> str:
        """One-line outcome."""
        verdict = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"{self.operations} live ops ({self.writes}w/{self.snapshots}s) "
            f"on {self.backend}, {self.checks} checks: {verdict}"
        )


def verify_live_seed(
    seed: int,
    backend: str = "asyncio",
    algorithm: str = "ss-nonblocking",
    budget: int = 60,
    n: int = 4,
    time_scale: float = 0.002,
) -> LiveVerifyReport:
    """Run one seeded concurrent workload on a live backend and check it.

    Each round issues 2–4 concurrent operations on distinct nodes (a mix
    of writes with unique values and snapshots) until ``budget``
    operations have been invoked, then checks the full history for
    linearizability.
    """
    from repro.backend import create_backend

    report = LiveVerifyReport(seed=seed, backend=backend, algorithm=algorithm)
    rng = random.Random(seed)

    async def main() -> None:
        cluster = await create_backend(
            backend,
            algorithm,
            scenario_config(n=n, seed=seed, delta=2),
            time_scale=time_scale,
        )
        try:
            value = 0
            issued = 0
            while issued < budget:
                batch = min(budget - issued, rng.randint(2, min(4, n)))
                operations = []
                for node in rng.sample(range(n), batch):
                    if rng.random() < 0.6:
                        value += 1
                        operations.append(
                            cluster.write(node, f"live-{seed}-{value}")
                        )
                        report.writes += 1
                    else:
                        operations.append(cluster.snapshot(node))
                        report.snapshots += 1
                try:
                    await asyncio.wait_for(
                        asyncio.gather(*operations),
                        timeout=_BATCH_WALL_TIMEOUT,
                    )
                except TimeoutError:
                    report.failures.append(
                        f"liveness: operation batch at {issued} did not "
                        f"complete within {_BATCH_WALL_TIMEOUT}s wall-clock"
                    )
                    break
                issued += batch
            report.operations = issued
            report.checks += 1
            check = check_snapshot_history(
                cluster.history.records(), cluster.config.n
            )
            if not check.ok:
                report.failures.append(f"linearizability: {check.summary()}")
        finally:
            await cluster.close()

    asyncio.run(main())
    return report


def run_live_verify_campaigns(
    seeds: list[int],
    backend: str,
    jobs: int = 1,
    algorithm: str = "ss-always",
    budget: int = 60,
    time_scale: float = 0.002,
) -> list[LiveVerifyReport]:
    """One live verification workload per seed (serial: live runs own
    the process's event loop, and worker fan-out is a sim capability)."""
    from repro.backend import backend_capabilities

    capabilities = backend_capabilities(backend)  # validates the name
    if jobs > 1:
        capabilities.require("process_fanout", f"--jobs {jobs}")
    return [
        verify_live_seed(
            seed,
            backend=backend,
            algorithm=algorithm,
            budget=budget,
            time_scale=time_scale,
        )
        for seed in seeds
    ]
