"""Stateless model checking: exhaustive same-instant schedule exploration.

Randomized schedules (``TieBreak.RANDOM``) sample the space of
asynchronous interleavings; this module *enumerates* it, CHESS-style.
The kernel's ``SCRIPTED`` tie-break consults an explicit decision list
at every point where several events share a timestamp and logs the
branching factor it saw.  The explorer repeatedly re-runs a scenario
from scratch — runs are cheap and perfectly deterministic — walking the
decision tree depth-first:

1. run with the current decision prefix (0-completed past its end);
2. read the decision log: every choice point at or beyond the prefix is
   a branch whose untaken alternatives become new prefixes;
3. repeat until the tree is exhausted or the budget runs out.

Each complete run is handed to a property checker (linearizability of
the recorded history, by default).  A violation is returned with the
exact decision script that produced it — a fully reproducible
counterexample schedule.

Use fixed channel delays (``min_delay == max_delay``) in scenarios:
coincident timestamps are what create choice points.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.linearizability import check_snapshot_history
from repro.config import scenario_config
from repro.backend.sim import SimBackend
from repro.sim.kernel import TieBreak

__all__ = [
    "ExplorationResult",
    "Violation",
    "explore",
    "explore_consensus_decision",
    "explore_snapshot_scenario",
    "explore_standard_scenario",
    "run_verify_campaigns",
    "STANDARD_SCENARIO",
]

#: The default concurrent write/write/snapshot scenario model-checked by
#: ``python -m repro verify``: staggered invocations keep same-instant
#: delivery groups small while still racing all three operations.
STANDARD_SCENARIO = (
    ("write", 0, "v1", 0.0),
    ("write", 1, "v1", 0.1),
    ("snapshot", 2, None, 0.2),
)


@dataclass(frozen=True, slots=True)
class Violation:
    """A schedule under which the checked property failed."""

    script: tuple[int, ...]
    details: str


@dataclass(slots=True)
class ExplorationResult:
    """Outcome of a schedule exploration."""

    runs: int = 0
    choice_points_seen: int = 0
    violations: list[Violation] = field(default_factory=list)
    exhausted: bool = False

    @property
    def ok(self) -> bool:
        """Whether every explored schedule satisfied the property."""
        return not self.violations

    @property
    def failures(self) -> list[str]:
        """Violations as strings — the common campaign-report protocol."""
        return [
            f"schedule {list(v.script)}: {v.details}" for v in self.violations
        ]

    def summary(self) -> str:
        """Human-readable outcome."""
        state = "exhausted" if self.exhausted else "budget-limited"
        verdict = (
            "all schedules OK"
            if self.ok
            else f"{len(self.violations)} VIOLATIONS"
        )
        return (
            f"{self.runs} runs ({state}), "
            f"{self.choice_points_seen} choice points: {verdict}"
        )


def explore(
    run_one: Callable[[list[int]], tuple[list[tuple[int, int]], bool, str]],
    max_runs: int = 500,
    max_depth: int = 30,
    strategy: str = "dfs",
    seed: int = 0,
) -> ExplorationResult:
    """Search the decision tree of a scripted scenario.

    Parameters
    ----------
    run_one:
        Executes the scenario under a decision script and returns
        ``(decision_log, ok, details)``.
    max_runs:
        Budget on complete scenario executions.
    max_depth:
        Choice points beyond this depth are not branched on (their
        default-0 choice is still taken), bounding the tree.
    strategy:
        ``"dfs"`` — systematic depth-first enumeration; exhaustive on
        small trees (``result.exhausted`` tells you).
        ``"random-walk"`` — each run draws every choice uniformly at
        random (seeded).  Far better at *finding* bugs in large trees,
        where a systematic search starves the interesting branch; the
        returned violation script replays the counterexample exactly.
    """
    result = ExplorationResult()
    if strategy == "random-walk":
        rng = random.Random(seed)
        seen: set[tuple[int, ...]] = set()
        for _ in range(max_runs):
            script = [rng.randrange(16) for _ in range(max_depth)]
            log, ok, details = run_one(script)
            result.runs += 1
            result.choice_points_seen += len(log)
            taken = tuple(choice for choice, _n in log)
            if not ok and taken not in seen:
                seen.add(taken)
                result.violations.append(
                    Violation(script=taken, details=details)
                )
        return result
    if strategy != "dfs":
        raise ValueError(f"unknown strategy {strategy!r}")
    frontier: list[list[int]] = [[]]
    while frontier and result.runs < max_runs:
        script = frontier.pop()
        log, ok, details = run_one(script)
        result.runs += 1
        result.choice_points_seen += len(log)
        if not ok:
            result.violations.append(
                Violation(script=tuple(c for c, _n in log), details=details)
            )
        for depth in range(len(script), min(len(log), max_depth)):
            taken_prefix = [choice for choice, _n in log[:depth]]
            _taken, n_candidates = log[depth]
            for alternative in range(1, n_candidates):
                frontier.append(taken_prefix + [alternative])
    result.exhausted = not frontier
    return result


def explore_snapshot_scenario(
    algorithm: str,
    operations: list[tuple[str, int, object]],
    n: int = 3,
    delta: float = 0,
    max_runs: int = 300,
    max_depth: int = 25,
    check_values: bool = True,
    strategy: str = "dfs",
    start_loops: bool = True,
    seed: int = 0,
) -> ExplorationResult:
    """Model-check a concurrent operation scenario for linearizability.

    Parameters
    ----------
    algorithm:
        Registry name of the algorithm under test.
    operations:
        Concurrent operations, each ``("write", node, value)`` or
        ``("snapshot", node, None)``, optionally with a fourth element:
        the invocation time.  Staggering invocations (e.g. 0.0, 0.1, …)
        keeps same-instant delivery groups small, which keeps the
        branching factor tractable — all interleavings *within* a group
        are still enumerated.
    n, delta:
        Cluster shape.
    seed:
        Seed for the ``"random-walk"`` strategy's choice draws (``"dfs"``
        is deterministic and ignores it).

    Every explored schedule's history must pass the specialized
    linearizability checker; the result carries any counterexample
    script.
    """

    def run_one(script: list[int]):
        # Fixed delays on purpose: coincident timestamps are what create
        # the choice points the explorer branches on.
        config = scenario_config(n=n, seed=0, delta=delta, fixed_delay=1.0)
        # Disabling the do-forever loops (for algorithms that work
        # without them, i.e. the non-self-stabilizing ones) removes five
        # permanently re-arming timers from every tie group and shrinks
        # the decision tree dramatically.
        cluster = SimBackend(
            algorithm, config, tie_break=TieBreak.SCRIPTED, start=start_loops
        )
        # The checker only reads the operation history; skipping message
        # accounting (and its per-send wire_size walk) buys schedule
        # throughput without touching the explored behaviour.
        cluster.metrics.disable()
        cluster.kernel.decision_script = list(script)

        async def delayed(start_at, operation):
            if start_at:
                await cluster.kernel.sleep(start_at)
            return await operation

        async def scenario():
            tasks = []
            for spec in operations:
                kind, node, value = spec[0], spec[1], spec[2]
                start_at = spec[3] if len(spec) > 3 else 0.0
                if kind == "write":
                    operation = cluster.write(node, value)
                else:
                    operation = cluster.snapshot(node)
                tasks.append(cluster.spawn(delayed(start_at, operation)))
            await cluster.kernel.gather(tasks)

        cluster.run_until(scenario(), max_events=500_000)
        report = check_snapshot_history(
            cluster.history.records(), n, check_values=check_values
        )
        return cluster.kernel.decision_log, report.ok, report.summary()

    return explore(
        run_one,
        max_runs=max_runs,
        max_depth=max_depth,
        strategy=strategy,
        seed=seed,
    )


def explore_consensus_decision(
    n: int = 3,
    proposals: tuple | None = None,
    max_runs: int = 200,
    max_depth: int = 20,
    strategy: str = "random-walk",
    seed: int = 0,
) -> ExplorationResult:
    """Model-check the consensus layer's agreement and validity.

    Every node concurrently proposes its own value for one instance of
    :class:`repro.consensus.ConsensusEndpoint`; the explored property is
    the consensus contract itself — all nodes decide, they decide the
    *same* value, and that value is one of the proposals.  Same
    explorer machinery as the snapshot scenarios: each same-instant
    delivery group is a choice point, so the binary-consensus rounds,
    URB deliveries, and adoption races interleave differently on every
    branch of the decision tree.
    """
    from repro.consensus import ConsensusEndpoint

    values = proposals if proposals is not None else tuple(
        f"v{node}" for node in range(n)
    )

    def run_one(script: list[int]):
        config = scenario_config(n=n, seed=0, fixed_delay=1.0)
        cluster = SimBackend(
            "ss-nonblocking", config, tie_break=TieBreak.SCRIPTED
        )
        cluster.metrics.disable()
        cluster.kernel.decision_script = list(script)
        endpoints = [
            ConsensusEndpoint.ensure(process)
            for process in cluster.processes
        ]

        async def scenario():
            tasks = [
                cluster.spawn(
                    endpoints[node].propose(
                        ("verify", 0), values[node % len(values)]
                    )
                )
                for node in range(n)
            ]
            return await cluster.kernel.gather(tasks)

        decisions = cluster.run_until(scenario(), max_events=500_000)
        agreed = len({repr(d) for d in decisions}) == 1
        valid = decisions and decisions[0] in values
        ok = bool(agreed and valid)
        details = (
            ""
            if ok
            else f"agreement/validity broken: decided {decisions!r} "
            f"from proposals {values!r}"
        )
        return cluster.kernel.decision_log, ok, details

    return explore(
        run_one,
        max_runs=max_runs,
        max_depth=max_depth,
        strategy=strategy,
        seed=seed,
    )


def explore_standard_scenario(
    algorithm: str, seed: int = 0, budget: int = 200
) -> ExplorationResult:
    """One seeded random-walk exploration of :data:`STANDARD_SCENARIO`.

    The parallel runner's ``"verify"`` cell body: each seed walks a
    different sample of the schedule tree, so a campaign over many seeds
    covers far more interleavings than one walk with a bigger budget.
    """
    return explore_snapshot_scenario(
        algorithm,
        list(STANDARD_SCENARIO),
        n=3,
        delta=0,
        max_runs=budget,
        max_depth=20,
        strategy="random-walk",
        seed=seed,
    )


def run_verify_campaigns(
    seeds: list[int],
    jobs: int = 1,
    algorithm: str = "ss-always",
    budget: int = 200,
    backend: str = "sim",
):
    """Run one verification campaign per seed, optionally parallel.

    The unified campaign entry point (same ``(seeds, jobs, algorithm,
    budget)`` shape as the chaos and fuzz campaigns); results come back
    in seed order regardless of worker completion order.

    On the ``sim`` backend each seed is a random-walk exploration of
    :data:`STANDARD_SCENARIO`'s schedule tree.  On a live backend
    (``asyncio``/``udp``) schedule exploration does not apply — the
    substrate schedules itself — so each seed drives a concurrent
    workload against a live cluster and checks the produced history for
    linearizability (see :mod:`repro.verify.live`); the reports follow
    the same ``ok``/``failures``/``summary()`` protocol.
    """
    if backend != "sim":
        from repro.verify.live import run_live_verify_campaigns

        return run_live_verify_campaigns(
            seeds, backend, jobs=jobs, algorithm=algorithm, budget=budget
        )
    from repro.harness.parallel import run_cells, verify_cells

    return run_cells(
        verify_cells(seeds, algorithm=algorithm, budget=budget), jobs=jobs
    )
