"""Stateless model checking of the snapshot algorithms."""

from repro.verify.explorer import (
    ExplorationResult,
    Violation,
    explore,
    explore_snapshot_scenario,
)

__all__ = [
    "ExplorationResult",
    "Violation",
    "explore",
    "explore_snapshot_scenario",
]
