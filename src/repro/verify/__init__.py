"""Stateless model checking of the snapshot algorithms."""

from repro.verify.explorer import (
    STANDARD_SCENARIO,
    ExplorationResult,
    Violation,
    explore,
    explore_consensus_decision,
    explore_snapshot_scenario,
    explore_standard_scenario,
    run_verify_campaigns,
)

__all__ = [
    "ExplorationResult",
    "Violation",
    "explore",
    "explore_consensus_decision",
    "explore_snapshot_scenario",
    "explore_standard_scenario",
    "run_verify_campaigns",
    "STANDARD_SCENARIO",
]
