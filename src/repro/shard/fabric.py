"""The sharded snapshot fabric: K independent clusters, one object.

A :class:`ShardedFabric` runs ``K`` full snapshot-object deployments —
each a :class:`~repro.backend.base.ClusterBackend` on any substrate —
behind the consistent-hash :class:`~repro.shard.ring.ShardMap`.  Client
keys route to one register *slot* ``(shard, node)``; the fabric is the
slot's single sequential writer, exactly the paper's SWMR model with the
fabric playing the clients' role, so every per-shard guarantee (Definition
1 atomicity, self-stabilization, crash tolerance) applies per key
unchanged.

Three mechanisms make the composition more than K disjoint objects:

* **per-slot FIFO chains** — operations on a slot dispatch strictly in
  submission order (the read-modify-write of the slot's key→value map
  must serialize), while slots — and therefore shards — run genuinely
  concurrently.  This is the scaling axis E19 measures.
* **composed snapshots** — a globally-consistent cut across all shards.
  Per-shard snapshots are atomic and their vector clocks monotone, so a
  *double collect* (two rounds of parallel per-shard snapshots returning
  identical vectors) proves every shard's state was unchanged between
  the two rounds' linearization points, i.e. the composed vector is the
  true global state at any instant in between — the same argument as the
  stacked double-collect scan, lifted one level.  Under write pressure
  the optimistic rounds may never agree, so after ``max_rounds`` the
  fabric *fences*: it briefly closes the admission gate, drains in-flight
  operations, and takes one trivially-stable collect (the
  always-terminating flavour of the same trade-off the paper's
  Algorithm 2 makes).
* **epoch-stamped reconfiguration** — a shard split installs a successor
  :class:`ShardMap` (epoch + 1, decided through the
  :class:`~repro.shard.epoch.EpochDecider` seam) only at a drained
  quiescent point; queued operations re-check the installed map when
  they execute and *hop* to a key's new home if it migrated.  No
  operation is lost (the gate only pauses, never drops) and none is
  duplicated (an operation executes exactly once, at its final slot).
  State moves by taking the drained point as the transfer point and
  re-publishing moved entries through ordinary paper writes — the same
  snapshot-as-linearization-point handoff as
  :func:`repro.reconfig.migration.reconfigure`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace
from typing import Any, Awaitable, Callable

from repro.backend.base import ClusterBackend, backend_class
from repro.config import ClusterConfig
from repro.errors import ConfigurationError, ReproError
from repro.shard.epoch import (
    ConsensusEpochDecider,
    EpochDecider,
    LocalEpochDecider,
)
from repro.shard.ring import DEFAULT_VNODES, ShardMap

__all__ = [
    "ComposedSnapshot",
    "KeyView",
    "ShardedFabric",
    "SplitReport",
    "WriteRecord",
    "build_sim_fabric",
    "create_fabric",
    "run_on_fabric",
]


@dataclass(frozen=True, slots=True)
class WriteRecord:
    """One fabric-level write, as the per-key checker sees it."""

    key: Any
    seq: int
    slot: tuple[int, int]
    epoch: int
    invoked: float
    responded: float
    ts: int


@dataclass(frozen=True, slots=True)
class KeyView:
    """A shard-local read: one key projected out of an atomic scan."""

    key: Any
    seq: int
    value: Any
    found: bool
    shard: int
    epoch: int


@dataclass(frozen=True, slots=True)
class ComposedSnapshot:
    """A globally-consistent cut across every shard.

    ``shard_vectors`` maps shard id → that shard's snapshot vector
    clock; ``shard_slots`` maps shard id → the per-node slot maps
    (``{key: (seq, value)}`` or ``None`` for never-written registers).
    ``fenced`` records whether the cut came from the optimistic
    double-collect (``False``) or the drained fallback (``True``) —
    both are linearizable; they differ only in how they terminated.
    """

    epoch: int
    invoked: float
    responded: float
    shard_vectors: dict[int, tuple[int, ...]]
    shard_slots: dict[int, tuple[Any, ...]]
    rounds: int
    fenced: bool

    def vector(self) -> tuple[tuple[int, tuple[int, ...]], ...]:
        """The composed vector clock: ``((shard_id, vc), …)`` sorted."""
        return tuple(sorted(self.shard_vectors.items()))

    def items(self) -> dict[Any, tuple[int, Any]]:
        """Merged ``{key: (seq, value)}`` across every slot of the cut."""
        merged: dict[Any, tuple[int, Any]] = {}
        for shard_id in sorted(self.shard_slots):
            for slot_map in self.shard_slots[shard_id]:
                if not slot_map:
                    continue
                for key, entry in slot_map.items():
                    current = merged.get(key)
                    if current is None or entry[0] > current[0]:
                        merged[key] = entry
        return merged

    def get(self, key: Any, default: Any = None) -> Any:
        """The value of ``key`` in the cut (``default`` if unwritten)."""
        entry = self.items().get(key)
        return entry[1] if entry is not None else default

    def __contains__(self, key: Any) -> bool:
        return key in self.items()


@dataclass(frozen=True, slots=True)
class SplitReport:
    """Outcome of one shard split."""

    old_epoch: int
    new_epoch: int
    new_shard_ids: tuple[int, ...]
    moved_keys: int
    transfer_vector: tuple[tuple[int, tuple[int, ...]], ...]


class ShardedFabric:
    """K snapshot clusters behind one consistent-hash router.

    Build through :func:`build_sim_fabric` (synchronous, simulator) or
    :func:`create_fabric` (any backend, inside an event loop); drive
    whole workloads with :func:`run_on_fabric`.  The documented client
    entry point wrapping this is
    :class:`repro.client.SnapshotClient`.
    """

    def __init__(
        self,
        shards: dict[int, ClusterBackend],
        shard_map: ShardMap,
        *,
        backend_name: str,
        algorithm: str,
        base_config: ClusterConfig,
        time_scale: float = 0.002,
        decider: EpochDecider | str | None = None,
    ) -> None:
        if sorted(shards) != list(shard_map.shard_ids):
            raise ConfigurationError(
                f"shard clusters {sorted(shards)} do not match the map "
                f"{shard_map.shard_ids}"
            )
        self._shards = dict(shards)
        self.map = shard_map
        self.backend_name = backend_name
        self.algorithm_name = algorithm
        self.base_config = base_config
        self.time_scale = time_scale
        if decider is None or decider == "local":
            self.decider: EpochDecider = LocalEpochDecider()
        elif decider == "consensus":
            # The lowest shard always exists (shards are only added),
            # so its cluster is the stable home for epoch agreement.
            anchor = self._shards[min(self._shards)]
            self.decider = ConsensusEpochDecider(anchor)
        elif isinstance(decider, str):
            raise ConfigurationError(
                f"unknown decider {decider!r}: use 'local', 'consensus', "
                f"or an EpochDecider instance"
            )
        else:
            self.decider = decider
        self.kernel = next(iter(self._shards.values())).kernel
        self.n = base_config.n
        #: Authoritative per-slot key→(seq, value) maps.  The fabric is
        #: each slot's single writer (SWMR), so this is the writer's own
        #: copy of its register contents — what the paper's node keeps
        #: in ``reg[i]`` — not a cache that can go stale.
        self._slots: dict[tuple[int, int], dict[Any, tuple[int, Any]]] = {}
        self._key_seq: dict[Any, int] = {}
        #: Per-slot FIFO dispatch chains: every operation touching a
        #: slot — writes, key scans, composed collects — dispatches in
        #: submission order, honouring the model's one-sequential-client
        #: -per-node assumption (the same discipline as
        #: :meth:`ClusterBackend._submit`).
        self._chains: dict[tuple[int, int], Any] = {}
        self._admin_chain: Any = None
        #: Admission gate: closed while a split or fenced compose holds
        #: the fabric quiescent.  Closing *pauses* admissions; nothing
        #: is ever dropped.
        self._gate = self.kernel.create_gate(True)
        self._inflight = 0
        self._drain_event: Any = None
        self._closed = False
        #: Fabric-level operation records for the composed checker.
        self.writes: list[WriteRecord] = []
        self.composed: list[ComposedSnapshot] = []
        self.splits: list[SplitReport] = []
        self._label_shards()

    # -- topology ----------------------------------------------------------

    @property
    def shard_ids(self) -> tuple[int, ...]:
        """The live configuration's shard ids."""
        return self.map.shard_ids

    @property
    def epoch(self) -> int:
        """The installed shard-map epoch."""
        return self.map.epoch

    def shard(self, shard_id: int) -> ClusterBackend:
        """The cluster backend running shard ``shard_id``."""
        return self._shards[shard_id]

    def backends(self) -> list[ClusterBackend]:
        """Every shard's backend, in shard-id order."""
        return [self._shards[sid] for sid in sorted(self._shards)]

    def slot_of(self, key: Any) -> tuple[int, int]:
        """Where ``key`` routes under the installed map."""
        return self.map.slot(key, self.n)

    def _label_shards(self) -> None:
        """Tag observed shard clusters so blame/health rows name shards."""
        for shard_id, backend in self._shards.items():
            obs = getattr(backend, "obs", None)
            if obs is not None:
                obs.label = f"shard{shard_id}"

    # -- per-slot FIFO chains ----------------------------------------------

    def _chain(
        self,
        slot: tuple[int, int],
        coro_factory: Callable[[], Awaitable[Any]],
        name: str,
    ) -> Any:
        previous = self._chains.get(slot)

        async def chained() -> Any:
            if previous is not None:
                try:
                    await previous
                except BaseException:  # noqa: BLE001 - reported on its own handle
                    pass
            return await coro_factory()

        task = self.kernel.create_task(chained(), name=name)
        self._chains[slot] = task
        return task

    async def _admitted(
        self,
        key: Any,
        slot: tuple[int, int],
        body: Callable[[int, int], Awaitable[Any]],
    ) -> Any:
        """Gate + epoch re-check + in-flight accounting around ``body``.

        Runs at the head of every chained operation.  If the key's home
        moved while the operation was queued (an epoch change installed
        a successor map), the operation *hops*: it re-chains itself at
        the key's new slot and completes there — executed exactly once,
        under the new epoch.
        """
        if self._closed:
            raise ReproError("fabric is closed")
        await self._gate.passthrough()
        current = self.map.slot(key, self.n)
        if current != slot:
            return await self._chain(
                current,
                lambda: self._admitted(key, current, body),
                name=f"hop@{current}",
            )
        self._inflight += 1
        try:
            return await body(*current)
        finally:
            self._inflight -= 1
            if self._inflight == 0 and self._drain_event is not None:
                self._drain_event.set()

    # -- operations --------------------------------------------------------

    def submit_write(self, key: Any, value: Any) -> Any:
        """Pipelined write: enqueue at the key's slot, return a task."""
        slot = self.slot_of(key)
        invoked = self.kernel.now

        async def body(shard_id: int, node: int) -> int:
            return await self._write_at(shard_id, node, key, value, invoked)

        return self._chain(
            slot,
            lambda: self._admitted(key, slot, body),
            name=f"w@{slot}",
        )

    async def write(self, key: Any, value: Any) -> int:
        """Write ``key`` and return its per-key sequence number."""
        return await self.submit_write(key, value)

    def submit_scan(self, key: Any) -> Any:
        """Pipelined shard-local read of ``key`` (an atomic shard scan)."""
        slot = self.slot_of(key)

        async def body(shard_id: int, node: int) -> KeyView:
            result = await self._shards[shard_id].snapshot(node)
            entry = (result.values[node] or {}).get(key)
            if entry is None:
                return KeyView(key, 0, None, False, shard_id, self.epoch)
            return KeyView(
                key, entry[0], entry[1], True, shard_id, self.epoch
            )

        return self._chain(
            slot,
            lambda: self._admitted(key, slot, body),
            name=f"s@{slot}",
        )

    async def scan(self, key: Any) -> KeyView:
        """Read ``key`` through an atomic scan of its shard."""
        return await self.submit_scan(key)

    async def _write_at(
        self, shard_id: int, node: int, key: Any, value: Any, invoked: float
    ) -> int:
        seq = self._key_seq.get(key, 0) + 1
        self._key_seq[key] = seq
        slot = (shard_id, node)
        state = dict(self._slots.get(slot, {}))
        state[key] = (seq, value)
        self._slots[slot] = state
        ts = await self._shards[shard_id].write(node, state)
        self.writes.append(
            WriteRecord(
                key=key,
                seq=seq,
                slot=slot,
                epoch=self.epoch,
                invoked=invoked,
                responded=self.kernel.now,
                ts=ts,
            )
        )
        return seq

    # -- composed snapshots ------------------------------------------------

    #: Optimistic double-collect rounds before a compose falls back to
    #: the fenced (drain-and-collect) path.
    MAX_OPTIMISTIC_ROUNDS = 4

    async def _collect(self, map_: ShardMap) -> dict[int, Any] | None:
        """One parallel round of per-shard snapshots under ``map_``.

        Collects route through each shard's node-0 slot chain so they
        serialize with that slot's keyed operations (one sequential
        client per node).  Returns ``None`` if an epoch change
        interleaved.
        """
        tasks = {
            shard_id: self._chain(
                (shard_id, 0),
                (lambda sid=shard_id: self._collect_one(sid)),
                name=f"c@{shard_id}",
            )
            for shard_id in map_.shard_ids
        }
        results: dict[int, Any] = {}
        for shard_id, task in tasks.items():
            results[shard_id] = await task
        if self.map is not map_:
            return None
        return results

    async def _collect_one(self, shard_id: int) -> Any:
        await self._gate.passthrough()
        self._inflight += 1
        try:
            return await self._shards[shard_id].snapshot(0)
        finally:
            self._inflight -= 1
            if self._inflight == 0 and self._drain_event is not None:
                self._drain_event.set()

    async def compose_snapshot(
        self, max_rounds: int | None = None, fence: bool = True
    ) -> ComposedSnapshot:
        """A linearizable cut across every shard.

        Runs up to ``max_rounds`` optimistic double-collects; if writers
        keep the composed vector moving and ``fence`` is true (the
        default, the always-terminating flavour), falls back to a brief
        admission fence.  With ``fence=False`` the compose is
        non-blocking only: it retries until a clean double collect
        succeeds, like the stacked scan.
        """
        if max_rounds is None:
            max_rounds = self.MAX_OPTIMISTIC_ROUNDS
        invoked = self.kernel.now
        rounds = 0
        while True:
            map_ = self.map
            first = await self._collect(map_)
            if first is None:
                continue
            second = await self._collect(map_)
            if second is None:
                continue
            rounds += 1
            stable = all(
                first[sid].vector_clock == second[sid].vector_clock
                for sid in map_.shard_ids
            )
            if stable:
                return self._record_compose(
                    map_, second, invoked, rounds, fenced=False
                )
            if fence and rounds >= max_rounds:
                return await self._admin(
                    lambda: self._fenced_compose(invoked, rounds)
                )

    async def _fenced_compose(
        self, invoked: float, optimistic_rounds: int
    ) -> ComposedSnapshot:
        """Drain in-flight operations, then one trivially-stable collect."""
        await self._quiesce()
        try:
            map_ = self.map
            results = {
                sid: await self._shards[sid].snapshot(0)
                for sid in map_.shard_ids
            }
            return self._record_compose(
                map_, results, invoked, optimistic_rounds + 1, fenced=True
            )
        finally:
            self._release()

    def _record_compose(
        self,
        map_: ShardMap,
        results: dict[int, Any],
        invoked: float,
        rounds: int,
        fenced: bool,
    ) -> ComposedSnapshot:
        snap = ComposedSnapshot(
            epoch=map_.epoch,
            invoked=invoked,
            responded=self.kernel.now,
            shard_vectors={
                sid: tuple(results[sid].vector_clock)
                for sid in map_.shard_ids
            },
            shard_slots={
                sid: tuple(results[sid].values) for sid in map_.shard_ids
            },
            rounds=rounds,
            fenced=fenced,
        )
        self.composed.append(snap)
        return snap

    # -- quiescence + admin serialization ----------------------------------

    async def _quiesce(self) -> None:
        """Close the admission gate and wait until nothing is in flight."""
        self._gate.close()
        if self._inflight:
            self._drain_event = self.kernel.create_event()
            await self._drain_event.wait()
            self._drain_event = None

    def _release(self) -> None:
        self._gate.open()

    async def _admin(self, factory: Callable[[], Awaitable[Any]]) -> Any:
        """Serialize administrative sections (splits, fenced composes)."""
        previous = self._admin_chain

        async def chained() -> Any:
            if previous is not None:
                try:
                    await previous
                except BaseException:  # noqa: BLE001
                    pass
            return await factory()

        task = self.kernel.create_task(chained(), name="fabric-admin")
        self._admin_chain = task
        return await task

    # -- reconfiguration: shard split --------------------------------------

    async def split(self, new_shard_id: int | None = None) -> SplitReport:
        """Split the keyspace: add one shard and migrate its keys.

        The successor map is decided through the epoch seam, installed
        only after the fabric drains, and every moved entry is
        re-published at its new home through ordinary writes before
        admissions resume — in-flight and queued operations re-route via
        the hop path, so none is lost or duplicated across the split.
        """
        return await self._admin(lambda: self._do_split(new_shard_id))

    async def _do_split(self, new_shard_id: int | None) -> SplitReport:
        old_map = self.map
        proposal = old_map.grown(new_shard_id)
        decided = self.decider.propose(proposal, old_map)
        if inspect.isawaitable(decided):
            # The consensus decider blocks until the backing cluster
            # has agreed on the successor configuration.
            decided = await decided
        fresh = tuple(
            sid for sid in decided.shard_ids if sid not in old_map.shard_ids
        )
        await self._quiesce()
        try:
            for sid in fresh:
                self._shards[sid] = await self._spawn_shard(sid)
            self._label_shards()
            # The drained point is the transfer point: nothing is in
            # flight, so a plain collect is a stable global cut.
            transfer = {
                sid: tuple(
                    (await self._shards[sid].snapshot(0)).vector_clock
                )
                for sid in old_map.shard_ids
            }
            moved = await self._migrate(decided)
            self.map = decided
        finally:
            self._release()
        report = SplitReport(
            old_epoch=old_map.epoch,
            new_epoch=decided.epoch,
            new_shard_ids=fresh,
            moved_keys=moved,
            transfer_vector=tuple(sorted(transfer.items())),
        )
        self.splits.append(report)
        return report

    async def _spawn_shard(self, shard_id: int) -> ClusterBackend:
        cls = backend_class(self.backend_name)
        config = replace(
            self.base_config, seed=self.base_config.seed + 101 * shard_id
        )
        if cls.capabilities.simulated_time:
            backend = cls(
                self.algorithm_name, config, start=False, kernel=self.kernel
            )
        else:
            backend = cls(
                self.algorithm_name, config, time_scale=self.time_scale
            )
        await backend.create()
        backend.start()
        return backend

    async def _migrate(self, new_map: ShardMap) -> int:
        """Move every key whose slot changed; publish both sides."""
        moved = 0
        arrivals: dict[tuple[int, int], dict[Any, tuple[int, Any]]] = {}
        for slot, state in sorted(self._slots.items(), key=lambda kv: kv[0]):
            moving = {
                key: entry
                for key, entry in state.items()
                if new_map.slot(key, self.n) != slot
            }
            if not moving:
                continue
            remaining = {
                key: entry for key, entry in state.items() if key not in moving
            }
            self._slots[slot] = remaining
            shard_id, node = slot
            await self._shards[shard_id].write(node, remaining)
            for key, entry in moving.items():
                arrivals.setdefault(new_map.slot(key, self.n), {})[key] = entry
            moved += len(moving)
        for slot, entries in sorted(arrivals.items(), key=lambda kv: kv[0]):
            state = dict(self._slots.get(slot, {}))
            state.update(entries)
            self._slots[slot] = state
            shard_id, node = slot
            await self._shards[shard_id].write(node, state)
        return moved

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start every shard's do-forever loops."""
        for backend in self.backends():
            backend.start()

    def stop(self) -> None:
        """Stop every shard's do-forever loops."""
        for backend in self.backends():
            backend.stop()

    async def close(self) -> None:
        """Tear every shard down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for backend in self.backends():
            await backend.close()

    # -- verification ------------------------------------------------------

    def check(self) -> list[str]:
        """Check every shard history and the composed/per-key records."""
        from repro.shard.check import check_fabric

        return check_fabric(self)

    def __repr__(self) -> str:
        return (
            f"<ShardedFabric K={self.map.shards} epoch={self.epoch} "
            f"n={self.n} backend={self.backend_name} "
            f"algorithm={self.algorithm_name}>"
        )


# -- factories -------------------------------------------------------------


def build_sim_fabric(
    shards: int = 2,
    algorithm: str = "ss-nonblocking",
    config: ClusterConfig | None = None,
    *,
    vnodes: int = DEFAULT_VNODES,
    decider: EpochDecider | str | None = None,
) -> ShardedFabric:
    """Synchronously build a simulator fabric on one shared kernel.

    Every shard cluster shares a single deterministic kernel (one
    simulated timeline, one tie-break RNG), so a sharded run is exactly
    as reproducible as a single-cluster run: same seed ⇒ same history.
    """
    if shards < 1:
        raise ConfigurationError(f"need at least 1 shard, got {shards}")
    base = config if config is not None else ClusterConfig(n=4, delta=2)
    cls = backend_class("sim")
    shard_map = ShardMap(epoch=0, shard_ids=tuple(range(shards)), vnodes=vnodes)
    clusters: dict[int, ClusterBackend] = {}
    kernel = None
    for shard_id in shard_map.shard_ids:
        shard_config = replace(base, seed=base.seed + 101 * shard_id)
        if kernel is None:
            backend = cls(algorithm, shard_config, start=True)
            kernel = backend.kernel
        else:
            backend = cls(algorithm, shard_config, start=True, kernel=kernel)
        clusters[shard_id] = backend
    return ShardedFabric(
        clusters,
        shard_map,
        backend_name="sim",
        algorithm=algorithm,
        base_config=base,
        decider=decider,
    )


async def create_fabric(
    backend: str = "sim",
    shards: int = 2,
    algorithm: str = "ss-nonblocking",
    config: ClusterConfig | None = None,
    *,
    time_scale: float = 0.002,
    vnodes: int = DEFAULT_VNODES,
    decider: EpochDecider | str | None = None,
) -> ShardedFabric:
    """Build and start a fabric on any backend (run inside a loop)."""
    if backend_class(backend).capabilities.simulated_time:
        return build_sim_fabric(
            shards, algorithm, config, vnodes=vnodes, decider=decider
        )
    if shards < 1:
        raise ConfigurationError(f"need at least 1 shard, got {shards}")
    base = config if config is not None else ClusterConfig(n=4, delta=2)
    cls = backend_class(backend)
    shard_map = ShardMap(epoch=0, shard_ids=tuple(range(shards)), vnodes=vnodes)
    clusters: dict[int, ClusterBackend] = {}
    for shard_id in shard_map.shard_ids:
        shard_config = replace(base, seed=base.seed + 101 * shard_id)
        cluster = cls(algorithm, shard_config, time_scale=time_scale)
        await cluster.create()
        cluster.start()
        clusters[shard_id] = cluster
    return ShardedFabric(
        clusters,
        shard_map,
        backend_name=backend,
        algorithm=algorithm,
        base_config=base,
        time_scale=time_scale,
        decider=decider,
    )


def run_on_fabric(
    backend: str,
    shards: int,
    algorithm: str,
    config: ClusterConfig | None,
    body: Callable[[ShardedFabric], Awaitable[Any]],
    *,
    time_scale: float = 0.002,
    max_events: int | None = None,
    vnodes: int = DEFAULT_VNODES,
    decider: EpochDecider | str | None = None,
) -> Any:
    """Run ``async body(fabric)`` to completion on the named backend.

    The sharded sibling of
    :func:`repro.backend.base.run_on_backend`: the simulator drives its
    virtual clock, live backends run under ``asyncio.run``, and the
    fabric is torn down afterwards either way.
    """
    import asyncio

    cls = backend_class(backend)
    if cls.capabilities.simulated_time:
        fabric = build_sim_fabric(
            shards, algorithm, config, vnodes=vnodes, decider=decider
        )
        try:
            return fabric.kernel.run_until_complete(
                body(fabric), max_events=max_events
            )
        finally:
            fabric.stop()

    async def main() -> Any:
        fabric = await create_fabric(
            backend,
            shards,
            algorithm,
            config,
            time_scale=time_scale,
            vnodes=vnodes,
            decider=decider,
        )
        try:
            return await body(fabric)
        finally:
            await fabric.close()

    return asyncio.run(main())
