"""Correctness checking for sharded histories.

Two layers, matching the fabric's two-layer guarantee:

* **per shard** — every shard is a complete snapshot object, so its own
  history must pass the PR-1 linearizability checker
  (:func:`repro.analysis.linearizability.check_snapshot_history`)
  unchanged: per-writer timestamp monotonicity, total ⪯-order of
  snapshot vectors, real-time order, value agreement.  Because each key
  lives in exactly one slot and the fabric serializes that slot's
  writes, per-shard atomicity *is* per-key atomicity.
* **composed** — the cross-shard cuts and fabric-level writes must
  linearize with each other: composed vectors within an epoch must be
  ⪯-comparable and respect real-time order; each key's sequence number
  (global across epochs — migration preserves it) must be monotone
  across real-time-ordered cuts; and a cut must contain every write
  that responded before it was invoked and no write invoked after it
  responded.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.analysis.linearizability import check_snapshot_history

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.shard.fabric import ComposedSnapshot, ShardedFabric

__all__ = ["check_composed_records", "check_fabric", "check_shard_histories"]


def check_shard_histories(fabric: "ShardedFabric") -> list[str]:
    """Run the single-object linearizability checker on every shard."""
    failures: list[str] = []
    for shard_id in sorted(fabric.shard_ids):
        backend = fabric.shard(shard_id)
        try:
            backend.history.validate_well_formed()
        except Exception as exc:  # noqa: BLE001 - folded into the report
            failures.append(f"shard{shard_id}: malformed history: {exc}")
            continue
        report = check_snapshot_history(
            backend.history.records(), backend.config.n
        )
        if not report.ok:
            failures.extend(
                f"shard{shard_id}: {violation}"
                for violation in report.violations
            )
    return failures


def _vc_leq(a: "ComposedSnapshot", b: "ComposedSnapshot") -> bool:
    return all(
        all(x <= y for x, y in zip(a.shard_vectors[sid], b.shard_vectors[sid]))
        for sid in a.shard_vectors
    )


def check_composed_records(fabric: "ShardedFabric") -> list[str]:
    """Check composed cuts against each other and the per-key writes."""
    failures: list[str] = []
    composed = list(fabric.composed)
    items: list[dict[Any, tuple[int, Any]]] = [c.items() for c in composed]

    # 1. Within an epoch, composed vectors form a total ⪯-order
    #    (atomicity of the composed object, lifted from condition 3 of
    #    the single-object checker).
    by_epoch: dict[int, list[int]] = {}
    for index, cut in enumerate(composed):
        by_epoch.setdefault(cut.epoch, []).append(index)
    for epoch, indices in by_epoch.items():
        ordered = sorted(
            indices,
            key=lambda i: sum(
                sum(vc) for vc in composed[i].shard_vectors.values()
            ),
        )
        for earlier, later in zip(ordered, ordered[1:]):
            if not _vc_leq(composed[earlier], composed[later]):
                failures.append(
                    f"composed cuts {earlier} and {later} (epoch {epoch}) "
                    f"are ⪯-incomparable"
                )

    # 2. Real-time order between cuts: a cut that responded before
    #    another was invoked must be ⪯ it (same epoch) and must not show
    #    a larger seq for any key (any epoch — seqs survive migration).
    for i, first in enumerate(composed):
        for j, second in enumerate(composed):
            if i == j or not first.responded < second.invoked:
                continue
            if first.epoch == second.epoch and not _vc_leq(first, second):
                failures.append(
                    f"composed cut {j} (after {i} in real time) returned "
                    f"an older vector"
                )
            for key, (seq, _) in items[i].items():
                other = items[j].get(key)
                if other is None or other[0] < seq:
                    failures.append(
                        f"composed cut {j} (after {i} in real time) lost "
                        f"key {key!r}: seq {seq} regressed to "
                        f"{other[0] if other else 'absent'}"
                    )

    # 3. Write containment: effects respect real-time order in both
    #    directions (conditions 5a/5b of the single-object checker,
    #    restated over per-key seqs).
    for w in fabric.writes:
        for j, cut in enumerate(composed):
            entry = items[j].get(w.key)
            seen = entry[0] if entry is not None else 0
            if w.responded < cut.invoked and seen < w.seq:
                failures.append(
                    f"composed cut {j} misses write {w.key!r}#{w.seq} "
                    f"that preceded it (saw seq {seen})"
                )
            if cut.responded < w.invoked and seen >= w.seq:
                failures.append(
                    f"composed cut {j} saw future write {w.key!r}#{w.seq} "
                    f"invoked after it responded"
                )

    # 4. Per-key seqs are unique and increase in execution order (the
    #    fabric is each key's single sequential writer).
    last_seq: dict[Any, int] = {}
    for w in fabric.writes:
        previous = last_seq.get(w.key, 0)
        if w.seq <= previous:
            failures.append(
                f"write seq not increasing for key {w.key!r}: "
                f"{w.seq} after {previous}"
            )
        last_seq[w.key] = max(previous, w.seq)

    return failures


def check_fabric(fabric: "ShardedFabric") -> list[str]:
    """Every check; empty list means the sharded run was linearizable."""
    return check_shard_histories(fabric) + check_composed_records(fabric)
