"""Sharded snapshot fabric: scale out by running K clusters as one.

One n-node SWMR snapshot cluster saturates at ≈1 op/u; the ROADMAP's
north star needs orders of magnitude more.  This package scales *out*:

* :mod:`repro.shard.ring` — the consistent-hash :class:`ShardMap`
  routing keys → shards → register slots, epoch-stamped so
  reconfigurations are values, not mutations.
* :mod:`repro.shard.epoch` — the agreement seam deciding successor
  maps (:class:`EpochDecider`; the self-stabilizing multivalued
  consensus of ROADMAP item 5 slots in here).
* :mod:`repro.shard.fabric` — the :class:`ShardedFabric`: per-slot
  serialized keyed writes and scans, composed cross-shard snapshots via
  double collect with a fenced fallback, and online shard splits that
  never lose or duplicate an in-flight operation.
* :mod:`repro.shard.check` — two-layer linearizability checking
  (per-shard histories + composed cuts).
* :mod:`repro.shard.load` / :mod:`repro.shard.chaos` /
  :mod:`repro.shard.experiments` — the keyed load driver with the
  Zipf hot-shard dial, the split-under-storm endurance campaign, and
  the E19 scaling experiment behind ``BENCH_PR8.json``.

Most callers want :class:`repro.client.SnapshotClient`, which wraps a
fabric behind a three-method facade.
"""

from repro.shard.chaos import (
    ShardChaosReport,
    run_shard_chaos,
    run_shard_chaos_campaigns,
)
from repro.shard.check import check_fabric
from repro.shard.epoch import EpochDecider, LocalEpochDecider
from repro.shard.experiments import (
    e19_throughput_vs_shards,
    shard_scaling_series,
    write_shard_bench,
)
from repro.shard.fabric import (
    ComposedSnapshot,
    KeyView,
    ShardedFabric,
    SplitReport,
    build_sim_fabric,
    create_fabric,
    run_on_fabric,
)
from repro.shard.load import (
    ShardLoadReport,
    ShardLoadSpec,
    run_shard_load,
    run_shard_load_campaigns,
)
from repro.shard.ring import DEFAULT_VNODES, ShardMap, key_bytes, stable_hash

__all__ = [
    "DEFAULT_VNODES",
    "ComposedSnapshot",
    "EpochDecider",
    "KeyView",
    "LocalEpochDecider",
    "ShardChaosReport",
    "ShardLoadReport",
    "ShardLoadSpec",
    "ShardMap",
    "ShardedFabric",
    "SplitReport",
    "build_sim_fabric",
    "check_fabric",
    "create_fabric",
    "e19_throughput_vs_shards",
    "key_bytes",
    "run_on_fabric",
    "run_shard_chaos",
    "run_shard_chaos_campaigns",
    "run_shard_load",
    "run_shard_load_campaigns",
    "shard_scaling_series",
    "stable_hash",
    "write_shard_bench",
]
