"""Chaos campaigns against a sharded fabric.

A seeded event storm — key writes, key scans, composed cross-shard
snapshots, node crashes/resumes inside random shards, and one online
shard **split** mid-run — with the full two-layer checker at the end.
This is the endurance harness for the fabric's hard claims: operations
queued across an epoch change are neither lost nor duplicated, composed
cuts stay linearizable while shards crash-recover around them, and the
post-split fabric is exactly as correct as the pre-split one.

Crashes follow the paper's failure model: a crashed node stops acting
as a client, so the campaign routes new operations around keys whose
slot node is down (shard quorums keep the object available — crashing
a minority never blocks the other slots).  ``python -m repro shard``
runs these campaigns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.config import ClusterConfig, scenario_config
from repro.shard.fabric import ShardedFabric, run_on_fabric

__all__ = ["ShardChaosReport", "run_shard_chaos", "run_shard_chaos_campaigns"]


@dataclass(slots=True)
class ShardChaosReport:
    """Outcome of one sharded chaos campaign."""

    shards: int = 0
    final_shards: int = 0
    events: int = 0
    writes: int = 0
    scans: int = 0
    composes: int = 0
    fenced_composes: int = 0
    crashes: int = 0
    resumes: int = 0
    splits: int = 0
    moved_keys: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every check during the campaign passed."""
        return not self.failures

    def summary(self) -> str:
        """One-line outcome."""
        verdict = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"K={self.shards}→{self.final_shards}: {self.events} events "
            f"({self.writes}w/{self.scans}s ops, {self.composes} composed "
            f"cuts, {self.crashes} crashes, {self.splits} splits moving "
            f"{self.moved_keys} keys): {verdict}"
        )


class ShardChaosCampaign:
    """A seeded storm of operations, faults and one split."""

    def __init__(self, fabric: ShardedFabric, seed: int) -> None:
        self.fabric = fabric
        self.rng = random.Random(seed)
        universe = 32 * fabric.map.shards
        self._keys = [f"c{index}" for index in range(universe)]
        self.report = ShardChaosReport(shards=fabric.map.shards)
        self._write_counter = 0

    # -- event primitives --------------------------------------------------

    def _usable_key(self) -> str | None:
        """A key whose slot node is alive (crashed nodes can't client)."""
        for _ in range(8):
            key = self.rng.choice(self._keys)
            shard_id, node = self.fabric.slot_of(key)
            if not self.fabric.shard(shard_id).node(node).crashed:
                return key
        return None

    async def _do_write(self) -> None:
        key = self._usable_key()
        if key is None:
            return
        self._write_counter += 1
        await self.fabric.write(key, f"chaos-{self._write_counter}")
        self.report.writes += 1

    async def _do_scan(self) -> None:
        key = self._usable_key()
        if key is None:
            return
        await self.fabric.scan(key)
        self.report.scans += 1

    async def _do_compose(self) -> None:
        cut = await self.fabric.compose_snapshot()
        self.report.composes += 1
        if cut.fenced:
            self.report.fenced_composes += 1

    def _do_crash(self) -> None:
        # Keep node 0 up (it serves composed collects) and keep every
        # shard's quorum: crash at most one minority node per shard.
        shard_id = self.rng.choice(self.fabric.shard_ids)
        backend = self.fabric.shard(shard_id)
        candidates = [
            node
            for node in backend.alive_nodes()
            if node != 0
        ]
        if len(backend.alive_nodes()) > backend.config.majority and candidates:
            backend.crash(self.rng.choice(candidates))
            self.report.crashes += 1

    def _do_resume(self) -> None:
        crashed = [
            (shard_id, process.node_id)
            for shard_id in self.fabric.shard_ids
            for process in self.fabric.shard(shard_id).processes
            if process.crashed
        ]
        if crashed:
            shard_id, node = self.rng.choice(crashed)
            self.fabric.shard(shard_id).resume(
                node, restart=self.rng.random() < 0.3
            )
            self.report.resumes += 1

    async def _do_split(self) -> None:
        split = await self.fabric.split()
        self.report.splits += 1
        self.report.moved_keys += split.moved_keys

    def _resume_all(self) -> None:
        for shard_id in self.fabric.shard_ids:
            backend = self.fabric.shard(shard_id)
            for process in backend.processes:
                if process.crashed:
                    backend.resume(process.node_id)

    # -- the campaign ------------------------------------------------------

    async def run(self, events: int) -> ShardChaosReport:
        """Execute ``events`` storm events plus one mid-run split."""
        weighted = (
            [self._do_write] * 6
            + [self._do_scan] * 3
            + [self._do_compose] * 1
            + [self._do_crash] * 1
            + [self._do_resume] * 2
        )
        split_at = events // 2
        for index in range(events):
            self.report.events += 1
            if index == split_at:
                # The split runs while prior operations may still be
                # queued — exactly the in-flight-across-epochs case the
                # hop path must handle.
                await self._do_split()
            action = self.rng.choice(weighted)
            result = action()
            if result is not None:  # coroutine actions
                await result
            await self.fabric.kernel.sleep(self.rng.uniform(0.5, 3.0))
        self._resume_all()
        await self._do_compose()
        self.report.failures.extend(self.fabric.check())
        self.report.final_shards = self.fabric.map.shards
        return self.report


def run_shard_chaos(
    backend: str = "sim",
    shards: int = 4,
    algorithm: str = "ss-nonblocking",
    config: ClusterConfig | None = None,
    *,
    seed: int = 0,
    events: int = 80,
    time_scale: float = 0.002,
) -> ShardChaosReport:
    """Run one sharded chaos campaign on the named backend."""
    config = (
        config
        if config is not None
        else scenario_config(n=4, seed=seed, delta=2)
    )

    async def body(fabric: ShardedFabric) -> ShardChaosReport:
        return await ShardChaosCampaign(fabric, seed).run(events)

    return run_on_fabric(
        backend, shards, algorithm, config, body, time_scale=time_scale
    )


def run_shard_chaos_campaigns(
    seeds: list[int],
    shards: int = 4,
    algorithm: str = "ss-nonblocking",
    budget: int = 80,
    backend: str = "sim",
    n: int = 4,
    delta: float = 2,
    time_scale: float = 0.002,
) -> list[ShardChaosReport]:
    """One campaign per seed — the unified campaign entry point.

    ``budget`` is the number of storm events per campaign.
    """
    return [
        run_shard_chaos(
            backend=backend,
            shards=shards,
            algorithm=algorithm,
            config=scenario_config(n=n, seed=seed, delta=delta),
            seed=seed,
            events=budget,
            time_scale=time_scale,
        )
        for seed in seeds
    ]
