"""Consistent-hash shard routing: keys → shards → register slots.

One n-node snapshot cluster saturates at roughly one operation per time
unit (the BENCH_PR5 knee), so scaling *out* means many independent
clusters — **shards** — behind a keyspace router.  The router must keep
two promises:

* **balance** — with ``K`` shards each owns ≈ ``1/K`` of the keyspace.
  A plain ``hash(key) % K`` does that, but remaps *every* key when ``K``
  changes.  Consistent hashing (Karger et al.) places ``vnodes`` points
  per shard on a hash ring and assigns each key to the next point
  clockwise, so adding one shard to ``K`` only remaps the ≈ ``1/(K+1)``
  of keys whose arcs the new shard's points land in.
* **stability** — routing must be a pure function of the
  :class:`ShardMap` value, identical across processes and Python runs.
  Everything here hashes with BLAKE2b, never the salted builtin
  ``hash``.

A :class:`ShardMap` is an immutable *epoch-stamped* value: every
reconfiguration (shard split / migration) produces a successor map with
``epoch + 1`` via :meth:`ShardMap.grown`.  The
:class:`~repro.shard.fabric.ShardedFabric` installs successor maps only
at operation-quiescent points, and every operation re-checks the
installed epoch when it executes, which is how in-flight operations
route correctly across a split (see ``docs/sharding.md``).

Within a shard, a key maps to one of the cluster's ``n`` register
*slots* (the paper's model is SWMR: node ``i`` owns register ``i``; the
fabric plays the sequential writer for each slot it routes keys to).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Iterable

from repro.errors import ConfigurationError

__all__ = ["DEFAULT_VNODES", "ShardMap", "key_bytes", "stable_hash"]

#: Ring points per shard.  Balance error shrinks like ``1/sqrt(vnodes)``;
#: 256 points per shard keeps the max/min key-share ratio comfortably
#: under 1.3 at K=8 (asserted by the router property tests) while ring
#: construction stays trivially cheap (K*256 sorted integers per epoch).
DEFAULT_VNODES = 256


def key_bytes(key: Any) -> bytes:
    """Canonical byte encoding of a routing key.

    ``str`` and ``bytes`` pass through (utf-8 for ``str``); ints use
    their decimal spelling; anything else routes by ``repr`` — stable
    enough for tests and tooling, but production keys should be strings.
    """
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, int):
        return b"i:%d" % key
    return repr(key).encode("utf-8")


def stable_hash(data: bytes, salt: bytes = b"") -> int:
    """A 64-bit process-independent hash (BLAKE2b, optionally salted)."""
    return int.from_bytes(
        blake2b(data, digest_size=8, person=salt[:16].ljust(16, b"\0")).digest(),
        "big",
    )


@dataclass(frozen=True)
class ShardMap:
    """An epoch-stamped consistent-hash routing table.

    Attributes
    ----------
    epoch:
        Monotone reconfiguration counter.  Two maps with the same epoch
        are identical; the fabric treats a larger epoch as the successor
        configuration (decided through the
        :class:`~repro.shard.epoch.EpochDecider` seam).
    shard_ids:
        The shard identifiers in the configuration (sorted).
    vnodes:
        Ring points per shard.
    """

    epoch: int
    shard_ids: tuple[int, ...]
    vnodes: int = DEFAULT_VNODES
    #: Sorted ring as parallel (points, owners) lists; derived, excluded
    #: from equality so two maps are equal iff their declared fields are.
    _ring: tuple[tuple[int, ...], tuple[int, ...]] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if not self.shard_ids:
            raise ConfigurationError("a shard map needs at least one shard")
        if len(set(self.shard_ids)) != len(self.shard_ids):
            raise ConfigurationError(
                f"duplicate shard ids in {self.shard_ids}"
            )
        if self.vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.epoch < 0:
            raise ConfigurationError(f"epoch must be >= 0, got {self.epoch}")
        object.__setattr__(
            self, "shard_ids", tuple(sorted(self.shard_ids))
        )
        points: list[tuple[int, int]] = []
        for shard_id in self.shard_ids:
            for replica in range(self.vnodes):
                point = stable_hash(
                    b"s:%d:r:%d" % (shard_id, replica), salt=b"ring"
                )
                points.append((point, shard_id))
        points.sort()
        object.__setattr__(
            self,
            "_ring",
            (
                tuple(p for p, _ in points),
                tuple(owner for _, owner in points),
            ),
        )

    # -- routing -----------------------------------------------------------

    @property
    def shards(self) -> int:
        """Number of shards in the configuration."""
        return len(self.shard_ids)

    def lookup(self, key: Any) -> int:
        """The shard owning ``key``: next ring point clockwise of its hash."""
        points, owners = self._ring
        index = bisect_right(points, stable_hash(key_bytes(key), salt=b"key"))
        if index == len(points):
            index = 0
        return owners[index]

    def slot(self, key: Any, n: int) -> tuple[int, int]:
        """``(shard_id, node_id)``: the register slot ``key`` lives in.

        The node draw uses an independent salt so the within-shard
        placement is uncorrelated with the ring position.
        """
        return (
            self.lookup(key),
            stable_hash(key_bytes(key), salt=b"slot") % n,
        )

    # -- reconfiguration ---------------------------------------------------

    def grown(self, new_shard_id: int | None = None) -> "ShardMap":
        """The successor map (epoch + 1) with one more shard.

        Consistent hashing makes this a keyspace *split*: the new
        shard's ring points subdivide existing arcs, so only the keys
        landing on stolen arcs — ≈ ``1/(K+1)`` of the keyspace — change
        owner, and every one of them moves *to* the new shard.
        """
        if new_shard_id is None:
            new_shard_id = max(self.shard_ids) + 1
        if new_shard_id in self.shard_ids:
            raise ConfigurationError(
                f"shard id {new_shard_id} already in the map"
            )
        return ShardMap(
            epoch=self.epoch + 1,
            shard_ids=self.shard_ids + (new_shard_id,),
            vnodes=self.vnodes,
        )

    # -- diagnostics -------------------------------------------------------

    def share_by_shard(self, keys: Iterable[Any]) -> dict[int, int]:
        """How many of ``keys`` each shard owns (balance diagnostics)."""
        counts = {shard_id: 0 for shard_id in self.shard_ids}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

    def describe(self) -> dict[str, Any]:
        """Plain-dict summary (CLI / JSON tooling)."""
        return {
            "epoch": self.epoch,
            "shards": list(self.shard_ids),
            "vnodes": self.vnodes,
        }
