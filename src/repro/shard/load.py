"""Load generation against a sharded fabric.

The single-cluster :mod:`repro.load` driver targets *nodes*; the sharded
driver targets *keys*, which is what makes the fabric's scaling story
measurable: keys draw from a Zipf-like popularity distribution
(``1/(rank+1)^skew``, the same dial as ``repro.load``), popular keys
hash to whichever shards own them, and the resulting **hot-shard
imbalance** shows up directly in the report (`per_shard` operation
counts and the max/mean ``imbalance`` ratio).  With ``skew=0`` the
consistent-hash ring spreads load evenly and aggregate throughput grows
near-linearly in K — the E19 experiment; with high skew one shard
saturates first and the aggregate flattens, exactly the behaviour a
capacity planner needs to see.

Every run is also a correctness campaign: composed cross-shard
snapshots are taken during the run, and at the end the full two-layer
checker (:func:`repro.shard.check.check_fabric`) verifies per-shard
linearizability plus composed-cut consistency.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.config import ClusterConfig, scenario_config
from repro.errors import ConfigurationError
from repro.load.driver import CLOSED, OPEN
from repro.obs.registry import MetricsRegistry
from repro.shard.fabric import ShardedFabric, run_on_fabric

__all__ = [
    "ShardLoadReport",
    "ShardLoadSpec",
    "run_shard_load",
    "run_shard_load_campaigns",
]


@dataclass(frozen=True, slots=True)
class ShardLoadSpec:
    """One sharded load run, fully described.

    Mirrors :class:`repro.load.driver.LoadSpec` (same modes, same skew
    dial) with the key-space knobs on top: operations target *keys*
    drawn Zipf-style from a universe of ``keys`` distinct keys
    (default ``0`` = 64 keys per shard), and ``composes`` composed
    cross-shard snapshots are taken while the workload runs.
    """

    mode: str = CLOSED
    clients: int = 8
    depth: int = 1
    rate: float | None = None
    duration: float = 60.0
    write_fraction: float = 0.8
    skew: float = 0.0
    keys: int = 0
    composes: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in (CLOSED, OPEN):
            raise ConfigurationError(
                f"mode must be {CLOSED!r} or {OPEN!r}, got {self.mode!r}"
            )
        if self.mode == OPEN and (self.rate is None or self.rate <= 0):
            raise ConfigurationError("open-loop load needs a positive rate")
        if self.clients < 1:
            raise ConfigurationError(f"clients must be >= 1, got {self.clients}")
        if self.depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {self.depth}")
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}"
            )
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError(
                f"write_fraction must be in [0, 1], got {self.write_fraction}"
            )
        if self.skew < 0:
            raise ConfigurationError(f"skew must be >= 0, got {self.skew}")
        if self.keys < 0:
            raise ConfigurationError(f"keys must be >= 0, got {self.keys}")
        if self.composes < 0:
            raise ConfigurationError(
                f"composes must be >= 0, got {self.composes}"
            )


@dataclass(slots=True)
class ShardLoadReport:
    """Outcome of one sharded load run (campaign report protocol)."""

    backend: str
    algorithm: str
    n: int
    shards: int
    epoch: int
    spec: ShardLoadSpec
    offered_rate: float | None
    submitted: int
    completed: int
    errors: int
    elapsed: float
    throughput: float
    latency: dict[str, dict[str, float]]
    per_shard: dict[int, int]
    imbalance: float
    composes: int
    fenced_composes: int
    metrics: dict[str, Any]
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every layer of the checker came back clean."""
        return not self.failures

    def row(self) -> dict[str, Any]:
        """Flatten into one table/JSON row (what the K-sweep serializes)."""
        return {
            "backend": self.backend,
            "algorithm": self.algorithm,
            "n": self.n,
            "shards": self.shards,
            "epoch": self.epoch,
            "mode": self.spec.mode,
            "skew": self.spec.skew,
            "offered_rate": self.offered_rate,
            "submitted": self.submitted,
            "completed": self.completed,
            "errors": self.errors,
            "elapsed": round(self.elapsed, 2),
            "throughput": round(self.throughput, 3),
            "p50": round(self.latency["all"]["p50"], 2),
            "p99": round(self.latency["all"]["p99"], 2),
            "imbalance": round(self.imbalance, 3),
            "composes": self.composes,
            "fenced_composes": self.fenced_composes,
            "linearizable": self.ok,
        }

    def summary(self) -> str:
        """One line per run, campaign-style."""
        return (
            f"{self.spec.mode} load on {self.backend} "
            f"({self.algorithm}, K={self.shards}, n={self.n}): "
            f"{self.completed} ops in {self.elapsed:.1f}u = "
            f"{self.throughput:.2f} op/u, imbalance {self.imbalance:.2f}, "
            f"{self.composes} composed cuts "
            f"({self.fenced_composes} fenced), "
            f"{'linearizable' if self.ok else 'VIOLATIONS'}"
        )


class ShardLoadGenerator:
    """Drives one fabric with one :class:`ShardLoadSpec`."""

    def __init__(
        self,
        fabric: ShardedFabric,
        spec: ShardLoadSpec,
        registry: MetricsRegistry | None = None,
    ) -> None:
        import random

        self.fabric = fabric
        self.spec = spec
        self.registry = registry if registry is not None else MetricsRegistry()
        self.rng = random.Random(spec.seed)
        universe = spec.keys if spec.keys else 64 * fabric.map.shards
        self._keys = [f"k{index}" for index in range(universe)]
        self._weights = [
            1.0 / (rank + 1) ** spec.skew for rank in range(universe)
        ]
        self.per_shard: dict[int, int] = {
            shard_id: 0 for shard_id in fabric.shard_ids
        }
        self.submitted = 0
        self.errors = 0
        self.composes = 0
        self.fenced_composes = 0
        self._last_completion = 0.0
        self._start = 0.0

    # -- op drawing --------------------------------------------------------

    def _draw_op(self) -> tuple[str, str]:
        kind = (
            "write"
            if self.rng.random() < self.spec.write_fraction
            else "scan"
        )
        key = self.rng.choices(self._keys, weights=self._weights)[0]
        return kind, key

    # -- measurement -------------------------------------------------------

    def _submit(self, kind: str, key: str) -> Any:
        kernel = self.fabric.kernel
        shard_id = self.fabric.slot_of(key)[0]
        self.per_shard[shard_id] = self.per_shard.get(shard_id, 0) + 1
        if kind == "write":
            task = self.fabric.submit_write(key, (key, self.submitted))
        else:
            task = self.fabric.submit_scan(key)
        submitted_at = kernel.now
        self.submitted += 1
        hist = self.registry.quantile_histogram(f"load.{kind}_latency")
        overall = self.registry.quantile_histogram("load.latency")

        def _on_done(done: Any) -> None:
            if done.cancelled() or done.exception() is not None:
                self.errors += 1
                self.registry.counter("load.ops_failed").inc()
                return
            latency = kernel.now - submitted_at
            hist.observe(latency)
            overall.observe(latency)
            self.registry.counter("load.ops_completed").inc()
            self._last_completion = kernel.now

        task.add_done_callback(_on_done)
        return task

    # -- loop disciplines --------------------------------------------------

    async def _closed_client(self, deadline: float) -> None:
        kernel = self.fabric.kernel
        window: list[Any] = []
        while kernel.now < deadline:
            if len(window) >= self.spec.depth:
                oldest = window.pop(0)
                try:
                    await oldest
                except Exception:  # counted by _submit's done callback
                    pass
                continue
            kind, key = self._draw_op()
            window.append(self._submit(kind, key))
        for task in window:
            try:
                await task
            except Exception:
                pass

    async def _open_generator(self, deadline: float) -> None:
        kernel = self.fabric.kernel
        rate = self.spec.rate
        while True:
            await kernel.sleep(self.rng.expovariate(rate))
            if kernel.now >= deadline:
                return
            kind, key = self._draw_op()
            self._submit(kind, key)

    async def _composer(self, deadline: float) -> None:
        """Take composed cuts at even intervals while the load runs."""
        kernel = self.fabric.kernel
        if not self.spec.composes:
            return
        gap = self.spec.duration / (self.spec.composes + 1)
        for _ in range(self.spec.composes):
            await kernel.sleep(gap)
            if kernel.now >= deadline:
                break
            cut = await self.fabric.compose_snapshot()
            self.composes += 1
            if cut.fenced:
                self.fenced_composes += 1

    async def run(self) -> None:
        """Submit for ``spec.duration``, then drain every outstanding op."""
        kernel = self.fabric.kernel
        self._start = kernel.now
        self._last_completion = self._start
        deadline = self._start + self.spec.duration
        composer = kernel.create_task(
            self._composer(deadline), name="load-composer"
        )
        if self.spec.mode == CLOSED:
            clients = [
                kernel.create_task(
                    self._closed_client(deadline), name=f"load-client{i}"
                )
                for i in range(self.spec.clients)
            ]
            for client in clients:
                await client
        else:
            await self._open_generator(deadline)
        await composer
        # Drain: every per-slot chain tail subsumes its predecessors.
        for tail in list(self.fabric._chains.values()):
            try:
                await tail
            except Exception:
                pass

    # -- reporting ---------------------------------------------------------

    def report(self, backend: str, failures: list[str]) -> ShardLoadReport:
        """Package the run's measurements (call after :meth:`run`)."""

        def stats(name: str) -> dict[str, float]:
            return self.registry.quantile_histogram(name).value

        completed = self.registry.counter("load.ops_completed").value
        elapsed = max(self._last_completion - self._start, 1e-9)
        counts = [self.per_shard.get(sid, 0) for sid in self.fabric.shard_ids]
        mean = sum(counts) / max(len(counts), 1)
        imbalance = (max(counts) / mean) if mean > 0 else 1.0
        return ShardLoadReport(
            backend=backend,
            algorithm=self.fabric.algorithm_name,
            n=self.fabric.n,
            shards=self.fabric.map.shards,
            epoch=self.fabric.epoch,
            spec=self.spec,
            offered_rate=self.spec.rate,
            submitted=self.submitted,
            completed=completed,
            errors=self.errors,
            elapsed=elapsed,
            throughput=completed / elapsed,
            latency={
                "all": stats("load.latency"),
                "write": stats("load.write_latency"),
                "scan": stats("load.scan_latency"),
            },
            per_shard=dict(self.per_shard),
            imbalance=imbalance,
            composes=self.composes,
            fenced_composes=self.fenced_composes,
            metrics=self.registry.collect(),
            failures=failures,
        )


def run_shard_load(
    backend: str = "sim",
    shards: int = 4,
    algorithm: str = "ss-nonblocking",
    config: ClusterConfig | None = None,
    spec: ShardLoadSpec | None = None,
    *,
    time_scale: float = 0.002,
    check: bool = True,
    decider=None,
) -> ShardLoadReport:
    """Run one sharded load pass on the named backend.

    Deploys a K-shard fabric via
    :func:`~repro.shard.fabric.run_on_fabric`, drives it with ``spec``
    (default: a closed-loop mixed workload with mid-run composed cuts),
    and returns a :class:`ShardLoadReport`.  With ``check`` (the
    default) the full two-layer checker runs at the end; violations
    land in ``report.failures``.  ``decider`` passes through to the
    fabric (``"consensus"`` makes mid-run splits consensus-backed).
    """
    spec = spec if spec is not None else ShardLoadSpec()
    config = config if config is not None else scenario_config(n=4, delta=2)

    async def body(fabric: ShardedFabric) -> ShardLoadReport:
        generator = ShardLoadGenerator(fabric, spec)
        await generator.run()
        # A final composed cut so even compose-free specs get checked.
        final = await fabric.compose_snapshot()
        generator.composes += 1
        if final.fenced:
            generator.fenced_composes += 1
        failures = fabric.check() if check else []
        return generator.report(backend, failures)

    return run_on_fabric(
        backend,
        shards,
        algorithm,
        config,
        body,
        time_scale=time_scale,
        decider=decider,
    )


def run_shard_load_campaigns(
    seeds: list[int],
    shards: int = 4,
    algorithm: str = "ss-nonblocking",
    budget: int = 60,
    backend: str = "sim",
    spec: ShardLoadSpec | None = None,
    n: int = 4,
    delta: float = 2,
    batch: int | None = None,
    time_scale: float = 0.002,
) -> list[ShardLoadReport]:
    """One sharded load run per seed — the campaign entry point.

    ``budget`` is the submission-window duration in simulated time
    units, matching the single-cluster load campaigns.  ``batch`` sets
    every shard's transport batch window (``ChannelConfig.batch_window``).
    """
    base = spec if spec is not None else ShardLoadSpec()
    reports = []
    for seed in seeds:
        run_spec = replace(base, seed=seed, duration=float(budget))
        config = scenario_config(n=n, seed=seed, delta=delta, batch=batch)
        reports.append(
            run_shard_load(
                backend=backend,
                shards=shards,
                algorithm=algorithm,
                config=config,
                spec=run_spec,
                time_scale=time_scale,
            )
        )
    return reports
