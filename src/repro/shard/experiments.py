"""E19 — aggregate throughput vs shard count at fixed n.

The scaling claim behind the whole fabric: one n-node cluster saturates
at ≈1 op/u (the BENCH_PR5 knee at n=4), so K *independent* clusters
behind the consistent-hash router should saturate at ≈K× that — the
shards share no quorum, no register and no message channel, only the
simulated timeline.  E19 measures it: a saturated closed-loop keyed
workload (clients scaled with K, uniform key popularity) against
K ∈ {1, 2, 4, 8} fabrics at n=4, with composed cross-shard cuts taken
mid-run and the full two-layer linearizability check on every run.

``python -m repro shard --sweep`` serializes the series into
``BENCH_PR8.json`` (house baseline shape; gated in CI by
``benchmarks/check_shard_series.py`` — monotone throughput in K and
K=8 ≥ 5× the single-cluster BENCH_PR5 capacity).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from repro.config import scenario_config
from repro.shard.load import ShardLoadReport, ShardLoadSpec, run_shard_load

__all__ = [
    "DEFAULT_SHARD_COUNTS",
    "e19_throughput_vs_shards",
    "shard_scaling_series",
    "write_shard_bench",
]

#: The K ladder E19 measures (fixed n=4 per shard).
DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)

#: Single-cluster capacity fallback when BENCH_PR5.json is unavailable
#: (its measured headline: 0.99 op/u at n=4).
PR5_FALLBACK_CAPACITY = 0.99


def _saturated_spec(shards: int, duration: float, seed: int) -> ShardLoadSpec:
    """A closed-loop spec that saturates K shards.

    Clients scale with K (8 per shard, depth 2) so the offered
    concurrency covers the fabric's ``K × n`` register slots at every
    ladder rung; uniform key popularity (skew 0) lets the ring spread
    them evenly.
    """
    return ShardLoadSpec(
        clients=8 * shards,
        depth=2,
        duration=duration,
        write_fraction=0.8,
        skew=0.0,
        composes=2,
        seed=seed,
    )


def shard_scaling_series(
    ks: Sequence[int] | None = None,
    backend: str = "sim",
    algorithm: str = "ss-nonblocking",
    n: int = 4,
    *,
    duration: float = 60.0,
    seed: int = 0,
    delta: float = 2,
    time_scale: float = 0.002,
    progress: bool = False,
    decider: str = "consensus",
) -> list[ShardLoadReport]:
    """One saturated run per shard count; reports in ladder order.

    The fabric runs with the consensus-backed epoch decider installed
    (the production configuration since ROADMAP item 5 landed), so the
    BENCH_PR8 bar is measured against the same decision path a split
    would take.
    """
    if ks is None:
        ks = DEFAULT_SHARD_COUNTS
    reports = []
    for shards in ks:
        report = run_shard_load(
            backend=backend,
            shards=shards,
            algorithm=algorithm,
            config=scenario_config(n=n, seed=seed, delta=delta),
            spec=_saturated_spec(shards, duration, seed),
            time_scale=time_scale,
            decider=decider,
        )
        reports.append(report)
        if progress:
            print(f"  {report.summary()}")
    return reports


def baseline_capacity(bench_pr5: str | Path = "BENCH_PR5.json") -> float:
    """The single-cluster capacity E19 scales against.

    Reads the BENCH_PR5 headline when present so the speedup is against
    the *recorded* baseline, not a re-measurement.
    """
    path = Path(bench_pr5)
    if path.exists():
        try:
            headline = json.loads(path.read_text()).get("headline", {})
            capacity = headline.get("saturated_throughput")
            if capacity:
                return float(capacity)
        except (ValueError, OSError):
            pass
    return PR5_FALLBACK_CAPACITY


def e19_throughput_vs_shards(
    backend: str = "sim", seed: int = 0, duration: float = 60.0
) -> list[dict]:
    """E19 rows: aggregate saturated throughput vs shard count."""
    reports = shard_scaling_series(
        backend=backend, seed=seed, duration=duration
    )
    base = reports[0].throughput if reports else 1.0
    pr5 = baseline_capacity()
    rows = []
    for report in reports:
        rows.append(
            {
                "shards": report.shards,
                "clients": report.spec.clients,
                "completed": report.completed,
                "throughput": round(report.throughput, 3),
                "speedup_vs_k1": round(report.throughput / base, 2),
                "vs_pr5_capacity": round(report.throughput / pr5, 2),
                "p50": round(report.latency["all"]["p50"], 2),
                "p99": round(report.latency["all"]["p99"], 2),
                "imbalance": round(report.imbalance, 3),
                "composed_cuts": report.composes,
                "linearizable": report.ok,
            }
        )
    return rows


def write_shard_bench(
    path: str | Path,
    reports: list[ShardLoadReport],
    extra: dict[str, Any] | None = None,
) -> Path:
    """Write ``BENCH_PR8.json`` in the house baseline-file shape."""
    import os
    import platform

    path = Path(path)
    pr5 = baseline_capacity()
    series = []
    base = reports[0].throughput if reports else 1.0
    for report in reports:
        row = report.row()
        row["speedup_vs_k1"] = round(report.throughput / base, 2)
        row["vs_pr5_capacity"] = round(report.throughput / pr5, 2)
        series.append(row)
    payload: dict[str, Any] = {
        "pr": 8,
        "description": (
            "Sharded-fabric scaling: aggregate saturated closed-loop "
            "throughput vs shard count K at fixed n per shard, with "
            "composed cross-shard snapshots taken mid-run and every run "
            "checked linearizable per shard and across composed cuts. "
            "speedup_vs_k1 is against the K=1 rung of this series; "
            "vs_pr5_capacity is against the recorded single-cluster "
            "BENCH_PR5 capacity."
        ),
        "host": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
        "baseline": {
            "source": "BENCH_PR5.json headline",
            "k1_capacity": pr5,
        },
        "series": series,
    }
    if reports:
        last = reports[-1]
        payload["headline"] = {
            "backend": last.backend,
            "algorithm": last.algorithm,
            "n": last.n,
            "max_shards": last.shards,
            "k1_throughput": round(reports[0].throughput, 3),
            "max_throughput": round(last.throughput, 3),
            "speedup_vs_k1": round(last.throughput / base, 2),
            "vs_pr5_capacity": round(last.throughput / pr5, 2),
            "linearizable": all(report.ok for report in reports),
        }
    if extra:
        payload.update(extra)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
