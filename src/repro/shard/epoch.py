"""Epoch agreement: who decides the next shard map.

A shard split is a *configuration change*: every router must agree on
the successor :class:`~repro.shard.ring.ShardMap` (and on when it takes
effect) or two routers could disagree about which shard owns a key —
exactly the split-brain a snapshot fabric must rule out.  The principled
primitive for that decision in our failure model is the self-stabilizing
multivalued consensus of Lundström, Raynal & Schiller (see PAPERS.md and
ROADMAP item 5): each proposer submits a candidate map for epoch ``e+1``
and all correct participants decide the *same* candidate, even from a
transiently corrupted starting state.

This module defines the seam the fabric calls through —
:class:`EpochDecider` — plus two implementations: the single-router
:class:`LocalEpochDecider` shortcut and the consensus-backed
:class:`ConsensusEpochDecider`, which runs every epoch install through
:class:`repro.consensus.ConsensusEndpoint` on one shard's node cluster.
Both keep only a sliding window of decided epochs (bounded space);
:meth:`decided` raises :class:`~repro.errors.EpochEvictedError` for
epochs older than the window.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Awaitable, Protocol

from repro.consensus import ConsensusEndpoint
from repro.errors import ConfigurationError, EpochEvictedError
from repro.shard.ring import ShardMap

__all__ = [
    "EpochDecider",
    "LocalEpochDecider",
    "ConsensusEpochDecider",
    "DECIDED_EPOCH_WINDOW",
]

#: How many decided epochs a decider retains.  Reconfigurations are
#: rare and callers consult recent epochs only (the fabric installs a
#: decision as soon as it is made), so a short window suffices — and an
#: unbounded decided map is exactly the ever-growing state the paper's
#: bounded-space discipline forbids.
DECIDED_EPOCH_WINDOW = 16


class EpochDecider(Protocol):
    """Decides which shard map governs each epoch.

    Contract (what the consensus implementation provides):

    * **Agreement** — every caller that decides epoch ``e`` decides the
      same :class:`ShardMap`.
    * **Validity** — the decided map was proposed by some caller.
    * **Monotonicity** — epochs decide in order; a decided epoch is
      never re-decided to a different value.
    * **Self-stabilization** — after transient state corruption the
      decider recovers to a state where the above hold for all future
      epochs (this is what Lundström/Raynal/Schiller's multivalued
      consensus adds over a textbook implementation).

    ``propose`` may be synchronous or return an awaitable — the fabric
    awaits the result if needed (the consensus decider must wait for
    the cluster to agree; the local one never waits).
    """

    def propose(
        self, proposal: ShardMap, current: ShardMap
    ) -> "ShardMap | Awaitable[ShardMap]":
        """Propose ``proposal`` as the successor of ``current``; return
        (or resolve to) the decided map for ``current.epoch + 1`` — not
        necessarily the proposal."""
        ...

    def decided(self, epoch: int) -> ShardMap | None:
        """The map decided for ``epoch``, ``None`` if undecided; raises
        :class:`~repro.errors.EpochEvictedError` once evicted."""
        ...


class _DecidedWindow:
    """Sliding window of decided epochs shared by both deciders."""

    def __init__(self, window: int = DECIDED_EPOCH_WINDOW) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self._window = window
        self._decisions: "OrderedDict[int, ShardMap]" = OrderedDict()
        self._evicted_through = -1

    def get(self, epoch: int) -> ShardMap | None:
        decision = self._decisions.get(epoch)
        if decision is not None:
            return decision
        if epoch <= self._evicted_through:
            raise EpochEvictedError(
                f"epoch {epoch} left the decided window "
                f"(evicted through {self._evicted_through}, "
                f"window={self._window}); record decisions at install "
                f"time if you need deep history"
            )
        return None

    def record(self, decision: ShardMap) -> None:
        self._decisions[decision.epoch] = decision
        self._decisions.move_to_end(decision.epoch)
        while len(self._decisions) > self._window:
            evicted, _ = self._decisions.popitem(last=False)
            self._evicted_through = max(self._evicted_through, evicted)


class LocalEpochDecider:
    """Trivial single-router decider: every proposal wins.

    Correct while exactly one :class:`~repro.shard.fabric.ShardedFabric`
    instance routes a deployment.  It still enforces the *shape* of the
    contract — epochs are sequential, a decided epoch is immutable, and
    retention is window-bounded — so swapping in the consensus-backed
    decider is behaviour-preserving for a single router.
    """

    def __init__(self, window: int = DECIDED_EPOCH_WINDOW) -> None:
        self._window = _DecidedWindow(window)

    def propose(self, proposal: ShardMap, current: ShardMap) -> ShardMap:
        """Decide the successor map (first proposal per epoch wins)."""
        if proposal.epoch != current.epoch + 1:
            raise ConfigurationError(
                f"epoch proposal must be {current.epoch + 1}, "
                f"got {proposal.epoch}"
            )
        existing = self._window.get(proposal.epoch)
        if existing is not None:
            return existing
        self._window.record(proposal)
        return proposal

    def decided(self, epoch: int) -> ShardMap | None:
        """The map decided at ``epoch``, or ``None`` if none yet."""
        return self._window.get(epoch)


def _shard_map_validator(expected_epoch: int):
    """Accept only well-formed ``(epoch, shard_ids, vnodes)`` proposals.

    Runs inside the consensus layer at every node, so a transiently
    corrupted proposal is purged there instead of being installed as a
    routing table.
    """

    def validate(value) -> bool:
        if not isinstance(value, tuple) or len(value) != 3:
            return False
        epoch, shard_ids, vnodes = value
        if not isinstance(epoch, int) or epoch != expected_epoch:
            return False
        if not isinstance(vnodes, int) or vnodes < 1:
            return False
        return (
            isinstance(shard_ids, tuple)
            and len(shard_ids) > 0
            and all(
                isinstance(sid, int) and not isinstance(sid, bool) and sid >= 0
                for sid in shard_ids
            )
            and len(set(shard_ids)) == len(shard_ids)
        )

    return validate


class ConsensusEpochDecider:
    """Consensus-backed decider: the cluster agrees on each epoch.

    Runs every install through the self-stabilizing multivalued
    consensus layer (:mod:`repro.consensus`) on the nodes of one
    backing cluster — the fabric uses its lowest shard, which always
    exists (shards are only ever added).  The map travels as a plain
    ``(epoch, shard_ids, vnodes)`` tuple — :class:`ShardMap` derives
    its ring locally — under the instance tag ``("shard-epoch", e)``,
    so several routers proposing different successors for the same
    epoch decide one common map: exactly the split-brain guard the
    :class:`EpochDecider` contract asks for.
    """

    def __init__(self, backend, window: int = DECIDED_EPOCH_WINDOW) -> None:
        if not getattr(backend, "processes", None):
            raise ConfigurationError(
                "ConsensusEpochDecider needs a created backend with processes"
            )
        self._backend = backend
        self._window = _DecidedWindow(window)
        for process in backend.processes:
            ConsensusEndpoint.ensure(process)

    async def propose(self, proposal: ShardMap, current: ShardMap) -> ShardMap:
        """Propose and await the cluster's decision for the next epoch."""
        if proposal.epoch != current.epoch + 1:
            raise ConfigurationError(
                f"epoch proposal must be {current.epoch + 1}, "
                f"got {proposal.epoch}"
            )
        existing = self._window.get(proposal.epoch)
        if existing is not None:
            return existing
        endpoint = self._backend.processes[0].consensus
        value = (proposal.epoch, tuple(proposal.shard_ids), proposal.vnodes)
        decided = await endpoint.propose(
            ("shard-epoch", proposal.epoch),
            value,
            validator=_shard_map_validator(proposal.epoch),
        )
        if not _shard_map_validator(proposal.epoch)(decided):
            # The decision fell out of the consensus retention window
            # (or was corrupted past the validator at a non-proposer);
            # our own — validated — proposal is the fallback.
            decided = value
        shard_map = ShardMap(
            epoch=decided[0], shard_ids=decided[1], vnodes=decided[2]
        )
        self._window.record(shard_map)
        return shard_map

    def decided(self, epoch: int) -> ShardMap | None:
        """The map this router saw decided at ``epoch``."""
        return self._window.get(epoch)
