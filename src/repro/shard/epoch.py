"""Epoch agreement: who decides the next shard map.

A shard split is a *configuration change*: every router must agree on
the successor :class:`~repro.shard.ring.ShardMap` (and on when it takes
effect) or two routers could disagree about which shard owns a key —
exactly the split-brain a snapshot fabric must rule out.  The principled
primitive for that decision in our failure model is the self-stabilizing
multivalued consensus of Lundström, Raynal & Schiller (see PAPERS.md and
ROADMAP item 5): each proposer submits a candidate map for epoch ``e+1``
and all correct participants decide the *same* candidate, even from a
transiently corrupted starting state.

This module defines the seam the fabric calls through —
:class:`EpochDecider` — plus the single-router trivial implementation
used today.  When ROADMAP item 5 lands the consensus algorithm, it slots
in behind the same two methods and multi-router deployments inherit
agreed epoch changes without the fabric changing.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import ConfigurationError
from repro.shard.ring import ShardMap

__all__ = ["EpochDecider", "LocalEpochDecider"]


class EpochDecider(Protocol):
    """Decides which shard map governs each epoch.

    Contract (what the consensus implementation must provide):

    * **Agreement** — every caller that decides epoch ``e`` decides the
      same :class:`ShardMap`.
    * **Validity** — the decided map was proposed by some caller.
    * **Monotonicity** — epochs decide in order; a decided epoch is
      never re-decided to a different value.
    * **Self-stabilization** — after transient state corruption the
      decider recovers to a state where the above hold for all future
      epochs (this is what Lundström/Raynal/Schiller's multivalued
      consensus adds over a textbook implementation).
    """

    def propose(self, proposal: ShardMap, current: ShardMap) -> ShardMap:
        """Propose ``proposal`` as the successor of ``current``; return
        the decided map for ``current.epoch + 1`` (not necessarily the
        proposal)."""
        ...

    def decided(self, epoch: int) -> ShardMap | None:
        """The map decided for ``epoch``, or ``None`` if undecided."""
        ...


class LocalEpochDecider:
    """Trivial single-router decider: every proposal wins.

    Correct while exactly one :class:`~repro.shard.fabric.ShardedFabric`
    instance routes a deployment (today's topology).  It still enforces
    the *shape* of the contract — epochs are sequential and a decided
    epoch is immutable — so swapping in the consensus-backed decider is
    behaviour-preserving for a single router.
    """

    def __init__(self) -> None:
        self._decisions: dict[int, ShardMap] = {}

    def propose(self, proposal: ShardMap, current: ShardMap) -> ShardMap:
        """Decide the successor map (first proposal per epoch wins)."""
        if proposal.epoch != current.epoch + 1:
            raise ConfigurationError(
                f"epoch proposal must be {current.epoch + 1}, "
                f"got {proposal.epoch}"
            )
        existing = self._decisions.get(proposal.epoch)
        if existing is not None:
            return existing
        self._decisions[proposal.epoch] = proposal
        return proposal

    def decided(self, epoch: int) -> ShardMap | None:
        """The map decided at ``epoch``, or ``None`` if none yet."""
        return self._decisions.get(epoch)
