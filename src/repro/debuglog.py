"""Standard-library logging integration for protocol debugging.

The library itself never logs (hot paths stay silent); this module
attaches observers to a cluster's existing hooks and forwards them to
:mod:`logging`, giving a chronological protocol narrative::

    import logging
    from repro.debuglog import attach_debug_logging

    logging.basicConfig(level=logging.DEBUG, format="%(message)s")
    cluster = SimBackend("ss-always", ClusterConfig(n=3))
    detach = attach_debug_logging(cluster)
    cluster.write_sync(0, b"x")
    detach()

Loggers used: ``repro.net`` (message sends/deliveries), ``repro.cycles``
(asynchronous cycle boundaries).  Everything is prefixed with the
simulated timestamp.
"""

from __future__ import annotations

import logging
from typing import Callable

from repro.backend.sim import SimBackend

__all__ = ["attach_debug_logging"]

_NET_LOGGER = logging.getLogger("repro.net")
_CYCLE_LOGGER = logging.getLogger("repro.cycles")


def attach_debug_logging(
    cluster: SimBackend,
    net_level: int = logging.DEBUG,
    cycle_level: int = logging.INFO,
) -> Callable[[], None]:
    """Attach loggers to a cluster's observability hooks.

    Returns a zero-argument ``detach`` callable that removes the network
    listener (cycle-boundary listeners are append-only on the tracker
    and simply stop mattering once the cluster is discarded).
    """

    def on_network_event(
        event: str, time: float, src: int, dst: int, kind: str
    ) -> None:
        _NET_LOGGER.log(
            net_level,
            "t=%8.2f %-7s p%d -> p%d  %s",
            time,
            event,
            src,
            dst,
            kind,
        )

    def on_cycle(cycle: int) -> None:
        _CYCLE_LOGGER.log(
            cycle_level,
            "t=%8.2f ======= asynchronous cycle %d complete =======",
            cluster.kernel.now,
            cycle,
        )

    cluster.network.trace_listeners.append(on_network_event)
    cluster.tracker.add_boundary_listener(on_cycle)

    def detach() -> None:
        try:
            cluster.network.trace_listeners.remove(on_network_event)
        except ValueError:
            pass

    return detach
