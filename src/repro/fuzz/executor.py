"""The one executor giving every :class:`ScenarioSpec` a deterministic meaning.

:func:`run_spec` builds a :class:`~repro.core.cluster.SimBackend`
from the spec's config dimensions and drives its event program, checking
after each phase:

* **linearizability** of the recorded history
  (:func:`~repro.analysis.linearizability.check_snapshot_history`) before
  every corruption burst and at the end of the run;
* **Definition-1 invariants**
  (:func:`~repro.analysis.invariants.definition1_consistent`) after each
  corruption burst's recovery window and at the end (self-stabilizing
  algorithms only — corruption is skipped for algorithms that do not
  claim recovery);
* **per-operation termination bounds**: an operation invoked while a
  majority is alive and the network unpartitioned must complete within
  :data:`OP_TERMINATION_BOUND` simulated time units.

Runs are pure functions of the spec: the ``RANDOM`` tie-break is seeded
by ``spec.seed``, a pinned ``decision_script`` switches to ``SCRIPTED``,
and the returned :class:`SpecOutcome` carries a canonical history
fingerprint so two runs of the same spec can be compared bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.history import HistoryRecorder
from repro.analysis.invariants import definition1_consistent
from repro.analysis.linearizability import check_snapshot_history
from repro.core.base import SnapshotResult
from repro.backend.sim import SimBackend
from repro.errors import DeadlockError, ResetInProgressError, SimulationError
from repro.fault import TransientFaultInjector
from repro.fuzz.spec import ScenarioSpec
from repro.sim.kernel import TieBreak

__all__ = ["SpecOutcome", "run_spec", "OP_TERMINATION_BOUND"]

#: Simulated-time budget for one operation invoked under good conditions
#: (majority alive, no partition).  Exceeding it is a termination-bound
#: failure; under a partition it is expected and merely heals the network
#: (aborted operations impose no history constraints).
OP_TERMINATION_BOUND = 300.0

#: Cycles granted to a self-stabilizing algorithm to recover after a
#: corruption burst, matching the chaos campaigns.
_RECOVERY_CYCLES = 8

#: Prefixes of algorithm names that claim transient-fault recovery;
#: ``corrupt`` events are skipped (not failed) for anything else.
#: ``amortized`` batches Algorithm 1's quorum rounds but inherits its
#: merge/gossip recovery unchanged, so it keeps the same claim.
_SELF_STABILIZING_PREFIXES = ("ss-", "bounded-ss", "amortized")


@dataclass(frozen=True, slots=True)
class SpecOutcome:
    """The complete observable outcome of one spec execution."""

    ok: bool
    failures: tuple[str, ...]
    applied: int
    skipped: int
    checks: int
    sim_time: float
    events_processed: int
    history: tuple
    decision_log: tuple[tuple[int, int], ...]

    def summary(self) -> str:
        """One-line outcome."""
        verdict = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"{self.applied} events applied ({self.skipped} skipped), "
            f"{self.checks} checks: {verdict}"
        )

    def fingerprint(self) -> dict:
        """JSON-safe identity of the run, for replay comparison."""
        return {
            "sim_time": self.sim_time,
            "events_processed": self.events_processed,
            "history": [list(entry) for entry in self.history],
        }


def _normalize_result(result) -> object:
    if isinstance(result, SnapshotResult):
        return [
            "snapshot",
            list(result.values),
            list(result.vector_clock),
        ]
    return result


def _history_fingerprint(history: HistoryRecorder) -> tuple:
    return tuple(
        (
            record.node_id,
            record.kind,
            record.argument,
            _normalize_result(record.result),
            record.invoked_at,
            record.responded_at,
            record.aborted,
        )
        for record in history.records()
    )


def _is_self_stabilizing(algorithm: str) -> bool:
    return algorithm.startswith(_SELF_STABILIZING_PREFIXES)


class _SpecRun:
    """Mutable state of one execution (one instance per :func:`run_spec`).

    The driver body (:meth:`drive`) is backend-agnostic — it speaks only
    the :class:`~repro.backend.base.ClusterBackend` contract — so the
    same spec program runs on the simulator or, via a pre-built
    ``cluster``, on a live asyncio/UDP deployment.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        capture_decisions: bool,
        cluster=None,
    ) -> None:
        self.spec = spec
        if cluster is not None:
            self.cluster = cluster
        else:
            scripted = spec.decision_script is not None
            self.cluster = SimBackend(
                spec.algorithm,
                spec.config(),
                tie_break=TieBreak.SCRIPTED if scripted else TieBreak.RANDOM,
            )
            if scripted:
                self.cluster.kernel.decision_script = list(spec.decision_script)
            elif capture_decisions:
                self.cluster.kernel.capture_decisions = True
        self.injector = TransientFaultInjector(self.cluster, seed=spec.seed)
        self.failures: list[str] = []
        self.applied = 0
        self.skipped = 0
        self.checks = 0
        self.partitioned = False
        self.stabilizing = _is_self_stabilizing(spec.algorithm)
        self.bounded = spec.algorithm.startswith("bounded")
        self._history_resets = self._resets_seen()

    # -- helpers -----------------------------------------------------------

    def _majority_alive(self) -> bool:
        return (
            len(self.cluster.alive_nodes())
            >= self.cluster.config.majority
        )

    def _node_busy(self, node: int) -> bool:
        return bool(self.cluster.node(node)._ops_in_flight)

    def _resets_seen(self) -> tuple[int, int]:
        """Global-reset evidence: (max epoch, total completed resets)."""
        epochs = resets = 0
        for process in self.cluster.processes:
            epochs = max(epochs, getattr(process, "epoch", 0))
            resets += getattr(process, "resets_completed", 0)
        return epochs, resets

    def _void_history(self) -> None:
        """Start a fresh evidence window (past records impose nothing)."""
        self.cluster.history = HistoryRecorder()
        self._history_resets = self._resets_seen()

    def _check_history(self, context: str) -> None:
        if self.bounded and self._resets_seen() != self._history_resets:
            # A wraparound reset landed inside this window: every index
            # was rebased to 0, so per-writer monotonicity and vector
            # comparisons across the reset are meaningless.  Void the
            # evidence (the reset aborted the operations it caught) and
            # start checking afresh — same treatment as a corruption
            # burst, whose recovery also rewrites state wholesale.
            self._void_history()
            return
        self.checks += 1
        report = check_snapshot_history(
            self.cluster.history.records(),
            self.cluster.config.n,
            # Post-reset windows legitimately observe survivor values at
            # rebased ts 0 until every node has written again.
            allow_rebased_init=self.bounded,
        )
        if not report.ok:
            self.failures.append(f"{context}: {report.summary()}")

    def _check_invariants(self, context: str) -> None:
        if not self.stabilizing:
            return
        self.checks += 1
        report = definition1_consistent(self.cluster)
        if not report.ok:
            self.failures.append(
                f"{context}: invariants violated: {report.failures[:3]}"
            )

    def _heal(self) -> None:
        self.cluster.network.heal()
        self.partitioned = False

    # -- event handlers ----------------------------------------------------

    async def _operate(self, index: int, kind: str, node: int, value) -> None:
        cluster = self.cluster
        if cluster.node(node).crashed or self._node_busy(node):
            self.skipped += 1
            return
        if not self._majority_alive():
            self.skipped += 1
            return
        unobstructed = not self.partitioned
        operation = (
            cluster.write(node, value) if kind == "write" else cluster.snapshot(node)
        )
        self.applied += 1
        try:
            await cluster.kernel.wait_for(operation, timeout=OP_TERMINATION_BOUND)
        except ResetInProgressError:
            # The bounded variants abort operations caught by a global
            # reset; the backend already marked the op aborted in the
            # history (aborted ops impose no constraints), so this is
            # expected behaviour, not a failure.
            await cluster.kernel.sleep(1.0)
        except TimeoutError:
            if unobstructed:
                self.failures.append(
                    f"event {index}: {kind} at node {node} exceeded the "
                    f"termination bound ({OP_TERMINATION_BOUND} time units) "
                    "with a majority alive and no partition"
                )
            # Break the stall either way (a minority-side operation can
            # only complete once the network heals), then let the
            # cancellation settle before the next event.
            self._heal()
            await cluster.kernel.sleep(1.0)

    async def _corrupt(self, index: int, mode: str) -> None:
        from repro.fuzz.spec import BOUNDED_CORRUPTION_MODES

        if not self.stabilizing:
            self.skipped += 1
            return
        cluster = self.cluster
        # A corruption burst voids past evidence: check the history first,
        # corrupt, then give the algorithm its recovery window.
        self._check_history(f"event {index}: pre-corruption")
        mode = mode if mode in BOUNDED_CORRUPTION_MODES else "ts"
        if mode == "ts":
            self.injector.corrupt_write_indices()
        elif mode == "ssn":
            self.injector.corrupt_snapshot_indices()
        elif mode == "registers":
            self.injector.corrupt_registers()
        elif mode == "consensus":
            self.injector.corrupt_consensus()
        else:
            self.injector.scramble_channels()
        self.applied += 1
        self._heal()
        for node in range(cluster.config.n):
            if cluster.node(node).crashed:
                cluster.resume(node)
        cluster.tracker.reset()
        await cluster.tracker.wait_cycles(_RECOVERY_CYCLES)
        self._check_invariants(f"event {index}: post-corruption recovery")
        self._void_history()

    def _crash(self, node: int) -> None:
        cluster = self.cluster
        alive = cluster.alive_nodes()
        if len(alive) <= cluster.config.majority or cluster.node(node).crashed:
            self.skipped += 1
            return
        cluster.crash(node)
        self.applied += 1

    def _resume(self, node: int, mode: str) -> None:
        cluster = self.cluster
        crashed = [p.node_id for p in cluster.processes if p.crashed]
        if not crashed:
            self.skipped += 1
            return
        target = crashed[node % len(crashed)]
        cluster.resume(target, restart=(mode == "restart"))
        self.applied += 1

    def _partition(self, group: tuple[int, ...]) -> None:
        cluster = self.cluster
        n = cluster.config.n
        minority = {i for i in group if 0 <= i < n}
        if not minority or len(minority) > (n - 1) // 2:
            self.skipped += 1
            return
        cluster.network.partition(minority, set(range(n)) - minority)
        self.partitioned = True
        self.applied += 1

    # -- the program -------------------------------------------------------

    async def drive(self) -> None:
        cluster = self.cluster
        for index, event in enumerate(self.spec.events):
            kind = event.kind
            if kind in ("write", "snapshot"):
                await self._operate(index, kind, event.node, event.value)
            elif kind == "crash":
                self._crash(event.node)
            elif kind == "resume":
                self._resume(event.node, event.mode)
            elif kind == "partition":
                self._partition(event.group)
            elif kind == "heal":
                self._heal()
                self.applied += 1
            elif kind == "corrupt":
                await self._corrupt(index, event.mode)
            elif kind == "settle":
                await cluster.kernel.sleep(
                    2.0 * cluster.config.gossip_interval
                )
                self.applied += 1
            if event.gap:
                await cluster.kernel.sleep(event.gap)
        # Final phase: restore full connectivity and liveness, settle,
        # then check everything one last time.
        self._heal()
        for node in range(cluster.config.n):
            if cluster.node(node).crashed:
                cluster.resume(node)
        if self.stabilizing:
            await cluster.tracker.wait_cycles(4)
        else:
            await cluster.kernel.sleep(4.0 * cluster.config.gossip_interval)
        self._check_history("final")
        self._check_invariants("final")


#: Wall-clock guard (seconds) for one whole spec executed on a live
#: backend — generous, so tripping it is itself a liveness failure.
_LIVE_WALL_TIMEOUT = 60.0


def _outcome_from(run: _SpecRun) -> SpecOutcome:
    failures = tuple(run.failures)
    kernel = run.cluster.kernel
    return SpecOutcome(
        ok=not failures,
        failures=failures,
        applied=run.applied,
        skipped=run.skipped,
        checks=run.checks,
        sim_time=kernel.now,
        # Live kernels have no event counter or decision log — the loop
        # schedules itself — so those fingerprint fields stay empty.
        events_processed=getattr(kernel, "events_processed", 0),
        history=_history_fingerprint(run.cluster.history),
        decision_log=tuple(getattr(kernel, "decision_log", ())),
    )


def _run_spec_live(
    spec: ScenarioSpec, backend: str, time_scale: float
) -> SpecOutcome:
    """Execute one spec against a live backend (wall-clock, own loop)."""
    import asyncio

    from repro.backend import backend_capabilities, create_backend

    capabilities = backend_capabilities(backend)  # validates the name
    if spec.decision_script is not None:
        capabilities.require(
            "schedule_pinning", "replaying a pinned decision_script"
        )

    async def main() -> _SpecRun:
        cluster = await create_backend(
            backend, spec.algorithm, spec.config(), time_scale=time_scale
        )
        try:
            run = _SpecRun(spec, capture_decisions=False, cluster=cluster)
            try:
                await asyncio.wait_for(run.drive(), timeout=_LIVE_WALL_TIMEOUT)
            except TimeoutError:
                run.failures.append(
                    f"liveness: spec did not complete within "
                    f"{_LIVE_WALL_TIMEOUT}s wall-clock on {backend}"
                )
            return run
        finally:
            await cluster.close()

    return _outcome_from(asyncio.run(main()))


def run_spec(
    spec: ScenarioSpec,
    capture_decisions: bool = False,
    max_events: int = 5_000_000,
    backend: str = "sim",
    time_scale: float = 0.002,
) -> SpecOutcome:
    """Execute one spec and return its outcome (deterministic on ``sim``).

    ``capture_decisions`` records every same-instant tie decision of a
    ``RANDOM``-mode run in the kernel's decision log without changing the
    run — the raw material the shrinker pins into an explicit
    ``decision_script``.  ``max_events`` bounds the kernel event count; a
    run that exhausts it (or deadlocks) is reported as a liveness
    failure, not an exception.

    With ``backend`` set to ``"asyncio"`` or ``"udp"`` the same event
    program and checks run against a live cluster under a wall-clock
    guard; outcomes are then *not* reproducible run-to-run (the substrate
    schedules itself), and a spec carrying a pinned ``decision_script``
    raises :class:`~repro.errors.ConfigurationError` naming the
    ``schedule_pinning`` capability.
    """
    if backend != "sim":
        return _run_spec_live(spec, backend, time_scale)
    run = _SpecRun(spec, capture_decisions)
    try:
        run.cluster.run_until(run.drive(), max_events=max_events)
    except (TimeoutError, DeadlockError, SimulationError) as exc:
        run.failures.append(f"liveness: {type(exc).__name__}: {exc}")
    return _outcome_from(run)
