"""Counterexample-driven fuzz campaigns over scenario specifications.

The fuzz subsystem closes the loop between the harness's randomized
endurance testing (chaos campaigns) and the model checker's exact
schedule control (the SCRIPTED explorer):

* :mod:`repro.fuzz.spec` — :class:`ScenarioSpec`, a serializable
  generative program of workload operations, fault events, and config
  dimensions, drawn from a seed;
* :mod:`repro.fuzz.executor` — :func:`run_spec`, the one deterministic
  meaning of a spec, with linearizability / invariant / termination
  checks after every phase;
* :mod:`repro.fuzz.shrink` — :func:`shrink_spec`, ddmin + config
  minimization + schedule pinning, turning a failing spec into a minimal
  counterexample with an explicit kernel decision script;
* :mod:`repro.fuzz.runner` — :func:`run_fuzz_campaign` /
  counterexample files / :func:`replay_counterexample`, behind
  ``python -m repro fuzz`` and ``python -m repro replay``.
"""

from repro.fuzz.executor import OP_TERMINATION_BOUND, SpecOutcome, run_spec
from repro.fuzz.runner import (
    COUNTEREXAMPLE_FORMAT,
    FuzzReport,
    ReplayResult,
    load_counterexample,
    replay_counterexample,
    run_fuzz_campaign,
    write_counterexample,
)
from repro.fuzz.shrink import ShrinkResult, shrink_spec
from repro.fuzz.spec import (
    EVENT_KINDS,
    ScenarioEvent,
    ScenarioSpec,
    generate_spec,
)

__all__ = [
    "ScenarioEvent",
    "ScenarioSpec",
    "generate_spec",
    "EVENT_KINDS",
    "SpecOutcome",
    "run_spec",
    "OP_TERMINATION_BOUND",
    "ShrinkResult",
    "shrink_spec",
    "FuzzReport",
    "ReplayResult",
    "run_fuzz_campaign",
    "write_counterexample",
    "load_counterexample",
    "replay_counterexample",
    "COUNTEREXAMPLE_FORMAT",
]
