"""Counterexample minimization: ddmin, config reduction, schedule pinning.

A failing spec found by a fuzz campaign is rarely a good bug report: most
of its events are noise, its cluster is bigger than the bug needs, and
the schedule that triggered it is implicit in a seed.  :func:`shrink_spec`
reduces it in three passes:

1. **ddmin over the event program** — the classic delta-debugging loop:
   remove ever-smaller chunks of events, keeping any reduction that still
   fails.
2. **config minimization** — try a smaller cluster (dropping events that
   reference removed nodes), δ = 0, a loss-free channel, and fixed unit
   delays, keeping each simplification that still fails.
3. **schedule pinning** — re-run the reduced spec with the kernel's
   decision capture on, turning the seeded random schedule into an
   explicit decision script, and attach that script to the spec so the
   counterexample replays through ``SCRIPTED`` mode with no random
   tie-breaking at all.

Every candidate is re-executed from scratch (runs are cheap and
perfectly deterministic), so the result provably still fails.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.fuzz.executor import SpecOutcome, run_spec
from repro.fuzz.spec import ScenarioEvent, ScenarioSpec

__all__ = ["ShrinkResult", "shrink_spec"]


@dataclass(frozen=True, slots=True)
class ShrinkResult:
    """A minimized failing spec plus the bookkeeping of getting there."""

    spec: ScenarioSpec
    outcome: SpecOutcome
    original_events: int
    runs: int

    @property
    def final_events(self) -> int:
        """Event count of the minimized spec."""
        return len(self.spec.events)

    def summary(self) -> str:
        """One-line shrink description."""
        pinned = "pinned schedule" if self.spec.decision_script else "seeded"
        return (
            f"shrunk {self.original_events} -> {self.final_events} events "
            f"in {self.runs} runs ({pinned})"
        )


class _Shrinker:
    def __init__(self, spec: ScenarioSpec, max_runs: int) -> None:
        self.max_runs = max_runs
        self.runs = 0
        self.best = spec
        self.best_outcome: SpecOutcome | None = None

    def fails(self, candidate: ScenarioSpec) -> bool:
        """Whether the candidate still fails (within the run budget)."""
        if self.runs >= self.max_runs:
            return False
        self.runs += 1
        outcome = run_spec(candidate)
        if not outcome.ok:
            self.best = candidate
            self.best_outcome = outcome
            return True
        return False

    # -- pass 1: ddmin over the event list --------------------------------

    def ddmin_events(self) -> None:
        events = list(self.best.events)
        granularity = 2
        while len(events) >= 2 and self.runs < self.max_runs:
            chunk = max(1, len(events) // granularity)
            reduced_somewhere = False
            start = 0
            while start < len(events):
                candidate_events = events[:start] + events[start + chunk:]
                if candidate_events and self.fails(
                    self.best.with_events(candidate_events)
                ):
                    events = candidate_events
                    granularity = max(granularity - 1, 2)
                    reduced_somewhere = True
                    break
                start += chunk
            if not reduced_somewhere:
                if granularity >= len(events):
                    break
                granularity = min(len(events), granularity * 2)

    # -- pass 2: config minimization ---------------------------------------

    def _events_for_n(self, n: int) -> list[ScenarioEvent] | None:
        """The current event list restricted to a smaller cluster."""
        events: list[ScenarioEvent] = []
        for event in self.best.events:
            if event.kind in ("write", "snapshot", "crash", "resume"):
                if event.node >= n:
                    continue
            if event.kind == "partition":
                group = tuple(i for i in event.group if i < n)
                if not group or len(group) > (n - 1) // 2:
                    continue
                event = replace(event, group=group)
            events.append(event)
        return events or None

    def minimize_config(self) -> None:
        # Smaller cluster first: it shrinks every remaining dimension's
        # search space (fewer channels, smaller tie groups).
        for n in range(self.best.n - 1, 2, -1):
            events = self._events_for_n(n)
            if events is None:
                break
            candidate = replace(
                self.best,
                n=n,
                events=tuple(events),
                decision_script=None,
            )
            if not self.fails(candidate):
                break
        for change in (
            {"delta": 0.0},
            {"loss": 0.0, "duplication": 0.0},
            {"min_delay": 1.0, "max_delay": 1.0},
        ):
            candidate = replace(self.best, decision_script=None, **change)
            if all(
                getattr(self.best, key) == value
                for key, value in change.items()
            ):
                continue
            self.fails(candidate)

    # -- pass 3: schedule pinning ------------------------------------------

    def pin_schedule(self) -> None:
        """Convert the reduced spec's random schedule to an explicit script.

        The capture run is behaviourally identical to the plain run, so it
        must still fail; the pinned replay is then verified before the
        script is kept (belt and braces — if SCRIPTED replay ever
        diverged, the seeded spec alone is still a valid counterexample).
        """
        if self.best.decision_script is not None:
            return
        self.runs += 1
        captured = run_spec(self.best, capture_decisions=True)
        if captured.ok:
            return
        script = tuple(choice for choice, _n in captured.decision_log)
        pinned = replace(self.best, decision_script=script)
        self.runs += 1
        outcome = run_spec(pinned)
        if not outcome.ok:
            self.best = pinned
            self.best_outcome = outcome


def shrink_spec(spec: ScenarioSpec, max_runs: int = 500) -> ShrinkResult:
    """Minimize a failing spec; raises ``ValueError`` if it does not fail.

    ``max_runs`` bounds the total number of candidate executions across
    all passes; whatever minimum was reached when the budget runs out is
    returned.
    """
    shrinker = _Shrinker(spec, max_runs)
    if not shrinker.fails(spec):
        raise ValueError(
            "shrink_spec needs a failing spec; this one passed its checks"
        )
    shrinker.ddmin_events()
    shrinker.minimize_config()
    shrinker.pin_schedule()
    assert shrinker.best_outcome is not None
    return ShrinkResult(
        spec=shrinker.best,
        outcome=shrinker.best_outcome,
        original_events=len(spec.events),
        runs=shrinker.runs,
    )
