"""Scenario specifications: serializable generative fuzz programs.

A :class:`ScenarioSpec` is a complete, self-contained description of one
verification run: the configuration dimensions (``n``, δ, channel delay /
loss / duplication, algorithm), an event program over workload operations
(writes and snapshots on chosen nodes) and fault events (crashes,
resumes, partitions, heals, transient corruption bursts), and —
optionally — a pinned kernel decision script that fixes the exact
same-instant schedule.  Specs are pure data: JSON-round-trippable, so a
failing spec can be written to disk as a counterexample file and replayed
bit-identically by ``python -m repro replay``.

:func:`generate_spec` draws a spec from a seed, with the same event mix
the chaos campaigns use; the executor (:mod:`repro.fuzz.executor`) gives
every spec one deterministic meaning.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.config import ClusterConfig, scenario_config
from repro.errors import ConfigurationError

__all__ = [
    "ScenarioEvent",
    "ScenarioSpec",
    "generate_spec",
    "EVENT_KINDS",
    "CORRUPTION_MODES",
    "BOUNDED_CORRUPTION_MODES",
]

#: Every event kind the executor understands.
EVENT_KINDS = (
    "write",
    "snapshot",
    "crash",
    "resume",
    "partition",
    "heal",
    "corrupt",
    "settle",
)

#: Corruption classes a ``corrupt`` event may name (see
#: :class:`repro.fault.TransientFaultInjector`).
CORRUPTION_MODES = ("ts", "ssn", "registers", "channels")

#: Extended corruption classes for the bounded algorithms, which carry a
#: consensus endpoint whose per-instance state is itself a corruption
#: target.  Kept separate from :data:`CORRUPTION_MODES` so existing
#: seeds' RNG draw sequences (and thus their pinned counterexamples) are
#: untouched for every other algorithm.
BOUNDED_CORRUPTION_MODES = CORRUPTION_MODES + ("consensus",)


@dataclass(frozen=True, slots=True)
class ScenarioEvent:
    """One step of a scenario program.

    ``node`` targets write/snapshot/crash/resume events; ``value`` is the
    written payload; ``group`` is a partition's minority side; ``mode``
    selects a corruption class (``corrupt``) or ``"restart"`` semantics
    (``resume``); ``gap`` is the simulated-time pause after the event.
    """

    kind: str
    node: int = 0
    value: str = ""
    group: tuple[int, ...] = ()
    mode: str = ""
    gap: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(f"unknown event kind {self.kind!r}")

    def to_dict(self) -> dict:
        """A JSON-safe dict (stable key set, primitives only)."""
        return {
            "kind": self.kind,
            "node": self.node,
            "value": self.value,
            "group": list(self.group),
            "mode": self.mode,
            "gap": self.gap,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=payload["kind"],
            node=int(payload.get("node", 0)),
            value=payload.get("value", ""),
            group=tuple(int(i) for i in payload.get("group", ())),
            mode=payload.get("mode", ""),
            gap=float(payload.get("gap", 1.0)),
        )


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """A complete fuzz scenario: config dimensions + event program.

    ``decision_script`` of ``None`` means the spec runs under the
    ``RANDOM`` tie-break (seeded, still deterministic); a tuple pins the
    exact same-instant schedule via the kernel's ``SCRIPTED`` tie-break —
    the shrinker's final, fully explicit counterexample form.
    """

    algorithm: str = "ss-always"
    n: int = 4
    seed: int = 0
    delta: float = 2.0
    min_delay: float = 0.5
    max_delay: float = 1.5
    loss: float = 0.0
    duplication: float = 0.0
    events: tuple[ScenarioEvent, ...] = ()
    decision_script: tuple[int, ...] | None = None
    #: Bounded-variant wraparound threshold; ``None`` keeps the config
    #: default (effectively unbounded), so specs for the unbounded
    #: algorithms are unchanged on disk and in behaviour.
    max_int: int | None = None
    #: Transport batch window (maps to ``ChannelConfig.batch_window``);
    #: ``None`` keeps the default unbatched send path, so specs for the
    #: other algorithms are unchanged on disk and in behaviour.
    batch_window: int | None = None

    def config(self) -> ClusterConfig:
        """The cluster configuration this spec describes."""
        overrides = dict(
            n=self.n,
            seed=self.seed,
            delta=self.delta,
            min_delay=self.min_delay,
            max_delay=self.max_delay,
            loss=self.loss,
            duplication=self.duplication,
        )
        if self.max_int is not None:
            overrides["max_int"] = self.max_int
        if self.batch_window is not None:
            overrides["batch"] = self.batch_window
        return scenario_config(**overrides)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe dict representation."""
        payload = {
            "algorithm": self.algorithm,
            "n": self.n,
            "seed": self.seed,
            "delta": self.delta,
            "min_delay": self.min_delay,
            "max_delay": self.max_delay,
            "loss": self.loss,
            "duplication": self.duplication,
            "events": [event.to_dict() for event in self.events],
            "decision_script": (
                None
                if self.decision_script is None
                else list(self.decision_script)
            ),
            "max_int": self.max_int,
            "batch_window": self.batch_window,
        }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`."""
        script = payload.get("decision_script")
        return cls(
            algorithm=payload["algorithm"],
            n=int(payload["n"]),
            seed=int(payload["seed"]),
            delta=float(payload["delta"]),
            min_delay=float(payload["min_delay"]),
            max_delay=float(payload["max_delay"]),
            loss=float(payload["loss"]),
            duplication=float(payload["duplication"]),
            events=tuple(
                ScenarioEvent.from_dict(event) for event in payload["events"]
            ),
            decision_script=None if script is None else tuple(script),
            # .get: counterexample files written before the field existed.
            max_int=(
                None
                if payload.get("max_int") is None
                else int(payload["max_int"])
            ),
            batch_window=(
                None
                if payload.get("batch_window") is None
                else int(payload["batch_window"])
            ),
        )

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, so equal specs are equal bytes)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        """Write the canonical JSON form to ``path``."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "ScenarioSpec":
        """Read a spec previously written with :meth:`save`."""
        return cls.from_json(Path(path).read_text())

    # -- shrinking helpers -------------------------------------------------

    def with_events(self, events) -> "ScenarioSpec":
        """A copy with a different event program (script unpinned)."""
        return replace(self, events=tuple(events), decision_script=None)


#: Event mix for generated specs, mirroring the chaos campaigns' weights
#: (operations dominate; faults and corruption bursts are salted in).
_EVENT_WEIGHTS = (
    ("write", 6),
    ("snapshot", 3),
    ("crash", 1),
    ("resume", 2),
    ("partition", 2),
    ("heal", 2),
    ("corrupt", 1),
    ("settle", 1),
)

_DELAY_PROFILES = ((0.5, 1.5), (1.0, 1.0), (0.2, 2.0))
_LOSS_PROFILES = (0.0, 0.05, 0.1)
_DELTA_PROFILES = (0.0, 1.0, 2.0, 4.0)
#: Wraparound thresholds drawn for bounded-algorithm specs — small
#: enough that a 40-event program crosses them and exercises the
#: consensus-backed global reset.
_MAX_INT_PROFILES = (8, 16, 48)
#: Transport batch windows drawn for ``amortized`` specs (plus ``None``,
#: so the unbatched send path stays in the fuzzed mix too).
_BATCH_WINDOW_PROFILES = (None, 2, 4, 8)


@dataclass(slots=True)
class _Weighted:
    """Internal: flattened weighted kind list for ``rng.choice``."""

    kinds: list[str] = field(default_factory=list)


def generate_spec(
    seed: int,
    algorithm: str = "ss-always",
    events: int = 40,
) -> ScenarioSpec:
    """Draw one scenario spec from a seed.

    Everything — cluster size, δ, the channel model, and the event
    program — derives from ``random.Random(seed)``, so a seed fully
    identifies a spec and a campaign is just a seed range.

    For the bounded algorithms two extra dimensions open up — a small
    ``max_int`` (so wraparound resets actually fire mid-program) and the
    ``consensus`` corruption mode — drawn *after* the shared dimensions
    and only on the bounded path, so every pre-existing seed for the
    other algorithms maps to the byte-identical spec it always did.
    The ``amortized`` variant likewise draws a transport
    ``batch_window`` after the shared dimensions, on its path only.
    """
    bounded = algorithm.startswith("bounded")
    amortized = algorithm == "amortized"
    rng = random.Random(seed)
    n = rng.choice((3, 4, 5))
    delta = rng.choice(_DELTA_PROFILES)
    min_delay, max_delay = rng.choice(_DELAY_PROFILES)
    loss = rng.choice(_LOSS_PROFILES)
    max_int = rng.choice(_MAX_INT_PROFILES) if bounded else None
    batch_window = rng.choice(_BATCH_WINDOW_PROFILES) if amortized else None
    corruption_modes = BOUNDED_CORRUPTION_MODES if bounded else CORRUPTION_MODES
    weighted = _Weighted()
    for kind, weight in _EVENT_WEIGHTS:
        weighted.kinds.extend([kind] * weight)
    program: list[ScenarioEvent] = []
    for index in range(events):
        kind = rng.choice(weighted.kinds)
        node = rng.randrange(n)
        gap = round(rng.uniform(0.0, 2.5), 2)
        if kind == "write":
            event = ScenarioEvent(
                kind=kind, node=node, value=f"w{index}", gap=gap
            )
        elif kind == "partition":
            size = rng.randrange(1, max(2, (n - 1) // 2 + 1))
            group = tuple(sorted(rng.sample(range(n), size)))
            event = ScenarioEvent(kind=kind, group=group, gap=gap)
        elif kind == "resume":
            mode = "restart" if rng.random() < 0.3 else ""
            event = ScenarioEvent(kind=kind, node=node, mode=mode, gap=gap)
        elif kind == "corrupt":
            mode = rng.choice(corruption_modes)
            event = ScenarioEvent(kind=kind, mode=mode, gap=gap)
        else:
            event = ScenarioEvent(kind=kind, node=node, gap=gap)
        program.append(event)
    return ScenarioSpec(
        algorithm=algorithm,
        n=n,
        seed=seed,
        delta=delta,
        min_delay=min_delay,
        max_delay=max_delay,
        loss=loss,
        duplication=round(loss / 2, 3),
        events=tuple(program),
        max_int=max_int,
        batch_window=batch_window,
    )
