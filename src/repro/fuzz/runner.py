"""Fuzz campaigns: seed fan-out, shrinking, counterexample files.

:func:`run_fuzz_campaign` is the campaign entry point behind
``python -m repro fuzz``: it generates one :class:`ScenarioSpec` per
seed, probes them through :func:`run_spec` (fanning out across worker
processes via :mod:`repro.harness.parallel` — results merge in seed
order, so ``--jobs 4`` output is identical to ``--jobs 1``), then
shrinks every failing spec to a minimal deterministic counterexample
and, when ``out_dir`` is given, writes each one as a JSON file that
``python -m repro replay`` reproduces bit-identically.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.fuzz.executor import SpecOutcome, run_spec
from repro.fuzz.shrink import shrink_spec
from repro.fuzz.spec import ScenarioSpec, generate_spec

__all__ = [
    "FuzzReport",
    "ReplayResult",
    "run_fuzz_campaign",
    "write_counterexample",
    "load_counterexample",
    "replay_counterexample",
    "COUNTEREXAMPLE_FORMAT",
]

#: ``format`` marker of counterexample files (versioned for evolution).
COUNTEREXAMPLE_FORMAT = "repro-fuzz-counterexample"
COUNTEREXAMPLE_VERSION = 1


@dataclass(frozen=True, slots=True)
class FuzzReport:
    """Outcome of one fuzzed seed, after any shrinking."""

    seed: int
    algorithm: str
    events: int
    ok: bool
    failures: tuple[str, ...] = ()
    shrunk_events: int | None = None
    shrink_runs: int = 0
    counterexample: str | None = None

    def summary(self) -> str:
        """One-line outcome."""
        if self.ok:
            return f"seed {self.seed}: {self.events} events: OK"
        parts = [
            f"seed {self.seed}: {len(self.failures)} FAILURES",
        ]
        if self.shrunk_events is not None:
            parts.append(
                f"shrunk {self.events} -> {self.shrunk_events} events "
                f"({self.shrink_runs} runs)"
            )
        if self.counterexample:
            parts.append(self.counterexample)
        return ", ".join(parts)


@dataclass(frozen=True, slots=True)
class ReplayResult:
    """Outcome of replaying a counterexample file."""

    outcome: SpecOutcome
    reproduced: bool
    fingerprint_matches: bool
    fingerprint_checked: bool = True

    @property
    def ok(self) -> bool:
        """A replay is good when it reproduces the recorded violation."""
        return self.reproduced and self.fingerprint_matches

    def summary(self) -> str:
        """One-line outcome."""
        if self.ok:
            if not self.fingerprint_checked:
                return (
                    f"violation reproduced on a live backend "
                    f"({len(self.outcome.failures)} failures; bit-identical "
                    f"fingerprint comparison requires the sim backend)"
                )
            return (
                f"violation reproduced bit-identically "
                f"({len(self.outcome.failures)} failures, "
                f"t={self.outcome.sim_time:g})"
            )
        if not self.reproduced:
            return "replay DID NOT reproduce the recorded violation"
        return "violation reproduced but the run fingerprint DIVERGED"


# -- counterexample files ----------------------------------------------------


def write_counterexample(
    path: str | Path,
    spec: ScenarioSpec,
    outcome: SpecOutcome,
    shrink_info: dict | None = None,
    backend: str = "sim",
) -> None:
    """Write a failing spec plus its evidence as a counterexample file.

    Counterexamples found on a live backend record that backend; replay
    then re-runs them there by default (checking violation reproduction
    only — the run fingerprint is a sim-determinism artifact).
    """
    payload = {
        "format": COUNTEREXAMPLE_FORMAT,
        "version": COUNTEREXAMPLE_VERSION,
        "spec": spec.to_dict(),
        "failures": list(outcome.failures),
        "fingerprint": outcome.fingerprint(),
    }
    if backend != "sim":
        payload["backend"] = backend
    if shrink_info:
        payload["shrink"] = shrink_info
    text = json.dumps(payload, sort_keys=True, indent=2) + "\n"
    Path(path).write_text(text)


def load_counterexample(path: str | Path) -> tuple[ScenarioSpec, dict]:
    """Read a counterexample file; returns ``(spec, full_payload)``."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != COUNTEREXAMPLE_FORMAT:
        raise ValueError(
            f"{path}: not a {COUNTEREXAMPLE_FORMAT} file "
            f"(format={payload.get('format')!r})"
        )
    return ScenarioSpec.from_dict(payload["spec"]), payload


def replay_counterexample(
    path: str | Path, backend: str | None = None
) -> ReplayResult:
    """Re-execute a counterexample and compare against its recording.

    ``backend`` overrides where the spec re-runs (default: the backend
    recorded in the file, or ``sim``).  On the sim backend the replay
    must match the recorded fingerprint bit-for-bit; on a live backend
    only violation reproduction is checked — wall-clock runs have no
    deterministic fingerprint — and a pinned ``decision_script`` raises
    :class:`~repro.errors.ConfigurationError` (``schedule_pinning`` is
    sim-only).
    """
    spec, payload = load_counterexample(path)
    backend = backend if backend is not None else payload.get("backend", "sim")
    outcome = run_spec(spec, backend=backend)
    reproduced = (not outcome.ok) and list(outcome.failures) == payload[
        "failures"
    ]
    fingerprint_checked = backend == "sim"
    fingerprint_matches = (
        outcome.fingerprint() == payload["fingerprint"]
        if fingerprint_checked
        else True
    )
    return ReplayResult(
        outcome=outcome,
        reproduced=reproduced,
        fingerprint_matches=fingerprint_matches,
        fingerprint_checked=fingerprint_checked,
    )


# -- the campaign ------------------------------------------------------------


def probe_seed(seed: int, algorithm: str, budget: int) -> SpecOutcome:
    """Generate and execute one seed's spec (the parallel worker body)."""
    return run_spec(generate_spec(seed, algorithm=algorithm, events=budget))


def run_fuzz_campaign(
    seeds: Iterable[int],
    jobs: int = 1,
    algorithm: str = "ss-always",
    budget: int = 40,
    out_dir: str | Path | None = None,
    shrink: bool = True,
    max_shrink_runs: int = 500,
    backend: str = "sim",
    time_scale: float = 0.002,
) -> list[FuzzReport]:
    """Fuzz one generated spec per seed; shrink and record every failure.

    On the ``sim`` backend, probing fans out across ``jobs`` worker
    processes; shrinking runs in the parent (it is a sequential search,
    and failures are rare).  With ``out_dir`` set, each failing seed
    leaves a ``counterexample-<algorithm>-<seed>.json`` file there.

    On a live backend (``asyncio``/``udp``) the same generated specs run
    against wall-clock clusters — serially (worker fan-out is a sim
    capability; ``jobs`` > 1 raises ``ConfigurationError``) and without
    shrinking (the shrinker's schedule pinning needs the deterministic
    simulator; failures are recorded unshrunk, with the backend noted in
    the counterexample file).
    """
    from repro.harness.parallel import fuzz_cells, run_cells

    seeds = list(seeds)
    if backend != "sim":
        from repro.backend import backend_capabilities

        capabilities = backend_capabilities(backend)  # validates the name
        if jobs > 1:
            capabilities.require("process_fanout", f"--jobs {jobs}")
        if shrink:
            print(
                "note: shrinking requires the deterministic 'sim' backend "
                f"(schedule pinning); recording {backend} failures unshrunk",
                file=sys.stderr,
            )
            shrink = False
        outcomes: Sequence[SpecOutcome] = [
            run_spec(
                generate_spec(seed, algorithm=algorithm, events=budget),
                backend=backend,
                time_scale=time_scale,
            )
            for seed in seeds
        ]
    else:
        outcomes = run_cells(
            fuzz_cells(seeds, algorithm=algorithm, budget=budget), jobs=jobs
        )
    reports: list[FuzzReport] = []
    for seed, outcome in zip(seeds, outcomes):
        if outcome.ok:
            reports.append(
                FuzzReport(
                    seed=seed,
                    algorithm=algorithm,
                    events=budget,
                    ok=True,
                )
            )
            continue
        spec = generate_spec(seed, algorithm=algorithm, events=budget)
        shrunk_events: int | None = None
        shrink_runs = 0
        shrink_info: dict | None = None
        final_spec, final_outcome = spec, outcome
        if shrink:
            result = shrink_spec(spec, max_runs=max_shrink_runs)
            final_spec, final_outcome = result.spec, result.outcome
            shrunk_events = result.final_events
            shrink_runs = result.runs
            shrink_info = {
                "original_events": result.original_events,
                "final_events": result.final_events,
                "runs": result.runs,
            }
        counterexample: str | None = None
        if out_dir is not None:
            directory = Path(out_dir)
            directory.mkdir(parents=True, exist_ok=True)
            target = directory / f"counterexample-{algorithm}-{seed}.json"
            write_counterexample(
                target, final_spec, final_outcome, shrink_info, backend=backend
            )
            counterexample = str(target)
        reports.append(
            FuzzReport(
                seed=seed,
                algorithm=algorithm,
                events=budget,
                ok=False,
                failures=final_outcome.failures,
                shrunk_events=shrunk_events,
                shrink_runs=shrink_runs,
                counterexample=counterexample,
            )
        )
    return reports
