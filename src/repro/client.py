"""`SnapshotClient` — the one façade every caller starts from.

The library grew four ways to talk to a snapshot object (raw
``SimBackend``, ``create_backend``, the fabric, the load harnesses);
this module is the API-redesign convergence point: **one** keyed
facade with three essential methods —

* :meth:`SnapshotClient.write` — write a value under a key,
* :meth:`SnapshotClient.snapshot` — one linearizable cut of every key,
* :meth:`SnapshotClient.close` — tear the deployment down,

backed by a :class:`~repro.shard.fabric.ShardedFabric` of any size on
any backend.  A single-cluster deployment is just the one-shard fabric,
so callers never branch on topology: the same program runs against one
simulated cluster or eight UDP shards by changing ``connect()``
arguments.

Construction:

* :meth:`SnapshotClient.local` — synchronous, simulator-backed; the
  entry point for examples, docs and tests (deterministic, no event
  loop needed — drive it with the ``*_sync`` helpers).
* :meth:`SnapshotClient.connect` — ``await``-able, any backend
  (``sim``/``asyncio``/``udp``), K shards.
* ``SnapshotClient(fabric_or_backend)`` — wrap something you already
  built (an existing fabric, or a single
  :class:`~repro.backend.base.ClusterBackend`).
"""

from __future__ import annotations

from typing import Any

from repro.backend.base import ClusterBackend
from repro.config import ClusterConfig
from repro.errors import ConfigurationError
from repro.shard.fabric import (
    ComposedSnapshot,
    KeyView,
    ShardedFabric,
    SplitReport,
    build_sim_fabric,
    create_fabric,
)
from repro.shard.ring import ShardMap

__all__ = ["SnapshotClient"]


class SnapshotClient:
    """Keyed writes and linearizable snapshots over any deployment."""

    def __init__(self, target: ShardedFabric | ClusterBackend) -> None:
        if isinstance(target, ShardedFabric):
            self.fabric = target
        elif isinstance(target, ClusterBackend):
            self.fabric = ShardedFabric(
                {0: target},
                ShardMap(epoch=0, shard_ids=(0,)),
                backend_name=target.capabilities.backend,
                algorithm=target.algorithm_name,
                base_config=target.config,
            )
        else:
            raise ConfigurationError(
                f"SnapshotClient wraps a ShardedFabric or a ClusterBackend, "
                f"got {type(target).__name__}"
            )

    # -- construction ------------------------------------------------------

    @classmethod
    def local(
        cls,
        shards: int = 1,
        algorithm: str = "ss-nonblocking",
        config: ClusterConfig | None = None,
        **kwargs: Any,
    ) -> "SnapshotClient":
        """A simulator-backed client, built synchronously.

        Deterministic (same config seed ⇒ same history) and loop-free:
        pair with :meth:`write_sync` / :meth:`snapshot_sync` /
        :meth:`run` to drive it from plain code.
        """
        return cls(build_sim_fabric(shards, algorithm, config, **kwargs))

    @classmethod
    async def connect(
        cls,
        backend: str = "sim",
        shards: int = 1,
        algorithm: str = "ss-nonblocking",
        config: ClusterConfig | None = None,
        **kwargs: Any,
    ) -> "SnapshotClient":
        """Deploy ``shards`` clusters on ``backend`` and wrap them."""
        return cls(
            await create_fabric(backend, shards, algorithm, config, **kwargs)
        )

    # -- the facade --------------------------------------------------------

    async def write(self, key: Any, value: Any) -> int:
        """Write ``value`` under ``key``; returns the key's version."""
        return await self.fabric.write(key, value)

    async def snapshot(self) -> ComposedSnapshot:
        """One linearizable cut of the whole keyspace (all shards)."""
        return await self.fabric.compose_snapshot()

    async def read(self, key: Any) -> KeyView:
        """Read one key through an atomic scan of its shard."""
        return await self.fabric.scan(key)

    async def split(self) -> SplitReport:
        """Grow the deployment by one shard, migrating keys online."""
        return await self.fabric.split()

    async def close(self) -> None:
        """Tear every shard down; idempotent."""
        await self.fabric.close()

    # -- introspection -----------------------------------------------------

    @property
    def shards(self) -> int:
        """Number of shards behind the facade."""
        return self.fabric.map.shards

    @property
    def epoch(self) -> int:
        """The installed shard-map epoch."""
        return self.fabric.epoch

    def check(self) -> list[str]:
        """Run the full two-layer linearizability checker."""
        return self.fabric.check()

    # -- synchronous helpers (simulator only) ------------------------------

    def _require_sim(self, wanted: str) -> None:
        capabilities = self.fabric.backends()[0].capabilities
        capabilities.require("simulated_time", wanted)

    def run(self, coro: Any, max_events: int | None = 2_000_000) -> Any:
        """Drive the simulated timeline until ``coro`` completes."""
        self._require_sim("SnapshotClient.run()")
        return self.fabric.kernel.run_until_complete(
            coro, max_events=max_events
        )

    def write_sync(self, key: Any, value: Any) -> int:
        """Synchronous :meth:`write` (simulator only)."""
        self._require_sim("SnapshotClient.write_sync()")
        return self.run(self.write(key, value))

    def snapshot_sync(self) -> ComposedSnapshot:
        """Synchronous :meth:`snapshot` (simulator only)."""
        self._require_sim("SnapshotClient.snapshot_sync()")
        return self.run(self.snapshot())

    def read_sync(self, key: Any) -> KeyView:
        """Synchronous :meth:`read` (simulator only)."""
        self._require_sim("SnapshotClient.read_sync()")
        return self.run(self.read(key))

    def split_sync(self) -> SplitReport:
        """Synchronous :meth:`split` (simulator only)."""
        self._require_sim("SnapshotClient.split_sync()")
        return self.run(self.split())

    def __repr__(self) -> str:
        return f"<SnapshotClient {self.fabric!r}>"
