"""Exception hierarchy for the ``repro`` library.

Every exception raised deliberately by the library derives from
:class:`ReproError` so that callers can catch library failures without
masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly or reached a bad state."""


class DeadlockError(SimulationError):
    """The kernel ran out of events while tasks were still waiting.

    This usually means an algorithm is blocked on a message that can never
    arrive (for example, too many nodes have crashed for a majority quorum
    to form).
    """


class CancelledError(ReproError):
    """A simulated task or future was cancelled.

    Mirrors :class:`asyncio.CancelledError` for the deterministic kernel.
    """


class InvalidTransitionError(SimulationError):
    """A future or task was driven through an illegal state transition."""


class NetworkError(ReproError):
    """Misuse of the simulated network fabric (unknown node, bad address)."""


class NodeCrashedError(ReproError):
    """An operation was invoked on a node that is currently crashed."""


class ConfigurationError(ReproError):
    """An invalid cluster, channel, or algorithm configuration was supplied."""


class EpochEvictedError(ReproError):
    """A decided epoch was asked for after its retention window closed.

    The epoch deciders (:mod:`repro.shard.epoch`) keep only a sliding
    window of decided shard maps — unbounded retention is exactly the
    kind of ever-growing state the paper's bounded-space discipline
    forbids.  Callers that need history older than the window must
    record it themselves at decision time.
    """


class HistoryError(ReproError):
    """An operation history is malformed (e.g. response without invocation)."""


class LinearizabilityError(ReproError):
    """Raised when a history fails a linearizability check in strict mode."""


class ObservabilityError(ReproError):
    """Misuse of the observability layer (metrics registry, spans, windows).

    Raised e.g. when a :class:`~repro.analysis.metrics.TrafficWindow`'s
    ``stats`` is read before the window closed, or when a registry
    instrument name is reused with a different instrument type.
    """


class ResetInProgressError(ReproError):
    """An operation was rejected because a global reset is in progress.

    The bounded-counter variant (paper Section 5) disables new operations
    while the consensus-based global reset executes.  Operations invoked in
    that window are aborted with this error; the paper's criteria explicitly
    permit aborting a bounded number of operations during the seldom reset.
    """
