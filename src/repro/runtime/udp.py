"""Localhost UDP transport: the algorithms over real datagrams.

The simulated :class:`~repro.net.network.Network` *models* loss,
duplication, and reordering; this transport gets them for real from UDP.
Each node binds its own datagram socket on 127.0.0.1; messages travel in
the library's own binary codec (:mod:`repro.net.codec`) — no pickle, so
a malformed or hostile datagram can at worst be dropped (which the fault
model already covers as loss).  The quorum service's retransmission
makes the algorithms indifferent to datagram loss, exactly as the
paper's communication-fairness assumption intends.

Localhost UDP is *too* reliable to exercise the fault model on its own,
so every outgoing datagram passes through a :class:`DatagramFaultGate` —
a shim between codec and socket that applies the cluster's
:class:`~repro.config.ChannelConfig` loss/duplication/delay (hence
reorder) probabilities and any partition schedule to live packets,
mirroring the simulated channel's behaviour (and its RNG draw order) on
real sockets.  Chaos and fuzz campaigns thereby speak the same scenario
vocabulary over the wire.

The cluster facade lives in :class:`repro.backend.udp.UdpBackend`;
this module holds the transport only.
"""

from __future__ import annotations

import asyncio
import random
import struct
from typing import Any, Callable

from repro.analysis.metrics import MetricsCollector
from repro.config import ChannelConfig, ClusterConfig
from repro.errors import NetworkError
from repro.net.batch import BatchMessage, BatchWindow
from repro.net.codec import CodecError, decode_message, encode_message
from repro.net.message import Message
from repro.runtime.asyncio_kernel import AsyncioKernel

__all__ = ["DatagramFaultGate", "UdpNetwork"]


class _NodeProtocol(asyncio.DatagramProtocol):
    """Datagram endpoint for one node; forwards packets to the fabric."""

    def __init__(self, network: "UdpNetwork", node_id: int) -> None:
        self._network = network
        self._node_id = node_id

    def datagram_received(self, data: bytes, addr) -> None:
        self._network._on_datagram(self._node_id, data)

    def error_received(self, exc) -> None:  # pragma: no cover - OS-dependent
        pass


class DatagramFaultGate:
    """Applies the channel fault model to live datagrams before the socket.

    The simulated :class:`~repro.net.channel.Channel` draws loss, delay,
    and duplication from a seeded RNG; this gate makes the same draws in
    the same order for every outgoing datagram — a *blocked* (partitioned)
    packet draws nothing; otherwise loss uniform, then (if the packet
    survives and fits under the per-pair capacity bound) delay uniform,
    then duplication uniform, then the duplicate's delay uniform.  Held
    packets are released onto the socket after their delay, so reordering
    emerges from delay variance exactly as in the model.

    Partitions are group-membership based like
    :meth:`~repro.net.network.Network.partition`, and are enforced both
    when a packet is submitted and again when a delayed packet is
    released (mirroring the channel's drop of in-flight packets crossing
    a partition).
    """

    def __init__(
        self,
        kernel: AsyncioKernel,
        rng: random.Random,
        config: ChannelConfig,
        transmit: Callable[[int, int, bytes], None],
        metrics: MetricsCollector | None = None,
    ) -> None:
        self._kernel = kernel
        self._rng = rng
        self._transmit = transmit
        self._metrics = metrics
        self._loss_p = config.loss_probability
        self._dup_p = config.duplication_probability
        self._capacity = config.capacity
        self._min_delay = config.min_delay
        self._max_delay = config.max_delay
        #: Packets currently held for delayed release, per directed pair.
        self._held: dict[tuple[int, int], int] = {}
        self._membership: dict[int, int] = {}
        self._throttled: dict[int, float] = {}

    # -- partition schedule ------------------------------------------------

    def blocked(self, src: int, dst: int) -> bool:
        """Whether the current partition blocks the ``src → dst`` path."""
        side_src = self._membership.get(src)
        side_dst = self._membership.get(dst)
        return (
            side_src is not None
            and side_dst is not None
            and side_src != side_dst
        )

    def partition(self, *groups: set) -> None:
        """Block every path crossing between the given node groups."""
        membership: dict[int, int] = {}
        for index, group in enumerate(groups):
            for node_id in group:
                membership[node_id] = index
        self._membership = membership

    def heal(self) -> None:
        """Remove all partitions."""
        self._membership = {}

    def throttle(self, node_id: int, factor: float = 10.0) -> None:
        """Stretch delays on paths touching ``node_id`` by ``factor``.

        Mirrors :meth:`repro.net.network.Network.throttle` (a path
        between two throttled nodes takes the larger factor); the factor
        multiplies the already-drawn delay so the RNG draw order stays
        identical to the simulated channel's.  ``factor=1.0`` restores.
        """
        if factor <= 0.0:
            raise ValueError(f"throttle factor must be > 0, got {factor}")
        self._throttled[node_id] = factor
        if factor == 1.0:
            del self._throttled[node_id]

    def throttled(self) -> dict[int, float]:
        """Currently throttled nodes and their factors."""
        return dict(self._throttled)

    # -- the fault model ---------------------------------------------------

    @property
    def held_total(self) -> int:
        """Datagrams currently held for delayed release."""
        return sum(self._held.values())

    def submit(self, src: int, dst: int, payload: bytes) -> None:
        """Pass one outgoing datagram through the fault model."""
        if self.blocked(src, dst):
            return
        rng = self._rng
        if rng.random() < self._loss_p:
            if self._metrics is not None:
                self._metrics.record_loss()
            return
        self._hold(src, dst, payload)
        if rng.random() < self._dup_p:
            if self._metrics is not None:
                self._metrics.record_duplication()
            self._hold(src, dst, payload)

    def _hold(self, src: int, dst: int, payload: bytes) -> None:
        key = (src, dst)
        if self._held.get(key, 0) >= self._capacity:
            if self._metrics is not None:
                self._metrics.record_capacity_drop()
            return
        self._held[key] = self._held.get(key, 0) + 1
        delay = self._rng.uniform(self._min_delay, self._max_delay)
        if self._throttled:
            delay *= max(
                self._throttled.get(src, 1.0), self._throttled.get(dst, 1.0)
            )
        self._kernel.call_later(delay, self._release, src, dst, payload)

    def _release(self, src: int, dst: int, payload: bytes) -> None:
        key = (src, dst)
        held = self._held.get(key, 0)
        if held:
            self._held[key] = held - 1
        if self.blocked(src, dst):
            return
        self._transmit(src, dst, payload)


class UdpNetwork:
    """A network fabric whose channels are real localhost UDP sockets.

    Presents the same interface the :class:`~repro.net.node.Process`
    class uses (``attach``/``send``/``metrics``), plus the adversary and
    observability hooks of the simulated fabric: ``partition``/``heal``
    (enforced by the :class:`DatagramFaultGate`), ``trace_listeners``,
    and ``in_flight_total``.  In-flight *inspection* does not apply —
    once a datagram is on the wire the OS owns it — so :meth:`channels`
    returns an empty list and channel-content fault injection degrades
    to a no-op.
    """

    def __init__(
        self,
        kernel: AsyncioKernel,
        config: ClusterConfig,
        metrics: MetricsCollector | None = None,
    ) -> None:
        self.kernel = kernel
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsCollector()
        #: Observability hooks: callables invoked as
        #: ``listener(event, time, src, dst, kind)`` where event is
        #: ``"send"`` or ``"deliver"``.  Used by the trace recorder.
        self.trace_listeners: list = []
        self._processes: dict[int, Any] = {}
        self._transports: dict[int, asyncio.DatagramTransport] = {}
        self._addresses: dict[int, tuple[str, int]] = {}
        self._open = False
        # Seeded like the simulated fabric (one draw from the kernel RNG),
        # though live runs are nondeterministic regardless.
        self._gate = DatagramFaultGate(
            kernel,
            random.Random(kernel.rng.getrandbits(64)),
            config.channel,
            self._transmit,
            self.metrics,
        )
        # Transport batching: bundle concurrent same-edge messages into
        # one datagram (one fault-gate pass per bundle).  Constructed
        # only when asked for, mirroring the simulated fabric.
        self._batcher: BatchWindow | None = None
        if config.channel.batch_window > 1:
            self._batcher = BatchWindow(
                kernel,
                config.channel.batch_window,
                self._gate_send,
                self.metrics,
            )

    async def open(self) -> None:
        """Bind one localhost UDP socket per node."""
        loop = asyncio.get_event_loop()
        for node_id in range(self.config.n):
            transport, _protocol = await loop.create_datagram_endpoint(
                lambda node_id=node_id: _NodeProtocol(self, node_id),
                local_addr=("127.0.0.1", 0),
            )
            self._transports[node_id] = transport
            self._addresses[node_id] = transport.get_extra_info("sockname")
        self._open = True

    def close(self) -> None:
        """Close every socket; idempotent (delayed releases become no-ops)."""
        for transport in self._transports.values():
            transport.close()
        self._transports.clear()
        self._addresses.clear()
        self._open = False

    # -- fabric interface --------------------------------------------------

    def attach(self, process: Any) -> None:
        """Register a process for delivery."""
        if process.node_id in self._processes:
            raise NetworkError(f"node {process.node_id} already attached")
        self._processes[process.node_id] = process

    def send(self, src: int, dst: int, message: Message) -> None:
        """Send one message as a datagram (loopback stays in-process)."""
        if src == dst:
            self.kernel.call_soon(self._deliver, src, dst, message)
            return
        if not self._open:
            raise NetworkError("UdpNetwork.open() has not completed")
        if self.metrics._enabled:
            self.metrics.record_send(src, dst, message.KIND, message.wire_size())
        if self.trace_listeners:
            now = self.kernel.now
            kind = message.KIND
            for listener in self.trace_listeners:
                listener("send", now, src, dst, kind)
        if self._batcher is not None:
            self._batcher.push(src, dst, message)
            return
        self._gate_send(src, dst, message)

    def _gate_send(self, src: int, dst: int, message: Message) -> None:
        """Encode one (possibly bundled) message and pass it to the gate."""
        # encode_message caches on the instance: a broadcast encodes once
        # and reuses the bytes for every destination datagram.
        payload = struct.pack(">I", src) + encode_message(message)
        self._gate.submit(src, dst, payload)

    def _transmit(self, src: int, dst: int, payload: bytes) -> None:
        """Put one gate-approved datagram on the wire."""
        if not self._open:
            return
        transport = self._transports.get(src)
        if transport is None or transport.is_closing():
            return
        transport.sendto(payload, self._addresses[dst])

    def _on_datagram(self, dst: int, data: bytes) -> None:
        if len(data) < 4:
            return  # runt datagram: lost
        src = struct.unpack(">I", data[:4])[0]
        if self._gate.blocked(src, dst):
            return  # arrived across a partition: dropped, as in the model
        try:
            message = decode_message(data[4:])
        except CodecError:
            return  # malformed datagram: treated as loss
        self._deliver(src, dst, message)

    def _deliver(self, src: int, dst: int, message: Message) -> None:
        process = self._processes.get(dst)
        if process is None:
            return
        if type(message) is BatchMessage:
            # Unbundle below the process layer (FIFO order preserved):
            # algorithms only ever see the original messages.
            for inner in message.messages:
                if self.trace_listeners and src != dst:
                    for listener in self.trace_listeners:
                        listener(
                            "deliver", self.kernel.now, src, dst, inner.KIND
                        )
                process.deliver(src, inner)
            return
        if self.trace_listeners and src != dst:
            for listener in self.trace_listeners:
                listener("deliver", self.kernel.now, src, dst, message.KIND)
        process.deliver(src, message)

    # -- adversary controls ------------------------------------------------

    def partition(self, *groups: set) -> None:
        """Block datagrams crossing between the given node groups."""
        self._gate.partition(*groups)

    def heal(self) -> None:
        """Remove all partitions."""
        self._gate.heal()

    def throttle(self, node_id: int, factor: float = 10.0) -> None:
        """Make ``node_id`` limp: stretch its datagram delays by ``factor``."""
        self._gate.throttle(node_id, factor)

    def throttled(self) -> dict[int, float]:
        """Currently throttled nodes and their factors."""
        return self._gate.throttled()

    # -- introspection -----------------------------------------------------

    def channels(self) -> list:
        """No inspectable channels: the OS owns in-flight datagrams.

        Returning an empty list makes channel-content fault injection
        (:meth:`~repro.fault.transient.TransientFaultInjector
        .scramble_channels`) a correct no-op on this backend.
        """
        return []

    def in_flight_total(self) -> int:
        """Datagrams currently held in the fault gate's delay stage."""
        return self._gate.held_total
