"""Localhost UDP transport: the algorithms over real datagrams.

The simulated :class:`~repro.net.network.Network` *models* loss,
duplication, and reordering; this transport gets them for real from UDP.
Each node binds its own datagram socket on 127.0.0.1; messages travel in
the library's own binary codec (:mod:`repro.net.codec`) — no pickle, so
a malformed or hostile datagram can at worst be dropped (which the fault
model already covers as loss).  The quorum service's retransmission
makes the algorithms indifferent to datagram loss, exactly as the
paper's communication-fairness assumption intends.

Usage::

    cluster = await UdpSnapshotCluster.create("ss-always", ClusterConfig(n=5))
    await cluster.write(0, b"over-the-wire")
    print((await cluster.snapshot(1)).values)
    await cluster.close()
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any

from repro.analysis.history import SNAPSHOT, WRITE, HistoryRecorder
from repro.analysis.metrics import MetricsCollector
from repro.config import ClusterConfig
from repro.core.cluster import ALGORITHMS
from repro.errors import ConfigurationError, NetworkError
from repro.net.codec import CodecError, decode_message, encode_message
from repro.net.message import Message
from repro.runtime.asyncio_kernel import AsyncioKernel

__all__ = ["UdpNetwork", "UdpSnapshotCluster"]


class _NodeProtocol(asyncio.DatagramProtocol):
    """Datagram endpoint for one node; forwards packets to the fabric."""

    def __init__(self, network: "UdpNetwork", node_id: int) -> None:
        self._network = network
        self._node_id = node_id

    def datagram_received(self, data: bytes, addr) -> None:
        self._network._on_datagram(self._node_id, data)

    def error_received(self, exc) -> None:  # pragma: no cover - OS-dependent
        pass


class UdpNetwork:
    """A network fabric whose channels are real localhost UDP sockets.

    Presents the same interface the :class:`~repro.net.node.Process`
    class uses (``attach``/``send``/``metrics``); channel-model features
    of the simulator (partitions, in-flight inspection) do not apply.
    """

    def __init__(
        self,
        kernel: AsyncioKernel,
        config: ClusterConfig,
        metrics: MetricsCollector | None = None,
    ) -> None:
        self.kernel = kernel
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self._processes: dict[int, Any] = {}
        self._transports: dict[int, asyncio.DatagramTransport] = {}
        self._addresses: dict[int, tuple[str, int]] = {}
        self._open = False

    async def open(self) -> None:
        """Bind one localhost UDP socket per node."""
        loop = asyncio.get_event_loop()
        for node_id in range(self.config.n):
            transport, _protocol = await loop.create_datagram_endpoint(
                lambda node_id=node_id: _NodeProtocol(self, node_id),
                local_addr=("127.0.0.1", 0),
            )
            self._transports[node_id] = transport
            self._addresses[node_id] = transport.get_extra_info("sockname")
        self._open = True

    def close(self) -> None:
        """Close every socket."""
        for transport in self._transports.values():
            transport.close()
        self._open = False

    # -- fabric interface ---------------------------------------------------------

    def attach(self, process: Any) -> None:
        """Register a process for delivery."""
        if process.node_id in self._processes:
            raise NetworkError(f"node {process.node_id} already attached")
        self._processes[process.node_id] = process

    def send(self, src: int, dst: int, message: Message) -> None:
        """Send one message as a datagram (loopback stays in-process)."""
        if src == dst:
            self.kernel.call_soon(self._deliver, src, dst, message)
            return
        if not self._open:
            raise NetworkError("UdpNetwork.open() has not completed")
        if self.metrics._enabled:
            self.metrics.record_send(src, dst, message.kind, message.wire_size())
        # encode_message caches on the instance: a broadcast encodes once
        # and reuses the bytes for every destination datagram.
        payload = struct.pack(">I", src) + encode_message(message)
        self._transports[src].sendto(payload, self._addresses[dst])

    def _on_datagram(self, dst: int, data: bytes) -> None:
        if len(data) < 4:
            return  # runt datagram: lost
        src = struct.unpack(">I", data[:4])[0]
        try:
            message = decode_message(data[4:])
        except CodecError:
            return  # malformed datagram: treated as loss
        self._deliver(src, dst, message)

    def _deliver(self, src: int, dst: int, message: Message) -> None:
        process = self._processes.get(dst)
        if process is not None:
            process.deliver(src, message)


class UdpSnapshotCluster:
    """A snapshot-object deployment over localhost UDP.

    Construct with :meth:`create` (socket binding is asynchronous);
    always :meth:`close` before discarding.
    """

    def __init__(self) -> None:
        raise ConfigurationError("use 'await UdpSnapshotCluster.create(...)'")

    @classmethod
    async def create(
        cls,
        algorithm: str | type = "ss-nonblocking",
        config: ClusterConfig | None = None,
        time_scale: float = 0.01,
    ) -> "UdpSnapshotCluster":
        """Bind sockets, build the processes, start the do-forever loops."""
        if isinstance(algorithm, str):
            try:
                algorithm_cls = ALGORITHMS[algorithm]
            except KeyError:
                raise ConfigurationError(
                    f"unknown algorithm {algorithm!r}"
                ) from None
        else:
            algorithm_cls = algorithm
        self = object.__new__(cls)
        self.config = config if config is not None else ClusterConfig()
        self.kernel = AsyncioKernel(seed=self.config.seed, time_scale=time_scale)
        self.metrics = MetricsCollector()
        self.network = UdpNetwork(self.kernel, self.config, self.metrics)
        await self.network.open()
        self.processes = [
            algorithm_cls(node_id, self.kernel, self.network, self.config)
            for node_id in range(self.config.n)
        ]
        self.history = HistoryRecorder()
        for process in self.processes:
            process.start()
        return self

    async def close(self) -> None:
        """Stop the loops and close the sockets."""
        for process in self.processes:
            process.stop()
        self.network.close()
        await asyncio.sleep(0)  # let cancellations land

    def node(self, node_id: int):
        """The algorithm instance at ``node_id``."""
        return self.processes[node_id]

    async def write(self, node_id: int, value: Any) -> int:
        """Invoke a write and record it in the history."""
        op_id = self.history.invoke(node_id, WRITE, value, now=self.kernel.now)
        try:
            ts = await self.processes[node_id].write(value)
        except BaseException:
            self.history.abort(op_id, now=self.kernel.now)
            raise
        self.history.respond(op_id, result=ts, now=self.kernel.now)
        return ts

    async def snapshot(self, node_id: int):
        """Invoke a snapshot and record it in the history."""
        op_id = self.history.invoke(node_id, SNAPSHOT, now=self.kernel.now)
        try:
            result = await self.processes[node_id].snapshot()
        except BaseException:
            self.history.abort(op_id, now=self.kernel.now)
            raise
        self.history.respond(op_id, result=result, now=self.kernel.now)
        return result

    def crash(self, node_id: int) -> None:
        """Crash a node (its socket stays bound; deliveries are dropped)."""
        self.processes[node_id].crash()

    def resume(self, node_id: int, restart: bool = False) -> None:
        """Resume a crashed node."""
        self.processes[node_id].resume(restart=restart)
