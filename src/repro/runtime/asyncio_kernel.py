"""Asyncio adapter for the kernel interface.

The algorithm classes in :mod:`repro.core` are written against the small
kernel API (``create_future``/``create_task``/``sleep``/``first_of``/
``create_event``/``create_gate``/``call_later``/``rng``).  This module
implements that API on top of a real :mod:`asyncio` event loop, so the
*same* algorithm objects run unmodified over wall-clock time — the
demonstration that the library is deployable, not simulation-bound.

Timing note: the simulated kernel's time unit maps to ``time_scale``
seconds (default 10 ms), so a cluster configured with the default
intervals gossips every ~20 ms on asyncio.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Awaitable, Callable, Coroutine, Iterable

__all__ = ["AsyncioKernel", "AsyncioEvent", "AsyncioGate"]


class AsyncioEvent:
    """``repro.sim.Event``-compatible wrapper over :class:`asyncio.Event`."""

    def __init__(self) -> None:
        self._event = asyncio.Event()

    def is_set(self) -> bool:
        """Whether the event is currently set."""
        return self._event.is_set()

    def set(self) -> None:
        """Set the flag, waking every waiter."""
        self._event.set()

    def clear(self) -> None:
        """Reset the flag."""
        self._event.clear()

    async def wait(self) -> None:
        """Block until the event is set."""
        await self._event.wait()


class AsyncioGate:
    """``repro.sim.Gate``-compatible crash gate over an asyncio event."""

    def __init__(self, open_: bool = True) -> None:
        self._event = asyncio.Event()
        if open_:
            self._event.set()

    @property
    def is_open(self) -> bool:
        return self._event.is_set()

    def close(self) -> None:
        """Close the gate; passthrough() blocks."""
        self._event.clear()

    def open(self) -> None:
        """Open the gate, releasing blocked callers."""
        self._event.set()

    async def passthrough(self) -> None:
        """Return when the gate is open."""
        await self._event.wait()


class AsyncioKernel:
    """Kernel-API facade over the running asyncio event loop."""

    def __init__(self, seed: int = 0, time_scale: float = 0.01) -> None:
        self.rng = random.Random(seed)
        self.time_scale = time_scale
        #: Observability hook (:class:`repro.obs.observe.KernelStats` or
        #: ``None``), set by the obs layer when a session attaches a
        #: cluster running on this kernel.  The asyncio loop has no
        #: batching/timer-pool fast paths, so the stats stay at zero, but
        #: the attribute existing is what lets ``--trace-out``/``--stats``
        #: work on live runs.
        self.obs = None

    # -- clock & scheduling -------------------------------------------------------

    @property
    def _loop(self) -> asyncio.AbstractEventLoop:
        try:
            return asyncio.get_running_loop()
        except RuntimeError:
            return asyncio.get_event_loop()

    @property
    def now(self) -> float:
        """Loop time expressed in simulated units.

        Outside a running loop (e.g. an observability exporter reading
        final span times after ``asyncio.run`` returned) this falls back
        to ``time.monotonic()``, which is the clock ``loop.time()`` is
        built on.
        """
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return time.monotonic() / self.time_scale
        return loop.time() / self.time_scale

    def call_soon(self, callback: Callable[..., None], *args: Any) -> None:
        """Schedule a callback on the running loop."""
        self._loop.call_soon(callback, *args)

    def call_later(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule after ``delay`` simulated units (scaled to seconds)."""
        self._loop.call_later(delay * self.time_scale, callback, *args)

    def call_at(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule at simulated time ``when``."""
        self.call_later(max(when - self.now, 0.0), callback, *args)

    # -- primitives -----------------------------------------------------------------

    def create_future(self) -> asyncio.Future:
        """A pending asyncio future."""
        return self._loop.create_future()

    def create_task(
        self, coro: Coroutine[Any, Any, Any], name: str = ""
    ) -> asyncio.Task:
        """Wrap a coroutine in an asyncio task."""
        return self._loop.create_task(coro, name=name or None)

    def create_event(self) -> AsyncioEvent:
        """An event with the kernel Event interface."""
        return AsyncioEvent()

    def create_gate(self, open_: bool = True) -> AsyncioGate:
        """A crash gate with the kernel Gate interface."""
        return AsyncioGate(open_)

    async def sleep(self, delay: float) -> None:
        """Sleep ``delay`` simulated units of wall-clock-scaled time."""
        await asyncio.sleep(delay * self.time_scale)

    def gather(self, awaitables: Iterable[Awaitable[Any]]) -> Awaitable[list]:
        """Aggregate awaitables into one future of results."""
        return asyncio.gather(*awaitables)

    async def wait_for(self, awaitable: Awaitable[Any], timeout: float) -> Any:
        """Await with a simulated-unit timeout (raises TimeoutError)."""
        return await asyncio.wait_for(
            _ensure_future(awaitable), timeout * self.time_scale
        )

    async def first_of(
        self,
        *awaitables: Awaitable[Any],
        timeout: float | None = None,
        cancel_on_timeout: bool = True,
    ) -> int:
        """Mirror of :meth:`repro.sim.kernel.Kernel.first_of`."""
        futures = [_ensure_future(a) for a in awaitables]
        done, pending = await asyncio.wait(
            futures,
            timeout=None if timeout is None else timeout * self.time_scale,
            return_when=asyncio.FIRST_COMPLETED,
        )
        if done or cancel_on_timeout:
            for future in pending:
                future.cancel()
        if not done:
            return -1
        winner = done.pop()
        index = futures.index(winner)
        winner.result()  # propagate exceptions from the winner
        return index


def _ensure_future(awaitable: Awaitable[Any]) -> asyncio.Future:
    return asyncio.ensure_future(awaitable)
