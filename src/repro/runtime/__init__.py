"""Live runtimes: the same algorithms over an event loop or real UDP.

This package holds the kernel/transport substrate the live backends are
built from.  The legacy cluster facades (``AsyncioSnapshotCluster``,
``UdpSnapshotCluster``) completed their deprecation cycle (aliases since
PR 5, removed in PR 8); the replacements are
:func:`repro.backend.create_backend` and
:class:`repro.client.SnapshotClient`.
"""

from repro.runtime.asyncio_kernel import AsyncioEvent, AsyncioGate, AsyncioKernel
from repro.runtime.udp import DatagramFaultGate, UdpNetwork

__all__ = [
    "AsyncioEvent",
    "AsyncioGate",
    "AsyncioKernel",
    "DatagramFaultGate",
    "UdpNetwork",
]

_REMOVED = {
    "AsyncioSnapshotCluster": "repro.backend.create_backend('asyncio', ...)",
    "UdpSnapshotCluster": "repro.backend.create_backend('udp', ...)",
}


def __getattr__(name: str):
    if name in _REMOVED:
        raise ImportError(
            f"{name} was removed after its deprecation cycle "
            f"(PR 5 → PR 8). Use {_REMOVED[name]} for backend-agnostic "
            f"code, or repro.client.SnapshotClient for the keyed facade."
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
