"""Live runtimes: the same algorithms over an event loop or real UDP.

The legacy cluster facades (``AsyncioSnapshotCluster``,
``UdpSnapshotCluster``) are now thin aliases over the backend package
and resolve lazily here — the backend implementations import this
package's kernel/transport modules, so eager imports would cycle.
"""

from repro.runtime.asyncio_kernel import AsyncioEvent, AsyncioGate, AsyncioKernel
from repro.runtime.udp import DatagramFaultGate, UdpNetwork

__all__ = [
    "AsyncioEvent",
    "AsyncioGate",
    "AsyncioKernel",
    "AsyncioSnapshotCluster",
    "DatagramFaultGate",
    "UdpNetwork",
    "UdpSnapshotCluster",
]


def __getattr__(name: str):
    if name == "AsyncioSnapshotCluster":
        from repro.runtime.cluster import AsyncioSnapshotCluster

        return AsyncioSnapshotCluster
    if name == "UdpSnapshotCluster":
        from repro.backend.udp import UdpSnapshotCluster

        return UdpSnapshotCluster
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
