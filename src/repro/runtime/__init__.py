"""Asyncio runtime: the same algorithms over a live event loop."""

from repro.runtime.asyncio_kernel import AsyncioEvent, AsyncioGate, AsyncioKernel
from repro.runtime.cluster import AsyncioSnapshotCluster
from repro.runtime.udp import UdpNetwork, UdpSnapshotCluster

__all__ = [
    "AsyncioEvent",
    "AsyncioGate",
    "AsyncioKernel",
    "AsyncioSnapshotCluster",
    "UdpNetwork",
    "UdpSnapshotCluster",
]
