"""Asyncio deployment of a snapshot-object cluster.

:class:`AsyncioSnapshotCluster` runs the *same* algorithm classes,
network fabric, metrics, and history recorder as the simulated
:class:`~repro.core.cluster.SnapshotCluster`, but on a live asyncio event
loop: message delays, retransmission timers, and the do-forever loops all
run in (scaled) wall-clock time.  One simulated time unit maps to
``time_scale`` seconds.

Usage::

    async def main():
        cluster = AsyncioSnapshotCluster("ss-always", ClusterConfig(n=5))
        cluster.start()
        await cluster.write(0, b"live")
        print((await cluster.snapshot(1)).values)
        cluster.stop()

    asyncio.run(main())
"""

from __future__ import annotations

import warnings

from repro.backend.aio import AsyncioBackend

__all__ = ["AsyncioSnapshotCluster"]


class AsyncioSnapshotCluster(AsyncioBackend):
    """A snapshot-object deployment driven by the asyncio event loop.

    .. deprecated::
        ``AsyncioSnapshotCluster`` is now a thin alias of
        :class:`repro.backend.aio.AsyncioBackend` — the ``asyncio``
        implementation of the cross-runtime
        :class:`~repro.backend.base.ClusterBackend` contract.  Existing
        code keeps working unchanged (and gains the cycle tracker, fault
        hooks, and observability attachment the sim cluster always had);
        new backend-agnostic code should go through
        :func:`repro.backend.create_backend`.

    Construct *inside* a running event loop (algorithm handlers schedule
    callbacks at construction).  Call ``start()`` to launch the
    do-forever loops and ``stop()`` before discarding the cluster.
    """

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "AsyncioSnapshotCluster is deprecated; use "
            "repro.backend.create_backend('asyncio', ...) or "
            "repro.backend.aio.AsyncioBackend",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)
