"""Asyncio deployment of a snapshot-object cluster.

:class:`AsyncioSnapshotCluster` wires the *same* algorithm classes,
network fabric, metrics, and history recorder as the simulated
:class:`~repro.core.cluster.SnapshotCluster`, but on a live asyncio event
loop: message delays, retransmission timers, and the do-forever loops all
run in (scaled) wall-clock time.  One simulated time unit maps to
``time_scale`` seconds.

Usage::

    async def main():
        cluster = AsyncioSnapshotCluster("ss-always", ClusterConfig(n=5))
        cluster.start()
        await cluster.write(0, b"live")
        print((await cluster.snapshot(1)).values)
        cluster.stop()

    asyncio.run(main())
"""

from __future__ import annotations

from typing import Any

from repro.analysis.history import SNAPSHOT, WRITE, HistoryRecorder
from repro.analysis.metrics import MetricsCollector
from repro.config import ClusterConfig
from repro.core.cluster import ALGORITHMS
from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.runtime.asyncio_kernel import AsyncioKernel

__all__ = ["AsyncioSnapshotCluster"]


class AsyncioSnapshotCluster:
    """A snapshot-object deployment driven by the asyncio event loop.

    Construct *inside* a running event loop (algorithm handlers schedule
    callbacks at construction).  Call :meth:`start` to launch the
    do-forever loops and :meth:`stop` before discarding the cluster.
    """

    def __init__(
        self,
        algorithm: str | type = "ss-nonblocking",
        config: ClusterConfig | None = None,
        time_scale: float = 0.01,
    ) -> None:
        if isinstance(algorithm, str):
            try:
                algorithm_cls = ALGORITHMS[algorithm]
            except KeyError:
                raise ConfigurationError(
                    f"unknown algorithm {algorithm!r}; "
                    f"choose from {sorted(ALGORITHMS)}"
                ) from None
        else:
            algorithm_cls = algorithm
        self.config = config if config is not None else ClusterConfig()
        self.kernel = AsyncioKernel(seed=self.config.seed, time_scale=time_scale)
        self.metrics = MetricsCollector()
        self.network = Network(self.kernel, self.config, self.metrics)
        self.processes = [
            algorithm_cls(node_id, self.kernel, self.network, self.config)
            for node_id in range(self.config.n)
        ]
        self.history = HistoryRecorder()
        self._started = False

    def start(self) -> None:
        """Launch every node's do-forever loop on the event loop."""
        if self._started:
            return
        for process in self.processes:
            process.start()
        self._started = True

    def stop(self) -> None:
        """Cancel the do-forever loops."""
        for process in self.processes:
            process.stop()
        self._started = False

    def node(self, node_id: int):
        """The algorithm instance at ``node_id``."""
        return self.processes[node_id]

    async def write(self, node_id: int, value: Any) -> int:
        """Invoke a write and record it in the history."""
        op_id = self.history.invoke(node_id, WRITE, value, now=self.kernel.now)
        try:
            ts = await self.processes[node_id].write(value)
        except BaseException:
            self.history.abort(op_id, now=self.kernel.now)
            raise
        self.history.respond(op_id, result=ts, now=self.kernel.now)
        return ts

    async def snapshot(self, node_id: int):
        """Invoke a snapshot and record it in the history."""
        op_id = self.history.invoke(node_id, SNAPSHOT, now=self.kernel.now)
        try:
            result = await self.processes[node_id].snapshot()
        except BaseException:
            self.history.abort(op_id, now=self.kernel.now)
            raise
        self.history.respond(op_id, result=result, now=self.kernel.now)
        return result

    def crash(self, node_id: int) -> None:
        """Crash a node."""
        self.processes[node_id].crash()

    def resume(self, node_id: int, restart: bool = False) -> None:
        """Resume a crashed node."""
        self.processes[node_id].resume(restart=restart)
