"""Configuration dataclasses for clusters, channels, and algorithms.

All knobs that an experiment sweeps live here, so a benchmark run is fully
described by ``(ClusterConfig, workload, seed)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError

__all__ = [
    "ChannelConfig",
    "ClusterConfig",
    "UNBOUNDED_DELTA",
    "scenario_config",
]

#: Sentinel for "δ effectively infinite": Algorithm 3 then behaves like the
#: O(n)-messages non-blocking algorithm and never blocks writes.
UNBOUNDED_DELTA = math.inf


@dataclass(frozen=True, slots=True)
class ChannelConfig:
    """Parameters of one unreliable point-to-point channel.

    The paper's channels are bidirectional, bounded-capacity, and may lose,
    duplicate, and reorder packets; there is no bound on delay (we model
    delay as a seeded uniform draw, which under retransmission yields the
    required *communication fairness*).
    """

    min_delay: float = 0.5
    max_delay: float = 1.5
    loss_probability: float = 0.0
    duplication_probability: float = 0.0
    capacity: int = 64
    #: Transport-level op batching: coalesce up to this many messages per
    #: ordered (src, dst) pair into one wire bundle (one loss/delay/
    #: duplication draw for the whole bundle), unbundled FIFO on deliver.
    #: ``1`` (the default) disables batching entirely — the send path is
    #: byte-identical to the pre-batching transport, so seeded schedules
    #: and determinism goldens are unchanged.
    batch_window: int = 1

    def __post_init__(self) -> None:
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ConfigurationError(
                f"need 0 <= min_delay <= max_delay, got "
                f"[{self.min_delay}, {self.max_delay}]"
            )
        if not 0.0 <= self.loss_probability < 1.0:
            raise ConfigurationError(
                f"loss_probability must be in [0, 1), got {self.loss_probability}"
            )
        if not 0.0 <= self.duplication_probability <= 1.0:
            raise ConfigurationError(
                "duplication_probability must be in [0, 1], got "
                f"{self.duplication_probability}"
            )
        if self.capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {self.capacity}")
        if self.batch_window < 1:
            raise ConfigurationError(
                f"batch_window must be >= 1, got {self.batch_window}"
            )

    def reliable(self) -> "ChannelConfig":
        """A copy with loss and duplication disabled (delays kept)."""
        return replace(self, loss_probability=0.0, duplication_probability=0.0)


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Parameters of a simulated n-node cluster.

    Attributes
    ----------
    n:
        Number of nodes.  Correctness requires that fewer than ``n/2``
        nodes fail (the paper's ``2f < n``).
    channel:
        Channel model applied to every ordered node pair.
    retransmit_interval:
        How long a client-side ``repeat broadcast … until`` loop waits
        before re-broadcasting.  This implements the quorum service's
        recovery from packet loss.
    gossip_interval:
        Period of the self-stabilizing do-forever loop (gossip + cleanup).
    delta:
        Algorithm 3's δ: number of observed concurrent writes after which
        writes are temporarily blocked to let snapshots terminate.  Use
        ``0`` for always-blocking (Algorithm 2-like, O(n²) messages) and
        :data:`UNBOUNDED_DELTA` for never-blocking (Algorithm 1-like).
    seed:
        Master seed; kernel and channel RNGs derive from it.
    """

    n: int = 5
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    retransmit_interval: float = 4.0
    gossip_interval: float = 2.0
    delta: float = 0
    seed: int = 0
    #: MAXINT for the bounded-counter variants (Section 5): once any
    #: operation index reaches this value a consensus-based global reset
    #: restarts the indices.  The paper suggests 2**64 - 1; tests use tiny
    #: values so overflow actually happens.
    max_int: int = 2**64 - 1
    #: How the bounded variants decide the reset commit (Step 2):
    #: ``"consensus"`` (the default) agrees on the post-reset state via
    #: the self-stabilizing consensus layer (:mod:`repro.consensus`) and
    #: survives any minority of crashes, including the would-be
    #: coordinator's; ``"coordinator"`` keeps the PR-5 fixed-coordinator
    #: sketch, retained for the regression tests and the E20 comparison.
    reset_mode: str = "consensus"
    #: Override the quorum size used by every "until majority" loop.
    #: ``None`` (the default) means a majority, ⌊n/2⌋+1 — the only value
    #: for which the paper's guarantees hold.  Other values exist for
    #: experiments: larger quorums trade crash tolerance for nothing;
    #: smaller quorums break the intersection property and demonstrably
    #: break linearizability (see the quorum experiments/tests).
    quorum_size: int | None = None

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"need at least 2 nodes, got {self.n}")
        if self.max_int < 4:
            raise ConfigurationError(f"max_int too small: {self.max_int}")
        if self.reset_mode not in ("consensus", "coordinator"):
            raise ConfigurationError(
                f"reset_mode must be 'consensus' or 'coordinator', "
                f"got {self.reset_mode!r}"
            )
        if self.quorum_size is not None and not 1 <= self.quorum_size <= self.n:
            raise ConfigurationError(
                f"quorum_size must be in 1..{self.n}, got {self.quorum_size}"
            )
        if self.retransmit_interval <= 0:
            raise ConfigurationError(
                f"retransmit_interval must be positive, got {self.retransmit_interval}"
            )
        if self.gossip_interval <= 0:
            raise ConfigurationError(
                f"gossip_interval must be positive, got {self.gossip_interval}"
            )
        if self.delta < 0:
            raise ConfigurationError(f"delta must be >= 0, got {self.delta}")

    @property
    def majority(self) -> int:
        """The quorum size every acknowledgement loop waits for.

        ``⌊n/2⌋ + 1`` unless explicitly overridden via ``quorum_size``
        (experiments only; see that field's warning).
        """
        if self.quorum_size is not None:
            return self.quorum_size
        return self.n // 2 + 1

    @property
    def max_crash_faults(self) -> int:
        """Largest ``f`` with ``2f < n`` — the crash-tolerance bound."""
        return (self.n - 1) // 2


def scenario_config(
    *,
    n: int = 5,
    seed: int = 0,
    delta: float = 0.0,
    min_delay: float | None = None,
    max_delay: float | None = None,
    fixed_delay: float | None = None,
    loss: float = 0.0,
    duplication: float | None = None,
    capacity: int | None = None,
    batch: int | None = None,
    **overrides,
) -> ClusterConfig:
    """One factory for every scenario-style cluster configuration.

    The chaos campaigns, the schedule explorer, the recovery experiments,
    and the fuzz executor all describe a cluster the same way — a shape
    (``n``, ``delta``, ``seed``) plus a channel model — but used to spell
    the ``ClusterConfig``/``ChannelConfig`` pair out by hand.  This
    factory is the single spelling.

    Channel knobs: ``fixed_delay`` pins ``min_delay == max_delay`` (what
    the explorer needs — coincident timestamps are its choice points);
    otherwise ``min_delay``/``max_delay`` default to the
    :class:`ChannelConfig` defaults.  ``duplication`` defaults to
    ``loss / 2``, the chaos campaigns' convention.  ``batch`` sets the
    transport batch window (``ChannelConfig.batch_window``; ``None``
    keeps the unbatched default of 1).  Remaining keyword
    arguments (``retransmit_interval``, ``max_int``, ``quorum_size``, …)
    pass through to :class:`ClusterConfig` unchanged.
    """
    if fixed_delay is not None:
        if min_delay is not None or max_delay is not None:
            raise ConfigurationError(
                "pass either fixed_delay or min_delay/max_delay, not both"
            )
        min_delay = max_delay = fixed_delay
    channel_kwargs: dict = {"loss_probability": loss}
    if min_delay is not None:
        channel_kwargs["min_delay"] = min_delay
    if max_delay is not None:
        channel_kwargs["max_delay"] = max_delay
    if capacity is not None:
        channel_kwargs["capacity"] = capacity
    if batch is not None:
        channel_kwargs["batch_window"] = batch
    channel_kwargs["duplication_probability"] = (
        loss / 2 if duplication is None else duplication
    )
    return ClusterConfig(
        n=n,
        seed=seed,
        delta=delta,
        channel=ChannelConfig(**channel_kwargs),
        **overrides,
    )
