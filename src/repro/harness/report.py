"""ASCII table rendering for experiment results."""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = [
    "format_table",
    "print_table",
    "format_bar_chart",
    "print_obs_summary",
]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "—"
        if value == float("inf"):
            return "∞"
        return f"{value:.2f}"
    if value is None:
        return "—"
    return str(value)


def format_table(
    rows: Iterable[Mapping[str, Any]],
    title: str = "",
    columns: list[str] | None = None,
) -> str:
    """Render rows of dicts as a fixed-width ASCII table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n  (no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(len(column), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    rule = "-+-".join("-" * widths[column] for column in columns)
    body = "\n".join(
        " | ".join(_fmt(row.get(column)).rjust(widths[column]) for column in columns)
        for row in rows
    )
    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.extend([header, rule, body])
    return "\n".join(parts)


def print_table(
    rows: Iterable[Mapping[str, Any]],
    title: str = "",
    columns: list[str] | None = None,
) -> None:
    """Print :func:`format_table` output with surrounding blank lines."""
    print()
    print(format_table(rows, title=title, columns=columns))
    print()


def print_obs_summary(obs: Any) -> None:
    """Print an observability session's terminal summary.

    ``obs`` is a :class:`repro.obs.observe.Observability`; its
    :meth:`~repro.obs.observe.Observability.summary` renders the
    operations and metrics tables through :func:`format_table`, so the
    output matches the experiment tables around it.
    """
    print()
    print(obs.summary())
    print()


def format_bar_chart(
    rows: Iterable[Mapping[str, Any]],
    label_key: str,
    value_key: str,
    width: int = 50,
    title: str = "",
) -> str:
    """Render one numeric column of the rows as a horizontal bar chart.

    Infinite values render as a full-width bar tagged ``∞``; the chart is
    scaled to the largest finite value.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n  (no rows)" if title else "(no rows)"
    labels = [_fmt(row.get(label_key)) for row in rows]
    values = [row.get(value_key) for row in rows]
    finite = [
        float(value)
        for value in values
        if isinstance(value, (int, float)) and value == value
        and value != float("inf")
    ]
    peak = max(finite) if finite else 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        if not isinstance(value, (int, float)) or value != value:
            bar, shown = "", "—"
        elif value == float("inf"):
            bar, shown = "█" * width, "∞"
        else:
            bar = "█" * max(int(round(width * float(value) / peak)), 0)
            shown = _fmt(value)
        lines.append(f"{label.rjust(label_width)} | {bar} {shown}")
    return "\n".join(lines)
