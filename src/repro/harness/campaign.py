"""The unified campaign surface shared by chaos, verify, and fuzz.

Every verification campaign in the harness answers to one shape:

* **entry point** — ``run_*_campaigns(seeds, jobs=…, algorithm=…,
  budget=…)`` returning one report per seed, in seed order;
* **report protocol** — each report has ``ok`` (bool), ``failures``
  (iterable of strings), and ``summary()`` (one line);
* **CLI flags** — ``--seeds K``, ``--seed-start S``, ``--algorithm
  NAME``, ``--budget N``, plus ``--jobs N`` and the observability flags.

This module holds the shared plumbing: :func:`extract_campaign_flags`
parses the uniform flags (the historical spellings — ``--algo``,
``--events``, bare positionals — completed their deprecation cycle and
now fail fast with the canonical flag named), and :func:`print_reports`
renders any report sequence the same way, so ``python -m repro
chaos|verify|fuzz`` read identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

__all__ = [
    "CampaignOptions",
    "extract_backend",
    "extract_campaign_flags",
    "print_reports",
    "reject_removed_spellings",
]

#: Flag spellings that completed their deprecation cycle (warned since
#: PR 4/5, removed in PR 8), mapped to the canonical replacement.
REMOVED_FLAGS = {
    "--algo": "--algorithm NAME",
    "--events": "--budget N",
}


def extract_backend(
    argv: list[str], default: str | None = None
) -> tuple[str | None, list[str]]:
    """Split ``--backend NAME`` out of an argv list.

    Returns ``(backend, remaining_args)`` where ``backend`` is the
    validated backend name (``sim``/``asyncio``/``udp``) or ``default``
    when the flag is absent.  An unknown name exits with the available
    choices, so every ``python -m repro`` command rejects typos the same
    way.
    """
    backend = default
    rest: list[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--backend":
            value = next(it, None)
            if value is None:
                raise SystemExit("--backend requires a value")
            backend = value
        elif arg.startswith("--backend="):
            backend = arg.split("=", 1)[1]
        else:
            rest.append(arg)
    if backend is not None:
        from repro.backend import backend_names

        names = backend_names()
        if backend not in names:
            raise SystemExit(
                f"unknown backend {backend!r}; choose from {', '.join(names)}"
            )
    return backend, rest


def reject_removed_spellings(
    rest: Sequence[str], positional_hint: str | None = None
) -> None:
    """Fail fast on spellings whose deprecation cycle has completed.

    Every campaign command calls this on its leftover args: removed flag
    aliases exit naming the canonical flag, and — when the command used
    to accept positionals (``positional_hint`` names the replacement) —
    any bare positional exits too, instead of being silently ignored.
    """
    for arg in rest:
        flag = arg.partition("=")[0]
        if flag in REMOVED_FLAGS:
            raise SystemExit(
                f"{flag} was removed after its deprecation cycle; "
                f"use {REMOVED_FLAGS[flag]}"
            )
    if positional_hint is not None and rest:
        raise SystemExit(
            f"positional arguments were removed after their deprecation "
            f"cycle; use {positional_hint} (got: {' '.join(rest)})"
        )


@dataclass(frozen=True, slots=True)
class CampaignOptions:
    """The uniform knobs of one campaign invocation."""

    seeds: list[int]
    algorithm: str | None
    budget: int

    @property
    def seed_range(self) -> str:
        """Human-readable seed range for banners."""
        if len(self.seeds) == 1:
            return f"seed {self.seeds[0]}"
        return f"seeds {self.seeds[0]}..{self.seeds[-1]}"


def extract_campaign_flags(
    argv: list[str],
    default_budget: int,
    default_seeds: int = 1,
) -> tuple[CampaignOptions, list[str]]:
    """Split the uniform campaign flags out of an argv list.

    Understands ``--seeds K`` (number of consecutive seeds),
    ``--seed-start S`` (first seed, default 0), ``--algorithm NAME``, and
    ``--budget N`` — each also in ``--flag=value`` form.  The removed
    aliases (``--algo``, ``--events``) fail fast via
    :func:`reject_removed_spellings`, which callers apply to the
    remainder.  Returns ``(options, remaining_args)``; the caller decides
    what any remaining args mean.
    """
    values: dict[str, str] = {}
    rest: list[str] = []

    def canonical(flag: str) -> str | None:
        if flag in ("--seeds", "--seed-start", "--algorithm", "--budget"):
            return flag
        return None

    it = iter(argv)
    for arg in it:
        flag, eq, inline = arg.partition("=")
        name = canonical(flag)
        if name is None:
            rest.append(arg)
            continue
        if eq:
            values[name] = inline
        else:
            value = next(it, None)
            if value is None:
                raise SystemExit(f"{flag} requires a value")
            values[name] = value
    try:
        n_seeds = int(values.get("--seeds", default_seeds))
        seed_start = int(values.get("--seed-start", 0))
        budget = int(values.get("--budget", default_budget))
    except ValueError as exc:
        raise SystemExit(f"bad campaign flag value: {exc}") from None
    if n_seeds < 1:
        raise SystemExit(f"--seeds must be >= 1, got {n_seeds}")
    if budget < 1:
        raise SystemExit(f"--budget must be >= 1, got {budget}")
    options = CampaignOptions(
        seeds=list(range(seed_start, seed_start + n_seeds)),
        algorithm=values.get("--algorithm"),
        budget=budget,
    )
    return options, rest


def print_reports(
    seeds: Sequence[int],
    reports: Sequence[Any],
    label_seeds: bool | None = None,
) -> bool:
    """Print any campaign's reports uniformly; returns overall success.

    Works with every report honouring the common protocol (``ok``,
    ``failures``, ``summary()``).  Seed prefixes appear whenever more
    than one seed ran (or ``label_seeds`` forces it).
    """
    show_seed = len(seeds) > 1 if label_seeds is None else label_seeds
    ok = True
    for seed, report in zip(seeds, reports):
        prefix = f"seed {seed}: " if show_seed else ""
        summary = report.summary()
        if summary.startswith(f"seed {seed}:"):
            prefix = ""
        print(prefix + summary)
        for failure in report.failures:
            print("FAILURE:", failure)
        ok = ok and report.ok
    return ok
