"""The unified campaign surface shared by chaos, verify, and fuzz.

Every verification campaign in the harness answers to one shape:

* **entry point** — ``run_*_campaigns(seeds, jobs=…, algorithm=…,
  budget=…)`` returning one report per seed, in seed order;
* **report protocol** — each report has ``ok`` (bool), ``failures``
  (iterable of strings), and ``summary()`` (one line);
* **CLI flags** — ``--seeds K``, ``--seed-start S``, ``--algorithm
  NAME``, ``--budget N``, plus ``--jobs N`` and the observability flags.

This module holds the shared plumbing: :func:`extract_campaign_flags`
parses the uniform flags (and keeps each command's historical spellings
working as hidden deprecated aliases that warn on stderr), and
:func:`print_reports` renders any report sequence the same way, so
``python -m repro chaos|verify|fuzz`` read identically.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Sequence

__all__ = [
    "CampaignOptions",
    "extract_backend",
    "extract_campaign_flags",
    "print_reports",
    "warn_deprecated",
]


def extract_backend(
    argv: list[str], default: str | None = None
) -> tuple[str | None, list[str]]:
    """Split ``--backend NAME`` out of an argv list.

    Returns ``(backend, remaining_args)`` where ``backend`` is the
    validated backend name (``sim``/``asyncio``/``udp``) or ``default``
    when the flag is absent.  An unknown name exits with the available
    choices, so every ``python -m repro`` command rejects typos the same
    way.
    """
    backend = default
    rest: list[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--backend":
            value = next(it, None)
            if value is None:
                raise SystemExit("--backend requires a value")
            backend = value
        elif arg.startswith("--backend="):
            backend = arg.split("=", 1)[1]
        else:
            rest.append(arg)
    if backend is not None:
        from repro.backend import backend_names

        names = backend_names()
        if backend not in names:
            raise SystemExit(
                f"unknown backend {backend!r}; choose from {', '.join(names)}"
            )
    return backend, rest


def warn_deprecated(old: str, new: str) -> None:
    """Tell the user (on stderr, never stdout) to move off an old spelling."""
    print(
        f"note: {old} is deprecated; use {new}",
        file=sys.stderr,
    )


@dataclass(frozen=True, slots=True)
class CampaignOptions:
    """The uniform knobs of one campaign invocation."""

    seeds: list[int]
    algorithm: str | None
    budget: int

    @property
    def seed_range(self) -> str:
        """Human-readable seed range for banners."""
        if len(self.seeds) == 1:
            return f"seed {self.seeds[0]}"
        return f"seeds {self.seeds[0]}..{self.seeds[-1]}"


def extract_campaign_flags(
    argv: list[str],
    default_budget: int,
    default_seeds: int = 1,
    budget_alias: str | None = None,
) -> tuple[CampaignOptions, list[str]]:
    """Split the uniform campaign flags out of an argv list.

    Understands ``--seeds K`` (number of consecutive seeds),
    ``--seed-start S`` (first seed, default 0), ``--algorithm NAME``, and
    ``--budget N`` — each also in ``--flag=value`` form.  ``--algo`` is a
    deprecated alias of ``--algorithm``; ``budget_alias`` (e.g.
    ``"--events"`` for chaos) names a command-specific deprecated alias
    of ``--budget``.  Returns ``(options, remaining_args)``; the caller
    decides what any remaining positionals mean.
    """
    values: dict[str, str] = {}
    rest: list[str] = []

    def canonical(flag: str) -> str | None:
        if flag in ("--seeds", "--seed-start", "--algorithm", "--budget"):
            return flag
        if flag == "--algo":
            warn_deprecated("--algo", "--algorithm")
            return "--algorithm"
        if budget_alias is not None and flag == budget_alias:
            warn_deprecated(budget_alias, "--budget")
            return "--budget"
        return None

    it = iter(argv)
    for arg in it:
        flag, eq, inline = arg.partition("=")
        name = canonical(flag)
        if name is None:
            rest.append(arg)
            continue
        if eq:
            values[name] = inline
        else:
            value = next(it, None)
            if value is None:
                raise SystemExit(f"{flag} requires a value")
            values[name] = value
    try:
        n_seeds = int(values.get("--seeds", default_seeds))
        seed_start = int(values.get("--seed-start", 0))
        budget = int(values.get("--budget", default_budget))
    except ValueError as exc:
        raise SystemExit(f"bad campaign flag value: {exc}") from None
    if n_seeds < 1:
        raise SystemExit(f"--seeds must be >= 1, got {n_seeds}")
    if budget < 1:
        raise SystemExit(f"--budget must be >= 1, got {budget}")
    options = CampaignOptions(
        seeds=list(range(seed_start, seed_start + n_seeds)),
        algorithm=values.get("--algorithm"),
        budget=budget,
    )
    return options, rest


def print_reports(
    seeds: Sequence[int],
    reports: Sequence[Any],
    label_seeds: bool | None = None,
) -> bool:
    """Print any campaign's reports uniformly; returns overall success.

    Works with every report honouring the common protocol (``ok``,
    ``failures``, ``summary()``).  Seed prefixes appear whenever more
    than one seed ran (or ``label_seeds`` forces it).
    """
    show_seed = len(seeds) > 1 if label_seeds is None else label_seeds
    ok = True
    for seed, report in zip(seeds, reports):
        prefix = f"seed {seed}: " if show_seed else ""
        summary = report.summary()
        if summary.startswith(f"seed {seed}:"):
            prefix = ""
        print(prefix + summary)
        for failure in report.failures:
            print("FAILURE:", failure)
        ok = ok and report.ok
    return ok
