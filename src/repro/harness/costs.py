"""Communication-cost experiments: E1–E6 and E15.

Each function returns a list of row dicts; the benchmarks print them via
:mod:`repro.harness.report` and EXPERIMENTS.md records paper-vs-measured.
"""

from __future__ import annotations

from repro.config import ChannelConfig, ClusterConfig, UNBOUNDED_DELTA
from repro.backend.sim import SimBackend
from repro.harness.workloads import value_of_size

__all__ = [
    "e01_nonblocking_op_costs",
    "e02_gossip_overhead",
    "e03_stacking_comparison",
    "e04_always_terminating_costs",
    "e05_delta_snapshot_costs",
    "e06_concurrent_snapshots",
    "e15_message_sizes",
]

#: Reliable channels for cost measurements (losses would add retries).
_RELIABLE = ChannelConfig(loss_probability=0.0, duplication_probability=0.0)


def _cluster(algorithm: str, n: int, seed: int = 0, **kwargs) -> SimBackend:
    config = ClusterConfig(n=n, seed=seed, channel=_RELIABLE, **kwargs)
    return SimBackend(algorithm, config)


def e01_nonblocking_op_costs(n_values=(4, 8, 12, 16), seed=0):
    """E1 (Figure 1 upper): DGFR non-blocking per-operation costs.

    Paper claim: a write and an uncontended snapshot each take one round
    trip of ≈2n messages of O(n·ν) bits.
    """
    rows = []
    for n in n_values:
        cluster = _cluster("dgfr-nonblocking", n, seed)
        with cluster.metrics.window() as write_window:
            cluster.write_sync(0, value_of_size(32))
        node = cluster.node(1)
        ssn_before = node.ssn
        with cluster.metrics.window() as snap_window:
            cluster.snapshot_sync(1)
        rows.append(
            {
                "n": n,
                "write_msgs": write_window.stats.messages(
                    "WRITE", "WRITEack"
                ),
                "write_rtts": 1,
                "snapshot_msgs": snap_window.stats.messages(
                    "SNAPSHOT", "SNAPSHOTack"
                ),
                "snapshot_rtts": node.ssn - ssn_before,
                "theory_2(n-1)": 2 * (n - 1),
            }
        )
    return rows


def e02_gossip_overhead(n_values=(4, 8, 12), cycles=5, seed=0):
    """E2 (Figure 1 lower / Contribution 1): SS gossip overhead.

    Paper claim: the self-stabilizing variant adds O(n²) gossip messages
    of O(ν) bits per cycle; operation costs are unchanged.
    """
    rows = []
    for n in n_values:
        cluster = _cluster("ss-nonblocking", n, seed)
        cluster.write_sync(0, value_of_size(32))
        with cluster.metrics.window() as window:
            cluster.run_until(cluster.settle_cycles(cycles), max_events=None)
        stats = window.stats
        gossip = stats.messages("GOSSIP")
        with cluster.metrics.window() as op_window:
            cluster.write_sync(1, value_of_size(32))
        rows.append(
            {
                "n": n,
                "gossip_msgs_per_cycle": round(gossip / cycles, 1),
                "theory_n(n-1)": n * (n - 1),
                "gossip_bytes_each": (
                    stats.bytes_for("GOSSIP") // gossip if gossip else 0
                ),
                "write_msgs": op_window.stats.messages("WRITE", "WRITEack"),
                "write_bytes_each": (
                    op_window.stats.bytes_for("WRITE")
                    // max(op_window.stats.messages("WRITE"), 1)
                ),
            }
        )
    return rows


def e03_stacking_comparison(n_values=(4, 8, 12, 16), seed=0):
    """E3 (related work): stacked ABD+scan vs DGFR non-stacking snapshot.

    Paper claim: the stacked approach costs ≈8n messages over 4 round
    trips per snapshot; Delporte-Gallet et al. cost 2n over 1 round trip.
    """
    rows = []
    for n in n_values:
        stacked = _cluster("stacked", n, seed)
        stacked.write_sync(0, value_of_size(32))
        with stacked.metrics.window() as stacked_window:
            stacked.snapshot_sync(1)
        dgfr = _cluster("dgfr-nonblocking", n, seed)
        dgfr.write_sync(0, value_of_size(32))
        with dgfr.metrics.window() as dgfr_window:
            dgfr.snapshot_sync(1)
        stacked_msgs = stacked_window.stats.total_messages
        dgfr_msgs = dgfr_window.stats.total_messages
        rows.append(
            {
                "n": n,
                "stacked_msgs": stacked_msgs,
                "stacked_rtts": 4,
                "dgfr_msgs": dgfr_msgs,
                "dgfr_rtts": 1,
                "ratio": round(stacked_msgs / max(dgfr_msgs, 1), 1),
                "theory_ratio": 4.0,
            }
        )
    return rows


def e04_always_terminating_costs(n_values=(4, 6, 8, 10), seed=0):
    """E4 (Figure 2): Algorithm 2 snapshot costs O(n²) messages.

    Every node serves every snapshot task through its own majority query
    rounds, plus reliable-broadcast traffic for SNAP and END.
    """
    rows = []
    for n in n_values:
        cluster = _cluster("dgfr-always", n, seed)
        cluster.write_sync(0, value_of_size(32))
        with cluster.metrics.window() as window:
            cluster.snapshot_sync(1)
            cluster.run_until(cluster.settle_cycles(2), max_events=None)
        stats = window.stats
        rows.append(
            {
                "n": n,
                "query_msgs": stats.messages("SNAPSHOT", "SNAPSHOTack"),
                "rb_msgs": stats.messages("RB", "RBack"),
                "total_msgs": stats.total_messages,
                "theory_n^2": n * n,
            }
        )
    return rows


def e05_delta_snapshot_costs(n_values=(4, 6, 8, 10), seed=0):
    """E5 (Figure 3 upper): Algorithm 3 per-snapshot messages vs δ.

    Paper claim: for large δ an uncontended snapshot costs O(n) messages
    (like Algorithm 1); δ=0 engages every node (like Algorithm 2); and
    either way it beats Algorithm 2's reliable-broadcast-heavy total.
    """
    rows = []
    for n in n_values:
        row = {"n": n}
        for label, delta in (
            ("d0", 0),
            ("d4", 4),
            ("dinf", UNBOUNDED_DELTA),
        ):
            cluster = _cluster("ss-always", n, seed, delta=delta)
            cluster.write_sync(0, value_of_size(32))
            cluster.run_until(cluster.settle_cycles(1), max_events=None)
            with cluster.metrics.window() as window:
                cluster.snapshot_sync(1)
                cluster.run_until(cluster.settle_cycles(2), max_events=None)
            stats = window.stats
            row[f"{label}_msgs"] = (
                stats.total_messages - stats.messages("GOSSIP")
            )
        always = _cluster("dgfr-always", n, seed)
        always.write_sync(0, value_of_size(32))
        with always.metrics.window() as window:
            always.snapshot_sync(1)
            always.run_until(always.settle_cycles(2), max_events=None)
        row["alg2_msgs"] = window.stats.total_messages
        rows.append(row)
    return rows


def e06_concurrent_snapshots(n_values=(4, 6, 8), seed=0):
    """E6 (Figure 3 lower): all nodes snapshot at once.

    Paper claim: Algorithm 2 handles one task at a time at O(n²) messages
    each; Algorithm 3 batches all concurrent tasks (many-jobs stealing),
    so the total message count and completion time grow far slower.
    """
    rows = []
    for n in n_values:
        row = {"n": n}
        for label, algorithm in (("alg2", "dgfr-always"), ("alg3", "ss-always")):
            cluster = _cluster(algorithm, n, seed, delta=0)
            cluster.write_sync(0, value_of_size(32))
            start = cluster.kernel.now

            async def all_snapshot(cluster=cluster):
                snaps = [
                    cluster.spawn(cluster.snapshot(node))
                    for node in range(cluster.config.n)
                ]
                await cluster.kernel.gather(snaps)

            with cluster.metrics.window() as window:
                cluster.run_until(all_snapshot(), max_events=None)
            row[f"{label}_msgs"] = window.stats.total_messages
            row[f"{label}_time"] = round(cluster.kernel.now - start, 1)
        row["msg_ratio"] = round(row["alg2_msgs"] / max(row["alg3_msgs"], 1), 1)
        rows.append(row)
    return rows


def e15_message_sizes(nu_values=(16, 64, 256, 1024), n_values=(4, 12), seed=0):
    """E15 (Contribution 1): operation messages are O(n·ν) bits, gossip O(ν).

    Measured as serialized bytes per message while sweeping the object
    size ν and the cluster size n.
    """
    rows = []
    for n in n_values:
        for nu in nu_values:
            cluster = _cluster("ss-nonblocking", n, seed)
            for node in range(n):
                cluster.write_sync(node, value_of_size(nu, tag=node))
            with cluster.metrics.window() as window:
                cluster.write_sync(0, value_of_size(nu))
                cluster.run_until(cluster.settle_cycles(2), max_events=None)
            stats = window.stats
            write_count = stats.messages("WRITE") or 1
            gossip_count = stats.messages("GOSSIP") or 1
            rows.append(
                {
                    "n": n,
                    "nu_bytes": nu,
                    "write_msg_bytes": stats.bytes_for("WRITE") // write_count,
                    "gossip_msg_bytes": stats.bytes_for("GOSSIP")
                    // gossip_count,
                    "theory_write": f"~{n}*nu",
                    "theory_gossip": "~nu",
                }
            )
    return rows
