"""Reusable workload drivers for experiments and tests."""

from __future__ import annotations

from typing import Any, Iterable

from repro.backend.sim import SimBackend

__all__ = ["ContinuousWriters", "value_of_size"]


def value_of_size(nu_bytes: int, tag: int = 0) -> bytes:
    """An object value of ν = 8·``nu_bytes`` bits (for size experiments)."""
    return bytes([tag % 256]) * nu_bytes


class ContinuousWriters:
    """Saturating write load from a set of nodes.

    Each writer node issues back-to-back write operations until
    :meth:`stop` is called.  Used by the starvation, δ-latency, and
    write-blocking experiments.
    """

    def __init__(
        self,
        cluster: SimBackend,
        nodes: Iterable[int],
        payload: Any = None,
    ) -> None:
        self.cluster = cluster
        self.nodes = list(nodes)
        self.payload = payload
        self.counts: dict[int, int] = {node: 0 for node in self.nodes}
        self._stopped = False
        self._tasks: list = []

    async def _writer(self, node: int) -> None:
        while not self._stopped:
            value = (
                self.payload
                if self.payload is not None
                else (node, self.counts[node])
            )
            await self.cluster.write(node, value)
            self.counts[node] += 1

    def start(self) -> None:
        """Launch one writer task per node."""
        self._tasks = [
            self.cluster.spawn(self._writer(node), name=f"writer{node}")
            for node in self.nodes
        ]

    async def stop(self) -> None:
        """Let in-flight writes finish, then stop issuing new ones."""
        self._stopped = True
        await self.cluster.kernel.gather(self._tasks)

    @property
    def total_writes(self) -> int:
        """Writes completed so far across all writer nodes."""
        return sum(self.counts.values())
