"""Crash-tolerance experiment: E13 (the 2f < n bound)."""

from __future__ import annotations

from repro.analysis.linearizability import check_snapshot_history
from repro.config import ClusterConfig
from repro.backend.sim import SimBackend
from repro.errors import DeadlockError

__all__ = ["e13_crash_tolerance"]


def e13_crash_tolerance(
    algorithms=("ss-nonblocking", "ss-always"), n=5, seed=0
):
    """E13: operations terminate iff a majority of nodes survives.

    Crashes f nodes for every f in 0..n−1 and attempts a write and a
    snapshot from a survivor.  With 2f < n both complete and the history
    stays linearizable; with f ≥ ⌈n/2⌉ liveness is lost (the operation
    can never gather a majority) but safety never breaks.
    """
    rows = []
    for algorithm in algorithms:
        for f in range(n):
            cluster = SimBackend(
                algorithm, ClusterConfig(n=n, seed=seed, delta=0)
            )
            cluster.write_sync(0, "before-crashes")
            for node in range(n - f, n):
                cluster.crash(node)
            survivor = 0
            ok = True
            try:
                async def attempt():
                    await cluster.kernel.wait_for(
                        cluster.write(survivor, f"with-{f}-down"), timeout=200.0
                    )
                    await cluster.kernel.wait_for(
                        cluster.snapshot(survivor), timeout=200.0
                    )

                cluster.run_until(attempt(), max_events=None)
            except (TimeoutError, DeadlockError):
                ok = False
            report = check_snapshot_history(cluster.history.records(), n)
            rows.append(
                {
                    "algorithm": algorithm,
                    "f": f,
                    "majority_alive": 2 * f < n,
                    "ops_terminate": ok,
                    "history_safe": report.ok,
                }
            )
    return rows
