"""Experiment registry and command-line runner.

``python -m repro.harness.experiments`` runs every experiment (E1–E20)
and prints its table; ``python -m repro.harness.experiments e07 e09``
runs a subset, and ``--jobs N`` fans the selected experiments out across
``N`` worker processes (the printed output is byte-identical to a serial
run; see :mod:`repro.harness.parallel`).  The same functions back the
pytest-benchmark targets in ``benchmarks/``.
"""

from __future__ import annotations

import sys
from typing import Callable

from repro.harness.parallel import experiment_cells, extract_jobs, run_cells

from repro.harness.costs import (
    e01_nonblocking_op_costs,
    e02_gossip_overhead,
    e03_stacking_comparison,
    e04_always_terminating_costs,
    e05_delta_snapshot_costs,
    e06_concurrent_snapshots,
    e15_message_sizes,
)
from repro.harness.faults import e13_crash_tolerance
from repro.harness.latency import (
    e09_delta_latency,
    e10_delta_tradeoff,
    e11_writes_between_blocks,
    e12_nonblocking_starvation,
    e16_backend_parity,
)
from repro.harness.recovery import (
    e07_recovery_nonblocking,
    e08_recovery_always,
    e14_bounded_reset,
    e20_reset_coordinator_crash,
)
from repro.harness.report import print_table
from repro.load.experiments import e17_throughput_vs_n, e18_delta_vs_throughput
from repro.shard.experiments import e19_throughput_vs_shards

__all__ = [
    "BACKEND_AWARE",
    "EXPERIMENTS",
    "run_experiment",
    "run_experiments",
    "main",
]

#: Experiment id → (title, runner).
EXPERIMENTS: dict[str, tuple[str, Callable[[], list[dict]]]] = {
    "e01": (
        "E1 / Fig.1 upper — DGFR non-blocking per-op costs (2n msgs, 1 RT)",
        e01_nonblocking_op_costs,
    ),
    "e02": (
        "E2 / Fig.1 lower — SS gossip overhead (n(n-1) msgs of O(nu) bits/cycle)",
        e02_gossip_overhead,
    ),
    "e03": (
        "E3 / related work — stacked ABD+scan (8n, 4RT) vs DGFR (2n, 1RT)",
        e03_stacking_comparison,
    ),
    "e04": (
        "E4 / Fig.2 — Algorithm 2 snapshot costs O(n^2) messages",
        e04_always_terminating_costs,
    ),
    "e05": (
        "E5 / Fig.3 upper — Algorithm 3 snapshot messages vs delta",
        e05_delta_snapshot_costs,
    ),
    "e06": (
        "E6 / Fig.3 lower — all-nodes-concurrent snapshots (many-jobs stealing)",
        e06_concurrent_snapshots,
    ),
    "e07": (
        "E7 / Theorem 1 — Algorithm 1 recovery cycles (O(1), flat in n)",
        e07_recovery_nonblocking,
    ),
    "e08": (
        "E8 / Theorem 2 — Algorithm 3 recovery cycles to Definition-1 state",
        e08_recovery_always,
    ),
    "e09": (
        "E9 / Theorem 3 — snapshot latency under load vs delta (O(delta))",
        e09_delta_latency,
    ),
    "e10": (
        "E10 / Contribution 2 — delta trade-off: messages vs write throughput",
        e10_delta_tradeoff,
    ),
    "e11": (
        "E11 / Contribution 2 — >=delta writes between blocking periods",
        e11_writes_between_blocks,
    ),
    "e12": (
        "E12 / Section 3 — snapshot liveness per algorithm under write load",
        e12_nonblocking_starvation,
    ),
    "e13": (
        "E13 / fault model — crash tolerance at the 2f < n bound",
        e13_crash_tolerance,
    ),
    "e14": (
        "E14 / Section 5 — bounded counters with consensus-based global reset",
        e14_bounded_reset,
    ),
    "e15": (
        "E15 / Contribution 1 — message sizes: O(n*nu) ops vs O(nu) gossip",
        e15_message_sizes,
    ),
    "e16": (
        "E16 / deployment — backend parity: msgs/op on sim vs asyncio vs UDP",
        e16_backend_parity,
    ),
    "e17": (
        "E17 / deployment — saturated throughput vs n, serial vs pipelined",
        e17_throughput_vs_n,
    ),
    "e18": (
        "E18 / Contribution 2 — delta vs throughput and snapshot tails under load",
        e18_delta_vs_throughput,
    ),
    "e19": (
        "E19 / sharding — aggregate saturated throughput vs shard count K",
        e19_throughput_vs_shards,
    ),
    "e20": (
        "E20 / ROADMAP 5 — reset termination under coordinator crash: "
        "coordinator sketch vs consensus-backed Step 2",
        e20_reset_coordinator_crash,
    ),
}

#: Experiments that accept a ``backend`` kwarg; ``--backend`` restricts
#: the selection to these (the rest measure simulator-only quantities
#: like cycle counts and deterministic schedules).
BACKEND_AWARE = frozenset({"e16", "e17", "e18", "e19"})


def run_experiment(experiment_id: str) -> list[dict]:
    """Run one experiment by id (e.g. ``"e07"``) and return its rows."""
    title, runner = EXPERIMENTS[experiment_id]
    return runner()


def run_experiments(
    experiment_ids: list[str], jobs: int = 1
) -> list[list[dict]]:
    """Run several experiments, optionally in parallel; rows in id order.

    Each experiment is one independent cell; with ``jobs > 1`` the cells
    execute in worker processes and the merged result list matches the
    serial run exactly (every runner is a pure function of its seed).
    """
    return run_cells(experiment_cells(experiment_ids), jobs=jobs)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run and print the selected (or all) experiments.

    Accepts ``--jobs N`` (parallel cells), ``--seeds K`` / ``--seed-start
    S`` (re-run each selected experiment at K consecutive seeds — every
    runner is a pure function of its seed), ``--backend
    {sim,asyncio,udp}`` (restricts to the backend-aware experiments,
    default :data:`BACKEND_AWARE`), and the observability flags
    ``--trace-out FILE`` / ``--jsonl-out FILE`` / ``--stats`` (capture
    forces serial execution).  Experiment ids are case-insensitive
    (``E01`` and ``e01`` both work).
    """
    from repro.harness.campaign import extract_backend, extract_campaign_flags
    from repro.obs.cli import clamp_jobs_for_capture, extract_obs_flags, observe_cli

    argv = list(sys.argv[1:] if argv is None else argv)
    obs_flags, argv = extract_obs_flags(argv)
    jobs, argv = extract_jobs(argv)
    backend, argv = extract_backend(argv)
    options, argv = extract_campaign_flags(argv, default_budget=1)
    selected = [eid.lower() for eid in argv] or sorted(EXPERIMENTS)
    unknown = [eid for eid in selected if eid not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"available: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    common = None
    if backend is not None:
        if not argv:
            selected = sorted(BACKEND_AWARE)
        sim_only = [eid for eid in selected if eid not in BACKEND_AWARE]
        if sim_only:
            print(
                f"--backend applies only to {sorted(BACKEND_AWARE)}; "
                f"{sim_only} measure simulator-only quantities",
                file=sys.stderr,
            )
            return 2
        if backend != "sim" and jobs > 1:
            from repro.backend import backend_capabilities

            backend_capabilities(backend).require(
                "process_fanout", f"--jobs {jobs}"
            )
        common = {"backend": backend}
    sweep = options.seeds if len(options.seeds) > 1 else None
    jobs = clamp_jobs_for_capture(obs_flags, jobs)
    with observe_cli(obs_flags):
        cells = experiment_cells(selected, seeds=sweep, common=common)
        results = run_cells(cells, jobs=jobs)
        for cell, rows in zip(cells, results):
            title = EXPERIMENTS[cell.name][0]
            kwargs = dict(cell.kwargs)
            if "seed" in kwargs:
                title = f"{title} [seed {kwargs['seed']}]"
            print_table(rows, title=title)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
