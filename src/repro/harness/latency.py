"""Latency / trade-off experiments: E9–E12 (the δ knob, Theorem 3).

Also home of the cross-backend latency probe behind ``python -m repro
latency`` and the E16 backend-parity experiment: the same per-operation
cost measurement run on the simulator, the asyncio runtime, and real UDP
sockets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import ChannelConfig, ClusterConfig, UNBOUNDED_DELTA
from repro.backend.sim import SimBackend
from repro.harness.workloads import ContinuousWriters

__all__ = [
    "e09_delta_latency",
    "e10_delta_tradeoff",
    "e11_writes_between_blocks",
    "e12_nonblocking_starvation",
    "e16_backend_parity",
    "LatencyReport",
    "backend_latency_probe",
    "run_latency_campaigns",
]

#: Tight delay bounds make write pressure steady across runs.
_STEADY = ChannelConfig(min_delay=0.9, max_delay=1.1)


def _loaded_cluster(delta, n=5, seed=1, algorithm="ss-always"):
    config = ClusterConfig(
        n=n, seed=seed, delta=delta, channel=_STEADY, gossip_interval=1.0
    )
    return SimBackend(algorithm, config)


def e09_delta_latency(deltas=(0, 1, 2, 4, 8, 16), n=5, seed=1):
    """E9 (Theorem 3): snapshot termination within O(δ) cycles under load.

    Continuous writers on n−1 nodes; one snapshot from the last node.
    Reports latency in asynchronous cycles and simulated time vs δ.
    """
    rows = []
    for delta in deltas:
        cluster = _loaded_cluster(delta, n=n, seed=seed)
        writers = ContinuousWriters(cluster, list(range(n - 1)))

        async def probe(cluster=cluster, writers=writers):
            writers.start()
            await cluster.kernel.sleep(10.0)
            cycles_before = cluster.tracker.cycles_elapsed
            time_before = cluster.kernel.now
            await cluster.snapshot(n - 1)
            latency_cycles = cluster.tracker.cycles_elapsed - cycles_before
            latency_time = cluster.kernel.now - time_before
            await writers.stop()
            return latency_cycles, latency_time

        latency_cycles, latency_time = cluster.run_until(
            probe(), max_events=None
        )
        rows.append(
            {
                "delta": delta,
                "latency_cycles": latency_cycles,
                "latency_time": round(latency_time, 1),
                "bound_O(delta)": f"<=c*({delta}+1)",
            }
        )
    return rows


def e10_delta_tradeoff(deltas=(0, 2, 8, 32, UNBOUNDED_DELTA), n=5, seed=1):
    """E10 (Contribution 2): messages per snapshot vs write throughput.

    Small δ blocks writes quickly (O(n²) messages, low snapshot latency);
    large δ keeps writes flowing (O(n) messages, higher latency).
    Reports per-δ: snapshot messages, snapshot latency, and the write
    throughput sustained while the snapshot was running.
    """
    rows = []
    for delta in deltas:
        cluster = _loaded_cluster(delta, n=n, seed=seed)
        writers = ContinuousWriters(cluster, list(range(n - 1)))

        async def probe(cluster=cluster, writers=writers):
            writers.start()
            await cluster.kernel.sleep(10.0)
            writes_before = writers.total_writes
            time_before = cluster.kernel.now
            with cluster.metrics.window() as window:
                try:
                    await cluster.kernel.wait_for(
                        cluster.snapshot(n - 1), timeout=300.0
                    )
                    latency = cluster.kernel.now - time_before
                except TimeoutError:
                    latency = float("inf")
            writes_during = writers.total_writes - writes_before
            await writers.stop()
            elapsed = max(cluster.kernel.now - time_before, 1e-9)
            return window.stats, latency, writes_during / elapsed

        stats, latency, write_rate = cluster.run_until(probe(), max_events=None)
        rows.append(
            {
                "delta": delta,
                "snap_msgs": stats.total_messages - stats.messages("GOSSIP"),
                "snap_latency": round(latency, 1)
                if latency != float("inf")
                else float("inf"),
                "write_rate": round(write_rate, 2),
            }
        )
    return rows


def e11_writes_between_blocks(delta=6, snapshots=6, n=5, seed=1):
    """E11 (Contribution 2): ≥δ writes between consecutive blocking periods.

    Repeated snapshots under saturating writes.  A *blocking period* is a
    helping episode — some node's ``baseSnapshot`` starts serving a
    foreign task, which defers that node's writes.  The paper guarantees
    at least δ write operations complete between two consecutive blocking
    periods (the δ-counting ensures helpers only engage after observing δ
    concurrent writes).  We record the cluster-wide completed-write count
    at the start of each helping episode and report the gaps.
    """
    cluster = _loaded_cluster(delta, n=n, seed=seed)
    writers = ContinuousWriters(cluster, list(range(n - 1)))
    # One blocking period per helped task: every helper node reports the
    # same (owner, sns), so record the write count at first observation.
    period_start: dict[tuple[int, int], int] = {}

    def on_help(process, foreign_tasks):
        for task in foreign_tasks:
            period_start.setdefault(task, writers.total_writes)

    for process in cluster.processes:
        process.helping_listeners.append(on_help)

    async def probe():
        writers.start()
        await cluster.kernel.sleep(10.0)
        for _ in range(snapshots):
            await cluster.snapshot(n - 1)
        await writers.stop()

    cluster.run_until(probe(), max_events=None)
    marks = sorted(period_start.values())
    gaps = [later - earlier for earlier, later in zip(marks, marks[1:])]
    return [
        {
            "episode_gap#": index + 1,
            "writes_between": gap,
            "delta": delta,
            "claim_met": gap >= delta,
        }
        for index, gap in enumerate(gaps)
    ]


def e12_nonblocking_starvation(timeout=300.0, n=5, seed=1):
    """E12 (Section 3): snapshot liveness per algorithm under write load.

    The non-blocking algorithm (and Algorithm 3 at δ=∞) may never
    terminate while writes keep coming; the always-terminating algorithms
    finish.  After the writers stop, the starved snapshots complete —
    exactly the non-blocking guarantee.
    """
    cases = [
        ("dgfr-nonblocking", None),
        ("ss-nonblocking", None),
        ("ss-always", UNBOUNDED_DELTA),
        ("ss-always", 4),
        ("dgfr-always", None),
    ]
    rows = []
    for algorithm, delta in cases:
        cluster = _loaded_cluster(
            delta if delta is not None else 0,
            n=n,
            seed=seed,
            algorithm=algorithm,
        )
        writers = ContinuousWriters(cluster, list(range(n - 1)))

        async def probe(cluster=cluster, writers=writers):
            writers.start()
            await cluster.kernel.sleep(5.0)
            start = cluster.kernel.now
            snap_task = cluster.spawn(cluster.snapshot(n - 1))
            await cluster.kernel.sleep(timeout)
            starved = not snap_task.done()
            latency = None if starved else "<timeout"
            await writers.stop()
            await snap_task  # always completes once writes cease
            after = cluster.kernel.now - start
            return starved, latency, after

        starved, latency, total = cluster.run_until(probe(), max_events=None)
        rows.append(
            {
                "algorithm": algorithm
                + (f" (delta={delta})" if delta is not None else ""),
                "starved_under_load": starved,
                "completed_after_writes_ceased": True,
                "total_time": round(total, 1),
            }
        )
    return rows


# -- cross-backend latency (the `python -m repro latency` command) -----------

#: Message kinds attributed to the write path / snapshot path when
#: computing per-operation message counts (gossip is background traffic).
_WRITE_KINDS = ("WRITE", "WRITEack")
_SNAPSHOT_KINDS = ("SNAPSHOT", "SNAPSHOTack", "SNAP", "END", "SAVE", "SAVEack")


def _median(samples):
    ordered = sorted(samples)
    return ordered[len(ordered) // 2] if ordered else 0.0


def backend_latency_probe(
    backend: str = "sim",
    algorithm: str = "ss-nonblocking",
    n: int = 4,
    ops: int = 16,
    seed: int = 0,
    time_scale: float = 0.002,
) -> dict:
    """One write/snapshot latency + message-count measurement on a backend.

    Runs ``ops`` sequential write/snapshot pairs (rotating the invoking
    node) on the named backend and reports median per-operation latency
    in simulated time units — the live kernels express their wall clock
    in the same units (``seconds / time_scale``), so the sim, asyncio,
    and UDP rows of ``python -m repro latency`` are directly comparable —
    plus per-operation message counts from a metrics window, which is how
    EXPERIMENTS.md's sim-vs-UDP message-cost comparison is produced.
    """
    from repro.backend import run_on_backend
    from repro.config import scenario_config

    config = scenario_config(n=n, seed=seed, delta=2)

    async def body(cluster):
        kernel = cluster.kernel
        write_latency: list[float] = []
        snapshot_latency: list[float] = []
        with cluster.metrics.window() as window:
            for k in range(ops):
                t0 = kernel.now
                await cluster.write(k % n, f"lat-{seed}-{k}")
                write_latency.append(kernel.now - t0)
                t0 = kernel.now
                await cluster.snapshot((k + 1) % n)
                snapshot_latency.append(kernel.now - t0)
        stats = window.stats
        return {
            "backend": backend,
            "algorithm": algorithm,
            "n": n,
            "ops": ops,
            "write_p50": round(_median(write_latency), 2),
            "snapshot_p50": round(_median(snapshot_latency), 2),
            "write_msgs_per_op": round(stats.messages(*_WRITE_KINDS) / ops, 2),
            "snapshot_msgs_per_op": round(
                stats.messages(*_SNAPSHOT_KINDS) / ops, 2
            ),
            "unit": "sim time units",
        }

    return run_on_backend(
        backend,
        algorithm,
        config,
        body,
        time_scale=time_scale,
        max_events=None,
    )


@dataclass(slots=True)
class LatencyReport:
    """Outcome of one seed's cross-backend latency probe."""

    seed: int
    backend: str
    row: dict
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Latency probes fail only by raising; a report means success."""
        return not self.failures

    def summary(self) -> str:
        """One-line outcome."""
        row = self.row
        return (
            f"{row['ops']} op pairs on {self.backend} ({row['algorithm']}, "
            f"n={row['n']}): write p50 {row['write_p50']}u "
            f"({row['write_msgs_per_op']} msgs/op), snapshot p50 "
            f"{row['snapshot_p50']}u ({row['snapshot_msgs_per_op']} msgs/op)"
        )


def run_latency_campaigns(
    seeds: list,
    jobs: int = 1,
    algorithm: str = "ss-nonblocking",
    budget: int = 16,
    backend: str = "sim",
    n: int = 4,
    time_scale: float = 0.002,
) -> list:
    """One latency probe per seed — the unified campaign entry point.

    ``budget`` is write/snapshot pairs per probe.  Probes are cheap and
    latency measurements are noise-sensitive, so they always run
    serially; ``--jobs`` > 1 on a live backend raises the capability
    error every harness shares.
    """
    if jobs > 1 and backend != "sim":
        from repro.backend import backend_capabilities

        backend_capabilities(backend).require(
            "process_fanout", f"--jobs {jobs}"
        )
    return [
        LatencyReport(
            seed=seed,
            backend=backend,
            row=backend_latency_probe(
                backend=backend,
                algorithm=algorithm,
                n=n,
                ops=budget,
                seed=seed,
                time_scale=time_scale,
            ),
        )
        for seed in seeds
    ]


def e16_backend_parity(backend=None, n=4, ops=8, seed=0):
    """E16 / deployment — backend parity: same costs on sim, asyncio, UDP.

    Runs the cross-backend latency probe on each substrate and tabulates
    per-operation message counts side by side: the algorithms' message
    complexity is substrate-independent (the paper's model assumes only
    asynchronous fail-prone message passing), so the sim and UDP rows
    must agree on messages per operation while latency reflects each
    substrate's clock.
    """
    if backend is None:
        backends = ("sim", "asyncio", "udp")
    elif backend == "sim":
        backends = ("sim",)
    else:
        backends = ("sim", backend)
    return [
        backend_latency_probe(
            backend=name,
            algorithm="dgfr-nonblocking",
            n=n,
            ops=ops,
            seed=seed,
        )
        for name in backends
    ]
