"""Parallel experiment runner: deterministic fan-out over a process pool.

Every experiment, ablation, and chaos campaign in the harness is a pure
function of its descriptor — all randomness derives from explicit seeds —
so independent ``(runner, kwargs)`` cells can execute in worker processes
with no shared state.  This module fans a list of :class:`Cell`
descriptors out across a :mod:`multiprocessing` pool and merges results
**deterministically**: each result is keyed by its cell's position in the
submitted list and the merged list is returned in that order, so the
output of a parallel run is byte-identical to a serial run of the same
cells (``--jobs 4`` equals ``--jobs 1``; the regression test in
``tests/test_parallel_runner.py`` holds us to that).

Cells name their runner through the harness registries
(:data:`repro.harness.experiments.EXPERIMENTS`,
:data:`repro.harness.ablations.ABLATIONS`, chaos campaigns) rather than
carrying callables, which keeps them picklable under every
multiprocessing start method.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

__all__ = [
    "Cell",
    "run_cells",
    "experiment_cells",
    "ablation_cells",
    "chaos_cells",
    "fuzz_cells",
    "verify_cells",
    "extract_jobs",
]


@dataclass(frozen=True, slots=True)
class Cell:
    """One independent unit of work: a registered runner plus its kwargs.

    ``kind`` selects the registry (``"experiment"``, ``"ablation"``,
    ``"chaos"``, ``"fuzz"``, or ``"verify"``), ``name`` the entry within
    it, and ``kwargs`` is a sorted tuple of ``(key, value)`` pairs — a
    hashable, picklable spelling of the keyword arguments.
    """

    kind: str
    name: str
    kwargs: tuple[tuple[str, Any], ...] = ()


def _make_kwargs(kwargs: dict[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    if not kwargs:
        return ()
    return tuple(sorted(kwargs.items()))


def experiment_cells(
    ids: Iterable[str],
    seeds: Iterable[int] | None = None,
    common: dict[str, Any] | None = None,
) -> list[Cell]:
    """Cells for experiment ids, optionally crossed with explicit seeds.

    ``common`` kwargs (e.g. ``backend`` for the backend-aware
    experiments) are merged into every cell.
    """
    base = dict(common or {})
    if seeds is None:
        return [Cell("experiment", eid, _make_kwargs(base)) for eid in ids]
    return [
        Cell("experiment", eid, _make_kwargs({**base, "seed": seed}))
        for eid in ids
        for seed in seeds
    ]


def ablation_cells(
    names: Iterable[str], seeds: int | None = None
) -> list[Cell]:
    """Cells for ablation study names, optionally widening the seed sweep."""
    kwargs = _make_kwargs({"seeds": seeds} if seeds is not None else None)
    return [Cell("ablation", name, kwargs) for name in names]


def chaos_cells(
    seeds: Iterable[int], events: int = 150, algorithm: str = "ss-always"
) -> list[Cell]:
    """Cells for one chaos campaign per seed."""
    return [
        Cell("chaos", algorithm, _make_kwargs({"seed": seed, "events": events}))
        for seed in seeds
    ]


def fuzz_cells(
    seeds: Iterable[int], algorithm: str = "ss-always", budget: int = 40
) -> list[Cell]:
    """Cells probing one generated fuzz spec per seed."""
    return [
        Cell("fuzz", algorithm, _make_kwargs({"seed": seed, "budget": budget}))
        for seed in seeds
    ]


def verify_cells(
    seeds: Iterable[int], algorithm: str = "ss-always", budget: int = 200
) -> list[Cell]:
    """Cells for one seeded random-walk exploration per seed."""
    return [
        Cell("verify", algorithm, _make_kwargs({"seed": seed, "budget": budget}))
        for seed in seeds
    ]


def _run_cell(
    indexed: tuple[int, Cell, bool]
) -> tuple[int, Any, dict | None]:
    """Execute one cell in a worker process (top-level for picklability).

    With ``capture`` set (third tuple element), the cell runs under its
    own observability session and its portable aggregate snapshot rides
    back alongside the result — how ``--stats`` survives ``--jobs N``:
    the parent absorbs the snapshots in cell order, so the merged
    summary matches a serial run's.
    """
    index, cell, capture = indexed
    if capture:
        from repro.obs.observe import Observability, session

        obs = Observability(trace_messages=False)
        with session(obs):
            result = _execute_cell(cell)
        obs.finish()
        return index, result, obs.portable()
    return index, _execute_cell(cell), None


def _execute_cell(cell: Cell) -> Any:
    """Dispatch one cell to its registered runner."""
    kwargs = dict(cell.kwargs)
    if cell.kind == "experiment":
        from repro.harness.experiments import EXPERIMENTS

        _title, runner = EXPERIMENTS[cell.name]
        return runner(**kwargs)
    if cell.kind == "ablation":
        from repro.harness.ablations import ABLATIONS

        _title, runner = ABLATIONS[cell.name]
        return runner(**kwargs)
    if cell.kind == "chaos":
        from repro.harness.chaos import ChaosCampaign

        events = kwargs.pop("events", 150)
        campaign = ChaosCampaign(algorithm=cell.name, **kwargs)
        return campaign.run(events=events)
    if cell.kind == "fuzz":
        from repro.fuzz.runner import probe_seed

        return probe_seed(
            kwargs["seed"], algorithm=cell.name, budget=kwargs["budget"]
        )
    if cell.kind == "verify":
        from repro.verify.explorer import explore_standard_scenario

        return explore_standard_scenario(
            cell.name, seed=kwargs["seed"], budget=kwargs["budget"]
        )
    raise ValueError(f"unknown cell kind {cell.kind!r}")


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork is much cheaper to start and inherits sys.path for free; fall
    # back to spawn where fork is unavailable (spawn also propagates
    # sys.path, just with a per-worker interpreter startup cost).
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_cells(cells: Sequence[Cell], jobs: int | None = None) -> list[Any]:
    """Run every cell and return their results in cell order.

    ``jobs`` of ``None``, ``0``, or ``1`` runs serially in-process (no pool,
    no pickling).  Larger values fan out across that many worker processes;
    completion order is nondeterministic but the merge keys results by cell
    index, so the returned list — and anything printed from it — is
    identical to the serial run.

    When an ambient observability session is installed (``--stats``),
    each worker cell runs under its own session and ships a portable
    aggregate snapshot back; the parent absorbs them **in cell order**,
    so the merged metrics/blame/health summary is deterministic and
    matches the serial run.  (Span-level capture — ``--trace-out`` /
    ``--jsonl-out`` — still forces serial: spans do not travel.)
    """
    serial = jobs is None or jobs <= 1 or len(cells) <= 1
    if serial:
        indexed = [(i, cell, False) for i, cell in enumerate(cells)]
        return [_run_cell(triple)[1] for triple in indexed]
    from repro.obs.observe import current_session

    parent = current_session()
    indexed = [(i, cell, parent is not None) for i, cell in enumerate(cells)]
    results: list[Any] = [None] * len(indexed)
    portables: list[dict | None] = [None] * len(indexed)
    with _pool_context().Pool(processes=min(jobs, len(indexed))) as pool:
        for index, result, portable in pool.imap_unordered(_run_cell, indexed):
            results[index] = result
            portables[index] = portable
    if parent is not None:
        for portable in portables:
            if portable is not None:
                parent.absorb(portable)
    return results


def extract_jobs(argv: list[str], default: int = 1) -> tuple[int, list[str]]:
    """Split ``--jobs N`` / ``-j N`` / ``--jobs=N`` out of an argv list.

    Returns ``(jobs, remaining_args)``.  Used by the ``python -m repro``
    subcommands so every table-producing command accepts the same flag.
    """
    jobs = default
    rest: list[str] = []
    it = iter(argv)
    for arg in it:
        if arg in ("--jobs", "-j"):
            value = next(it, None)
            if value is None:
                raise SystemExit(f"{arg} requires a value")
            jobs = int(value)
        elif arg.startswith("--jobs="):
            jobs = int(arg.split("=", 1)[1])
        else:
            rest.append(arg)
    if jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {jobs}")
    return jobs, rest
