"""Experiment harness: workloads, experiment runners, table reporting."""

from repro.harness.experiments import EXPERIMENTS, main, run_experiment
from repro.harness.report import format_table, print_table
from repro.harness.workloads import ContinuousWriters, value_of_size

__all__ = [
    "ContinuousWriters",
    "EXPERIMENTS",
    "format_table",
    "main",
    "print_table",
    "run_experiment",
    "value_of_size",
]
