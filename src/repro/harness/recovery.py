"""Recovery experiments: E7, E8 (Theorems 1–2) and E14 (Section 5)."""

from __future__ import annotations

from repro.analysis.invariants import (
    definition1_consistent,
    ssn_consistent,
    ts_consistent,
)
from repro.config import scenario_config
from repro.backend.sim import SimBackend
from repro.errors import ResetInProgressError
from repro.fault import TransientFaultInjector
from repro.obs.observe import Observability

__all__ = [
    "e07_recovery_nonblocking",
    "e08_recovery_always",
    "e14_bounded_reset",
]

#: Upper bound on the cycles we wait before declaring non-recovery.
_CYCLE_CAP = 20

_CORRUPTIONS = {
    "ts": lambda inj: inj.corrupt_write_indices(),
    "ssn": lambda inj: inj.corrupt_snapshot_indices(),
    "registers": lambda inj: inj.corrupt_registers(),
    "channels": lambda inj: inj.scramble_channels(),
    "everything": lambda inj: inj.scramble_everything(),
}


def _cycles_until(cluster: SimBackend, predicate) -> int | None:
    """Count cycle boundaries until ``predicate(cluster)`` holds."""
    cluster.tracker.reset()

    async def measure():
        for _ in range(_CYCLE_CAP):
            if predicate(cluster):
                return cluster.tracker.cycles_elapsed
            await cluster.tracker.wait_cycles(1)
        return None

    return cluster.run_until(measure(), max_events=None)


def _recovery_cell(algorithm, config, corrupt, predicate):
    """One corruption → recovery measurement, observed through the registry.

    Builds the cluster under an :class:`Observability` session (spans and
    message tracing off — only the metric registry is needed), runs the
    corruption and the recovery wait, pushes the measured cycle count into
    the ``stabilization.recovery_cycles`` gauge, and returns ``(cycles,
    detections)`` where ``detections`` is this cell's contribution to
    ``stabilization.corrupted_state_detections`` — the number of
    self-stabilizing cleanup-line executions that actually changed state
    while healing.

    If an ambient session is installed (the experiments CLI is capturing
    with ``--trace-out``), the cluster already attached to it during
    construction; detections are then computed as the delta of the
    session-wide metric, so earlier cells' counts are not re-reported.
    """
    obs = Observability(trace_messages=False)
    cluster = SimBackend(algorithm, config)
    cobs = obs.attach(cluster)  # no-op if an ambient session attached first
    session = cobs.session
    baseline = session.collect().get(
        "stabilization.corrupted_state_detections", 0
    )
    cluster.write_sync(0, b"pre")
    corrupt(TransientFaultInjector(cluster, seed=config.seed))
    cycles = _cycles_until(cluster, predicate)
    session.registry.gauge("stabilization.recovery_cycles").set(
        float(_CYCLE_CAP + 1) if cycles is None else float(cycles)
    )
    metrics = session.collect()
    detections = int(
        metrics["stabilization.corrupted_state_detections"] - baseline
    )
    return cycles, detections


def e07_recovery_nonblocking(n_values=(4, 8, 12), seed=0):
    """E7 (Theorem 1): Algorithm 1 recovery cycles per corruption class.

    Paper claim: within O(1) asynchronous cycles of a fair execution the
    ts/ssn consistency invariants hold — a bound independent of n.  The
    ``detections`` column reports ``stabilization.corrupted_state_detections``
    summed over the row's corruption classes: how many cleanup-line
    executions actually repaired state during those recoveries.
    """
    rows = []
    for n in n_values:
        row = {"n": n}
        detections = 0
        for name, corrupt in _CORRUPTIONS.items():
            cycles, healed = _recovery_cell(
                "ss-nonblocking",
                scenario_config(n=n, seed=seed),
                corrupt,
                lambda c: ts_consistent(c).ok and ssn_consistent(c).ok,
            )
            detections += healed
            row[name] = cycles if cycles is not None else f">{_CYCLE_CAP}"
        row["detections"] = detections
        rows.append(row)
    return rows


def e08_recovery_always(n_values=(4, 8, 12), seed=0, delta=2):
    """E8 (Theorem 2): Algorithm 3 cycles to a Definition-1 state.

    As in E7, ``detections`` comes from the observability registry's
    ``stabilization.corrupted_state_detections``.
    """
    corruptions = dict(_CORRUPTIONS)
    corruptions["pndTsk"] = lambda inj: inj.corrupt_pending_tasks()
    rows = []
    for n in n_values:
        row = {"n": n}
        detections = 0
        for name, corrupt in corruptions.items():
            cycles, healed = _recovery_cell(
                "ss-always",
                scenario_config(n=n, seed=seed, delta=delta),
                corrupt,
                lambda c: definition1_consistent(c).ok,
            )
            detections += healed
            row[name] = cycles if cycles is not None else f">{_CYCLE_CAP}"
        row["detections"] = detections
        rows.append(row)
    return rows


def e14_bounded_reset(max_int=10, rounds=25, n=5, seed=0):
    """E14 (Section 5): bounded counters with global reset.

    Drives enough writes to overflow MAXINT several times; reports resets
    completed, operations aborted by the reset window (the bounded abort
    the criteria permit), whether register values survived each reset,
    and final epoch agreement.
    """
    cluster = SimBackend(
        "bounded-ss-nonblocking",
        scenario_config(n=n, seed=seed, max_int=max_int),
    )
    aborted = 0
    completed = 0

    async def drive():
        nonlocal aborted, completed
        for round_index in range(rounds):
            for node in range(n):
                try:
                    await cluster.write(node, (round_index, node))
                    completed += 1
                except ResetInProgressError:
                    aborted += 1
                    await cluster.tracker.wait_cycles(3)
        await cluster.tracker.wait_cycles(4)
        return await cluster.snapshot(0)

    final = cluster.run_until(drive(), max_events=None)
    values_survived = all(value is not None for value in final.values)
    epochs = {p.epoch for p in cluster.processes}
    return [
        {
            "max_int": max_int,
            "writes_ok": completed,
            "writes_aborted": aborted,
            "resets": cluster.node(0).resets_completed,
            "values_survive": values_survived,
            "epochs_agree": len(epochs) == 1,
            "final_epoch": epochs.pop(),
        }
    ]
