"""Recovery experiments: E7, E8 (Theorems 1–2), E14 (Section 5), E20.

E7/E8 measure each corruption class twice over: for the paper's
unbounded algorithms (the original Theorem 1/2 claims) and for the
bounded variants under both reset modes — the consensus-backed Step-2
reset must recover no slower than the legacy coordinator sketch
(``benchmarks/check_recovery_series.py`` gates on exactly these rows).
E20 is the liveness experiment behind that refactor: with the
would-be coordinator crashed mid-reset, the coordinator sketch stalls
forever while the consensus-backed reset completes and re-enables
operations.
"""

from __future__ import annotations

from repro.analysis.invariants import (
    definition1_consistent,
    ssn_consistent,
    ts_consistent,
)
from repro.config import scenario_config
from repro.backend.sim import SimBackend
from repro.errors import ResetInProgressError
from repro.fault import TransientFaultInjector
from repro.obs.observe import Observability

__all__ = [
    "e07_recovery_nonblocking",
    "e08_recovery_always",
    "e14_bounded_reset",
    "e20_reset_coordinator_crash",
]

#: Upper bound on the cycles we wait before declaring non-recovery.
_CYCLE_CAP = 20

_CORRUPTIONS = {
    "ts": lambda inj: inj.corrupt_write_indices(),
    "ssn": lambda inj: inj.corrupt_snapshot_indices(),
    "registers": lambda inj: inj.corrupt_registers(),
    "channels": lambda inj: inj.scramble_channels(),
    "everything": lambda inj: inj.scramble_everything(),
}

#: MAXINT for the bounded E7/E8 rows: small enough that the injector's
#: wild indices (< 1e6) usually overflow it — so those recoveries
#: include a full global reset, which is the thing the two reset modes
#: differ on — yet far above anything a legitimate run reaches.
_BOUNDED_MAX_INT = 100_000


def _reset_settled(cluster: SimBackend) -> bool:
    """No reset in flight and every node in the same epoch."""
    if any(getattr(p, "resetting", False) for p in cluster.processes):
        return False
    return len({getattr(p, "epoch", 0) for p in cluster.processes}) == 1


def _recovery_variants(base: str, n: int, seed: int, **extra):
    """The (variant, algorithm, config) triples an E7/E8 row set covers."""
    return (
        ("unbounded", f"ss-{base}", scenario_config(n=n, seed=seed, **extra)),
        (
            "bounded+consensus",
            f"bounded-ss-{base}",
            scenario_config(
                n=n,
                seed=seed,
                max_int=_BOUNDED_MAX_INT,
                reset_mode="consensus",
                **extra,
            ),
        ),
        (
            "bounded+coordinator",
            f"bounded-ss-{base}",
            scenario_config(
                n=n,
                seed=seed,
                max_int=_BOUNDED_MAX_INT,
                reset_mode="coordinator",
                **extra,
            ),
        ),
    )


def _cycles_until(cluster: SimBackend, predicate) -> int | None:
    """Count cycle boundaries until ``predicate(cluster)`` holds."""
    cluster.tracker.reset()

    async def measure():
        for _ in range(_CYCLE_CAP):
            if predicate(cluster):
                return cluster.tracker.cycles_elapsed
            await cluster.tracker.wait_cycles(1)
        return None

    return cluster.run_until(measure(), max_events=None)


def _recovery_cell(algorithm, config, corrupt, predicate):
    """One corruption → recovery measurement, observed through the registry.

    Builds the cluster under an :class:`Observability` session (spans and
    message tracing off — only the metric registry is needed), runs the
    corruption and the recovery wait, pushes the measured cycle count into
    the ``stabilization.recovery_cycles`` gauge, and returns ``(cycles,
    detections)`` where ``detections`` is this cell's contribution to
    ``stabilization.corrupted_state_detections`` — the number of
    self-stabilizing cleanup-line executions that actually changed state
    while healing.

    If an ambient session is installed (the experiments CLI is capturing
    with ``--trace-out``), the cluster already attached to it during
    construction; detections are then computed as the delta of the
    session-wide metric, so earlier cells' counts are not re-reported.
    """
    obs = Observability(trace_messages=False)
    cluster = SimBackend(algorithm, config)
    cobs = obs.attach(cluster)  # no-op if an ambient session attached first
    session = cobs.session
    baseline = session.collect().get(
        "stabilization.corrupted_state_detections", 0
    )
    cluster.write_sync(0, b"pre")
    corrupt(TransientFaultInjector(cluster, seed=config.seed))
    cycles = _cycles_until(cluster, predicate)
    session.registry.gauge("stabilization.recovery_cycles").set(
        float(_CYCLE_CAP + 1) if cycles is None else float(cycles)
    )
    metrics = session.collect()
    detections = int(
        metrics["stabilization.corrupted_state_detections"] - baseline
    )
    return cycles, detections


def _recovery_rows(base, n_values, seed, corruptions, invariant, **extra):
    """Shared E7/E8 driver: every variant × n × corruption class.

    The invariant for the bounded variants additionally requires the
    reset machinery to be quiescent (no reset in flight, one epoch) —
    corrupted wild indices overflow ``max_int``, so these recoveries
    run a full global reset under the row's reset mode.
    """
    rows = []
    for variant_index in range(3):
        for n in n_values:
            variant, algorithm, config = _recovery_variants(
                base, n, seed, **extra
            )[variant_index]
            if variant == "unbounded":
                predicate = invariant
            else:
                predicate = lambda c: invariant(c) and _reset_settled(c)
            row = {"variant": variant, "n": n}
            detections = 0
            for name, corrupt in corruptions.items():
                cycles, healed = _recovery_cell(
                    algorithm, config, corrupt, predicate
                )
                detections += healed
                row[name] = cycles if cycles is not None else f">{_CYCLE_CAP}"
            row["detections"] = detections
            rows.append(row)
    return rows


def e07_recovery_nonblocking(n_values=(4, 8, 12), seed=0):
    """E7 (Theorem 1): Algorithm 1 recovery cycles per corruption class.

    Paper claim: within O(1) asynchronous cycles of a fair execution the
    ts/ssn consistency invariants hold — a bound independent of n.  The
    ``detections`` column reports ``stabilization.corrupted_state_detections``
    summed over the row's corruption classes: how many cleanup-line
    executions actually repaired state during those recoveries.

    Three row blocks: the unbounded baseline, then the bounded variant
    under the consensus-backed reset and under the legacy coordinator
    sketch (wild corrupted indices overflow MAXINT, so these rows time a
    corruption-triggered global reset end to end).
    """
    return _recovery_rows(
        "nonblocking",
        n_values,
        seed,
        _CORRUPTIONS,
        lambda c: ts_consistent(c).ok and ssn_consistent(c).ok,
    )


def e08_recovery_always(n_values=(4, 8, 12), seed=0, delta=2):
    """E8 (Theorem 2): Algorithm 3 cycles to a Definition-1 state.

    As in E7, ``detections`` comes from the observability registry's
    ``stabilization.corrupted_state_detections``, and the bounded row
    blocks compare the consensus-backed reset against the coordinator
    sketch.
    """
    corruptions = dict(_CORRUPTIONS)
    corruptions["pndTsk"] = lambda inj: inj.corrupt_pending_tasks()
    return _recovery_rows(
        "always",
        n_values,
        seed,
        corruptions,
        lambda c: definition1_consistent(c).ok,
        delta=delta,
    )


def e14_bounded_reset(max_int=10, rounds=25, n=5, seed=0):
    """E14 (Section 5): bounded counters with global reset.

    Drives enough writes to overflow MAXINT several times; reports resets
    completed, operations aborted by the reset window (the bounded abort
    the criteria permit), whether register values survived each reset,
    and final epoch agreement.
    """
    cluster = SimBackend(
        "bounded-ss-nonblocking",
        scenario_config(n=n, seed=seed, max_int=max_int),
    )
    aborted = 0
    completed = 0

    async def drive():
        nonlocal aborted, completed
        for round_index in range(rounds):
            for node in range(n):
                try:
                    await cluster.write(node, (round_index, node))
                    completed += 1
                except ResetInProgressError:
                    aborted += 1
                    await cluster.tracker.wait_cycles(3)
        await cluster.tracker.wait_cycles(4)
        return await cluster.snapshot(0)

    final = cluster.run_until(drive(), max_events=None)
    values_survived = all(value is not None for value in final.values)
    epochs = {p.epoch for p in cluster.processes}
    return [
        {
            "max_int": max_int,
            "writes_ok": completed,
            "writes_aborted": aborted,
            "resets": cluster.node(0).resets_completed,
            "values_survive": values_survived,
            "epochs_agree": len(epochs) == 1,
            "final_epoch": epochs.pop(),
        }
    ]


def e20_reset_coordinator_crash(n=5, seed=0, max_int=8):
    """E20 (ROADMAP 5): reset termination with the coordinator crashed.

    Node 0 — the fixed coordinator of the legacy Step-2 sketch — is
    crashed, then node 1's writes overflow MAXINT and trigger a global
    reset.  Under ``reset_mode="coordinator"`` the reset cannot commit
    (the decision point is dead): the row reports ``>CYCLE_CAP`` cycles
    and operations stay disabled.  Under ``reset_mode="consensus"`` the
    surviving majority decides the commit and operations resume; a third
    row re-runs the consensus scenario with the injector scrambling the
    consensus state itself mid-reset (the self-stabilization claim).
    """
    rows = []
    scenarios = (
        ("coordinator", False),
        ("consensus", False),
        ("consensus", True),
    )
    for reset_mode, corrupt_consensus in scenarios:
        cluster = SimBackend(
            "bounded-ss-nonblocking",
            scenario_config(
                n=n, seed=seed, max_int=max_int, reset_mode=reset_mode
            ),
        )
        injector = TransientFaultInjector(cluster, seed=seed)
        alive = [node for node in range(n) if node != 0]

        def settled() -> bool:
            procs = [cluster.node(node) for node in alive]
            if any(p.resetting for p in procs):
                return False
            return all(p.epoch >= 1 for p in procs)

        async def drive():
            cluster.crash(0)
            # Overflow node 1's write index to trigger the global reset.
            for index in range(max_int + 1):
                try:
                    await cluster.write(1, (0, index))
                except ResetInProgressError:
                    break
            if corrupt_consensus:
                # The reset window is open: scramble the consensus
                # instances deciding the commit, mid-decision.
                await cluster.tracker.wait_cycles(1)
                injector.corrupt_consensus()
            cluster.tracker.reset()
            cycles = None
            for _ in range(_CYCLE_CAP):
                if settled():
                    cycles = cluster.tracker.cycles_elapsed
                    break
                await cluster.tracker.wait_cycles(1)
            write_ok = False
            try:
                await cluster.kernel.wait_for(
                    cluster.write(1, b"post-reset"), timeout=50.0
                )
                write_ok = True
            except (TimeoutError, ResetInProgressError):
                pass
            return cycles, write_ok

        cycles, write_ok = cluster.run_until(drive(), max_events=None)
        epochs = {cluster.node(node).epoch for node in alive}
        rows.append(
            {
                "reset_mode": reset_mode,
                "corrupt_consensus": corrupt_consensus,
                "reset_completed": cycles is not None,
                "recovery_cycles": (
                    cycles if cycles is not None else f">{_CYCLE_CAP}"
                ),
                "epochs_agree": len(epochs) == 1,
                "writes_reenabled": write_ok,
            }
        )
    return rows
