"""Regenerate the paper's Figures 1–3 as ASCII space-time diagrams.

Each figure function replays the execution scenario the paper draws —
a write, then a snapshot, then a second write (Figures 1–2; Figure 3
upper), or concurrent snapshot invocations by all nodes (Figure 3
lower) — with message tracing enabled, and renders the recorded trace.

The diagrams show the same structure the paper illustrates: the single
round-trip operations of the non-blocking algorithm, the gossip lanes of
the self-stabilizing variant that "do not interfere with other
messages", Algorithm 2's every-node query storm, and Algorithm 3's slim
task + SAVE exchange.
"""

from __future__ import annotations

from repro.analysis.spacetime import render_spacetime
from repro.analysis.trace import MessageTrace
from repro.config import ChannelConfig, ClusterConfig
from repro.backend.sim import SimBackend

__all__ = ["FIGURES", "render_figure"]

#: Fixed delays make the diagrams clean and deterministic.
_CRISP = ChannelConfig(min_delay=1.0, max_delay=1.0)


def _traced_cluster(algorithm: str, n: int = 4, delta: float = 4):
    config = ClusterConfig(
        n=n, seed=0, delta=delta, channel=_CRISP, gossip_interval=4.0
    )
    cluster = SimBackend(algorithm, config, tie_break="fifo")
    trace = MessageTrace(cluster.network)
    return cluster, trace


def _write_snapshot_write(cluster, trace):
    """The scenario of Figures 1 and 2: write → snapshot → write."""

    async def scenario():
        trace.mark(0, "write(v1)", cluster.kernel.now)
        await cluster.write(0, "v1")
        trace.mark(0, "write done", cluster.kernel.now)
        trace.mark(2, "snapshot()", cluster.kernel.now)
        await cluster.snapshot(2)
        trace.mark(2, "snapshot done", cluster.kernel.now)
        trace.mark(0, "write(v2)", cluster.kernel.now)
        await cluster.write(0, "v2")
        trace.mark(0, "write done", cluster.kernel.now)

    cluster.run_until(scenario(), max_events=None)


def fig1_upper() -> str:
    """Figure 1 (upper): the DGFR non-blocking algorithm's execution."""
    cluster, trace = _traced_cluster("dgfr-nonblocking")
    _write_snapshot_write(cluster, trace)
    return render_spacetime(
        trace,
        cluster.config.n,
        title="Figure 1 (upper) — DGFR non-blocking: write, snapshot, write",
    )


def fig1_lower() -> str:
    """Figure 1 (lower): Algorithm 1 — same run plus gossip lanes."""
    cluster, trace = _traced_cluster("ss-nonblocking")
    _write_snapshot_write(cluster, trace)
    return render_spacetime(
        trace,
        cluster.config.n,
        max_rows=80,
        title=(
            "Figure 1 (lower) — self-stabilizing Algorithm 1: note the "
            "GOSSIP rows that do not interfere with operations"
        ),
    )


def fig2() -> str:
    """Figure 2: Algorithm 2 — every node serves the snapshot task."""
    cluster, trace = _traced_cluster("dgfr-always")
    _write_snapshot_write(cluster, trace)
    return render_spacetime(
        trace,
        cluster.config.n,
        max_rows=90,
        title=(
            "Figure 2 — Algorithm 2: SNAP via reliable broadcast, then "
            "ALL nodes run SNAPSHOT query rounds (O(n^2) messages)"
        ),
    )


def fig3_upper() -> str:
    """Figure 3 (upper): Algorithm 3 — one snapshot, fewer messages."""
    cluster, trace = _traced_cluster("ss-always", delta=4)
    _write_snapshot_write(cluster, trace)
    return render_spacetime(
        trace,
        cluster.config.n,
        max_rows=80,
        title=(
            "Figure 3 (upper) — Algorithm 3 (delta=4): only the initiator "
            "queries; the result travels in one SAVE round"
        ),
    )


def fig3_lower() -> str:
    """Figure 3 (lower): concurrent snapshot invocations by all nodes."""
    cluster, trace = _traced_cluster("ss-always", delta=0)

    async def scenario():
        for node in range(cluster.config.n):
            trace.mark(node, "snapshot()", cluster.kernel.now)
        snaps = [
            cluster.spawn(cluster.snapshot(node))
            for node in range(cluster.config.n)
        ]
        await cluster.kernel.gather(snaps)
        for node in range(cluster.config.n):
            trace.mark(node, "done", cluster.kernel.now)

    cluster.run_until(scenario(), max_events=None)
    return render_spacetime(
        trace,
        cluster.config.n,
        max_rows=90,
        title=(
            "Figure 3 (lower) — Algorithm 3: all nodes snapshot "
            "concurrently; many-jobs stealing batches the tasks"
        ),
    )


#: Figure name → renderer.
FIGURES = {
    "fig1-upper": fig1_upper,
    "fig1-lower": fig1_lower,
    "fig2": fig2,
    "fig3-upper": fig3_upper,
    "fig3-lower": fig3_lower,
}


def render_figure(name: str) -> str:
    """Render one figure by name (see :data:`FIGURES`)."""
    return FIGURES[name]()
