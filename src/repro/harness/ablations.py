"""Ablation studies: robustness of the measured results to design knobs.

The reproduction experiments (E1–E15) pin one seed and one parameter set
each; these ablations sweep the knobs that could plausibly change the
conclusions and report distributions:

* **A1 — seed robustness**: recovery cycles (E7/E8) across many seeds —
  the O(1) claim must hold distributionally, not for one lucky schedule.
* **A2 — gossip-interval ablation**: Theorem 1 counts *cycles*, so
  recovery must be flat in cycles while wall-clock recovery scales with
  the do-forever period.
* **A3 — retransmission under loss**: per-operation message cost as a
  function of channel loss — the quorum service's retransmission
  overhead, which the complexity claims exclude (they count per
  attempt).
* **A4 — δ latency distribution**: snapshot latency percentiles under
  load across seeds, showing the O(δ) bound is not a mean-only artifact.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.invariants import definition1_consistent
from repro.config import ChannelConfig, ClusterConfig
from repro.backend.sim import SimBackend
from repro.fault import TransientFaultInjector
from repro.harness.workloads import ContinuousWriters

__all__ = [
    "ABLATIONS",
    "run_ablations",
    "a1_recovery_seed_sweep",
    "a2_gossip_interval_ablation",
    "a3_loss_retransmission_cost",
    "a4_delta_latency_distribution",
    "a5_recovery_flatness_in_n",
]

_CYCLE_CAP = 20


def _recovery_cycles(algorithm: str, n: int, seed: int, **config_kwargs) -> int:
    cluster = SimBackend(
        algorithm, ClusterConfig(n=n, seed=seed, delta=2, **config_kwargs)
    )
    cluster.write_sync(0, b"pre")
    TransientFaultInjector(cluster, seed=seed).scramble_everything()
    cluster.tracker.reset()

    async def measure():
        for _ in range(_CYCLE_CAP):
            if definition1_consistent(cluster).ok:
                return cluster.tracker.cycles_elapsed
            await cluster.tracker.wait_cycles(1)
        return _CYCLE_CAP

    return cluster.run_until(measure(), max_events=None)


def a1_recovery_seed_sweep(
    algorithms=("ss-nonblocking", "ss-always"), n=5, seeds=20
):
    """A1: distribution of recovery cycles across seeds."""
    rows = []
    for algorithm in algorithms:
        cycles = np.array(
            [_recovery_cycles(algorithm, n, seed) for seed in range(seeds)]
        )
        rows.append(
            {
                "algorithm": algorithm,
                "seeds": seeds,
                "mean": round(float(cycles.mean()), 2),
                "std": round(float(cycles.std()), 2),
                "min": int(cycles.min()),
                "max": int(cycles.max()),
                "p95": float(np.percentile(cycles, 95)),
            }
        )
    return rows


def a5_recovery_flatness_in_n(
    n_values=(3, 5, 7, 9, 11), seeds=8, algorithm="ss-nonblocking"
):
    """A5: statistical test that recovery cycles do not grow with n.

    The O(1)-cycles claim (Theorems 1–2) means the regression slope of
    recovery cycles against cluster size should be indistinguishable
    from zero.  Reports the slope with its scipy-estimated p-value: a
    high p-value (no detectable dependence) supports the claim.
    """
    from scipy import stats

    sizes = []
    cycles = []
    for n in n_values:
        for seed in range(seeds):
            sizes.append(n)
            cycles.append(_recovery_cycles(algorithm, n, seed))
    regression = stats.linregress(sizes, cycles)
    return [
        {
            "algorithm": algorithm,
            "samples": len(sizes),
            "slope_cycles_per_node": round(regression.slope, 4),
            "p_value": round(regression.pvalue, 3),
            "mean_cycles": round(float(np.mean(cycles)), 2),
            "max_cycles": int(max(cycles)),
            "flat": abs(regression.slope) < 0.1,
        }
    ]


def a2_gossip_interval_ablation(
    intervals=(0.5, 1.0, 2.0, 4.0, 8.0), n=5, seeds=8
):
    """A2: recovery is O(1) in *cycles* regardless of the loop period."""
    rows = []
    for interval in intervals:
        cycle_counts = []
        wall_times = []
        for seed in range(seeds):
            cluster = SimBackend(
                "ss-nonblocking",
                ClusterConfig(n=n, seed=seed, gossip_interval=interval),
            )
            cluster.write_sync(0, b"pre")
            TransientFaultInjector(cluster, seed=seed).scramble_everything()
            cluster.tracker.reset()
            start = cluster.kernel.now

            async def measure(cluster=cluster):
                for _ in range(_CYCLE_CAP):
                    from repro.analysis.invariants import (
                        ssn_consistent,
                        ts_consistent,
                    )

                    if ts_consistent(cluster).ok and ssn_consistent(cluster).ok:
                        return cluster.tracker.cycles_elapsed
                    await cluster.tracker.wait_cycles(1)
                return _CYCLE_CAP

            cycle_counts.append(cluster.run_until(measure(), max_events=None))
            wall_times.append(cluster.kernel.now - start)
        rows.append(
            {
                "gossip_interval": interval,
                "recovery_cycles_mean": round(float(np.mean(cycle_counts)), 2),
                "recovery_cycles_max": int(max(cycle_counts)),
                "recovery_time_mean": round(float(np.mean(wall_times)), 1),
            }
        )
    return rows


def a3_loss_retransmission_cost(
    loss_rates=(0.0, 0.1, 0.3, 0.5), n=5, seeds=6
):
    """A3: per-write message cost vs channel loss rate.

    The complexity claims count messages per broadcast attempt; loss
    multiplies attempts.  Reports the measured inflation factor.
    """
    rows = []
    for loss in loss_rates:
        counts = []
        for seed in range(seeds):
            cluster = SimBackend(
                "ss-nonblocking",
                ClusterConfig(
                    n=n,
                    seed=seed,
                    retransmit_interval=3.0,
                    channel=ChannelConfig(loss_probability=loss),
                ),
            )
            with cluster.metrics.window() as window:
                cluster.write_sync(0, b"x", max_events=None)
            counts.append(window.stats.messages("WRITE", "WRITEack"))
        baseline = 2 * (n - 1)
        rows.append(
            {
                "loss": loss,
                "write_msgs_mean": round(float(np.mean(counts)), 1),
                "write_msgs_max": int(max(counts)),
                "inflation": round(float(np.mean(counts)) / baseline, 2),
            }
        )
    return rows


def a4_delta_latency_distribution(deltas=(0, 4, 16), n=5, seeds=8):
    """A4: snapshot-latency percentiles under load, per δ, across seeds."""
    rows = []
    for delta in deltas:
        latencies = []
        for seed in range(seeds):
            cluster = SimBackend(
                "ss-always",
                ClusterConfig(
                    n=n,
                    seed=seed,
                    delta=delta,
                    gossip_interval=1.0,
                    channel=ChannelConfig(min_delay=0.9, max_delay=1.1),
                ),
            )
            writers = ContinuousWriters(cluster, list(range(n - 1)))

            async def probe(cluster=cluster, writers=writers):
                writers.start()
                await cluster.kernel.sleep(10.0)
                start = cluster.kernel.now
                await cluster.snapshot(n - 1)
                latency = cluster.kernel.now - start
                await writers.stop()
                return latency

            latencies.append(cluster.run_until(probe(), max_events=None))
        array = np.array(latencies)
        rows.append(
            {
                "delta": delta,
                "latency_p50": round(float(np.percentile(array, 50)), 1),
                "latency_p95": round(float(np.percentile(array, 95)), 1),
                "latency_max": round(float(array.max()), 1),
            }
        )
    return rows


def run_ablations(
    names: list[str], jobs: int = 1, seeds: int | None = None
) -> list[list[dict]]:
    """Run several ablation studies, optionally in parallel; rows in order.

    Each ablation is one independent cell of the parallel runner
    (:mod:`repro.harness.parallel`); results merge deterministically, so
    ``jobs > 1`` output equals the serial output.  ``seeds`` widens each
    study's per-cell seed sweep (every runner accepts a ``seeds``
    parameter); ``None`` keeps each study's own default.
    """
    from repro.harness.parallel import ablation_cells, run_cells

    return run_cells(ablation_cells(names, seeds=seeds), jobs=jobs)


#: Ablation id → (title, runner).
ABLATIONS = {
    "a1": (
        "A1 — recovery cycles across seeds (distributional O(1))",
        a1_recovery_seed_sweep,
    ),
    "a2": (
        "A2 — gossip-interval ablation: cycles flat, wall time scales",
        a2_gossip_interval_ablation,
    ),
    "a3": (
        "A3 — retransmission inflation of per-op cost under loss",
        a3_loss_retransmission_cost,
    ),
    "a4": (
        "A4 — snapshot-latency percentiles under load vs delta",
        a4_delta_latency_distribution,
    ),
    "a5": (
        "A5 — regression test: recovery cycles are flat in n (slope ~ 0)",
        a5_recovery_flatness_in_n,
    ),
}
