"""Chaos campaigns: long randomized fault storms with continuous checking.

A :class:`ChaosCampaign` drives a cluster through a seeded random
sequence of events — writes, snapshots, crashes, resumes (both kinds),
partitions, heals, and transient corruption — while checking after every
phase that completed operations form a linearizable history and that the
self-stabilizing invariants are restored after each corruption burst.

This is the library's endurance harness: the unit tests prove each
mechanism in isolation; a campaign proves they compose over hundreds of
events.  ``python -m repro chaos`` runs one.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from repro.analysis.history import HistoryRecorder
from repro.analysis.invariants import definition1_consistent
from repro.analysis.linearizability import check_snapshot_history
from repro.config import scenario_config
from repro.backend.sim import SimBackend
from repro.fault import TransientFaultInjector
from repro.obs.alerts import AlertEngine

__all__ = ["ChaosCampaign", "ChaosReport", "run_chaos_campaigns"]


def run_chaos_campaigns(
    seeds: list[int],
    budget: int | None = None,
    algorithm: str = "ss-always",
    jobs: int = 1,
    events: int | None = None,
    backend: str = "sim",
    time_scale: float = 0.002,
) -> list["ChaosReport"]:
    """Run one campaign per seed, optionally across worker processes.

    On the ``sim`` backend, campaigns are fully seeded, so each is an
    independent cell of the parallel runner; reports come back in seed
    order regardless of which worker finished first.  Live backends
    (``asyncio``, ``udp``) run the same event storms against wall-clock
    clusters — serially, since worker fan-out is a sim capability
    (``--jobs`` > 1 raises :class:`~repro.errors.ConfigurationError`).
    ``budget`` is the number of campaign events (default 150) — the name
    every campaign entry point shares; ``events`` remains as a
    compatible alias.
    """
    from repro.harness.parallel import chaos_cells, run_cells

    if budget is None:
        budget = 150 if events is None else events
    if backend != "sim":
        from repro.backend import backend_capabilities

        capabilities = backend_capabilities(backend)  # validates the name
        if jobs > 1:
            capabilities.require("process_fanout", f"--jobs {jobs}")
        return [
            ChaosCampaign(
                algorithm=algorithm,
                seed=seed,
                backend=backend,
                time_scale=time_scale,
            ).run(events=budget)
            for seed in seeds
        ]
    return run_cells(
        chaos_cells(seeds, events=budget, algorithm=algorithm), jobs=jobs
    )


@dataclass(slots=True)
class ChaosReport:
    """Outcome of one campaign."""

    events: int = 0
    writes: int = 0
    snapshots: int = 0
    crashes: int = 0
    resumes: int = 0
    restarts: int = 0
    corruptions: int = 0
    partitions: int = 0
    linearizability_checks: int = 0
    failures: list[str] = field(default_factory=list)
    #: Alerts raised by the health/alert engine during the campaign (as
    #: dicts; populated only when the campaign's cluster was observed).
    alerts: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every check during the campaign passed."""
        return not self.failures

    def summary(self) -> str:
        """One-line outcome."""
        verdict = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        alerts = f", {len(self.alerts)} alerts" if self.alerts else ""
        return (
            f"{self.events} events ({self.writes}w/{self.snapshots}s ops, "
            f"{self.crashes} crashes, {self.corruptions} corruptions, "
            f"{self.partitions} partitions), "
            f"{self.linearizability_checks} checks: {verdict}{alerts}"
        )


class ChaosCampaign:
    """A seeded random fault/operation storm against one cluster.

    The event storm itself is backend-agnostic — it drives the cluster
    through the :class:`~repro.backend.base.ClusterBackend` contract
    (``kernel.wait_for``/``sleep``, ``tracker``, ``network.partition``,
    the fault injector) — so the same campaign runs on the simulator or
    against live asyncio/UDP clusters (``backend=`` selects; live runs
    build the cluster inside :meth:`run`'s event loop).
    """

    def __init__(
        self,
        algorithm: str = "ss-always",
        n: int = 5,
        seed: int = 0,
        delta: float = 2,
        loss: float = 0.1,
        backend: str = "sim",
        time_scale: float = 0.002,
    ) -> None:
        self.rng = random.Random(seed)
        self.algorithm = algorithm
        self.seed = seed
        self.backend = backend
        self.time_scale = time_scale
        self._config = scenario_config(n=n, seed=seed, delta=delta, loss=loss)
        if backend == "sim":
            self.cluster = SimBackend(algorithm, self._config)
            self.injector = TransientFaultInjector(self.cluster, seed=seed)
        else:
            # Live clusters must be built inside a running event loop;
            # run() owns that lifecycle.
            self.cluster = None
            self.injector = None
        self.report = ChaosReport()
        self._write_counter = 0
        # Health alerts ride along whenever the cluster is observed (an
        # ambient obs session installed, e.g. ``--stats``): every event
        # tick samples the health monitor through the default rule set
        # and the raised alerts land on the report.
        self._alert_engine = AlertEngine()

    # -- event primitives ------------------------------------------------------

    def _idle_nodes(self) -> list[int]:
        return [
            node
            for node in self.cluster.alive_nodes()
            if not self.cluster.node(node)._ops_in_flight
        ]

    def _can_operate(self) -> bool:
        return (
            len(self.cluster.alive_nodes()) >= self.cluster.config.majority
        )

    async def _time_boxed(self, operation) -> bool:
        """Run an operation with a timeout guard against partitions.

        An operation issued on a partitioned-minority node can never
        complete until the campaign heals the network — but the campaign
        is awaiting the operation.  The timeout breaks that cycle: the
        operation aborts (recorded as such; aborted operations impose no
        history constraints) and the network is healed.
        """
        try:
            await self.cluster.kernel.wait_for(operation, timeout=250.0)
            return True
        except TimeoutError:
            self._do_heal()
            return False

    async def _do_write(self) -> None:
        nodes = self._idle_nodes()
        if not nodes or not self._can_operate():
            return
        node = self.rng.choice(nodes)
        self._write_counter += 1
        if await self._time_boxed(
            self.cluster.write(node, f"chaos-{self._write_counter}")
        ):
            self.report.writes += 1

    async def _do_snapshot(self) -> None:
        nodes = self._idle_nodes()
        if not nodes or not self._can_operate():
            return
        if await self._time_boxed(self.cluster.snapshot(self.rng.choice(nodes))):
            self.report.snapshots += 1

    def _do_crash(self) -> None:
        alive = self.cluster.alive_nodes()
        if len(alive) > self.cluster.config.majority:
            self.cluster.crash(self.rng.choice(alive))
            self.report.crashes += 1

    def _do_resume(self) -> None:
        crashed = [
            p.node_id for p in self.cluster.processes if p.crashed
        ]
        if crashed:
            node = self.rng.choice(crashed)
            restart = self.rng.random() < 0.3
            self.cluster.resume(node, restart=restart)
            if restart:
                self.report.restarts += 1
            else:
                self.report.resumes += 1

    def _do_corrupt(self) -> None:
        action = self.rng.choice(
            [
                self.injector.corrupt_write_indices,
                self.injector.corrupt_snapshot_indices,
                lambda: self.injector.corrupt_registers(
                    node_ids=[self.rng.randrange(self.cluster.config.n)]
                ),
                self.injector.scramble_channels,
            ]
        )
        action()
        self.report.corruptions += 1

    def _do_partition(self) -> None:
        n = self.cluster.config.n
        minority = set(self.rng.sample(range(n), (n - 1) // 2))
        self.cluster.network.partition(minority, set(range(n)) - minority)
        self.report.partitions += 1

    def _do_heal(self) -> None:
        self.cluster.network.heal()

    # -- checking -------------------------------------------------------------------

    def _check(self, context: str) -> None:
        self.report.linearizability_checks += 1
        check = check_snapshot_history(
            self.cluster.history.records(), self.cluster.config.n
        )
        if not check.ok:
            self.report.failures.append(f"{context}: {check.summary()}")

    async def _recover_and_check(self) -> None:
        """After a corruption burst: heal, settle, verify invariants and
        start a fresh history (pre-corruption evidence is void)."""
        self._do_heal()
        for node in list(range(self.cluster.config.n)):
            if self.cluster.node(node).crashed:
                self.cluster.resume(node)
        self.cluster.tracker.reset()
        await self.cluster.tracker.wait_cycles(8)
        invariants = definition1_consistent(self.cluster)
        if not invariants.ok:
            self.report.failures.append(
                f"invariants after recovery: {invariants.failures[:3]}"
            )
        self.cluster.history = HistoryRecorder()

    def _evaluate_alerts(self) -> None:
        """Sample the cluster's health monitor through the alert rules.

        A no-op unless the cluster is observed (no ambient session → no
        health monitor); raised alerts accumulate on the report as they
        happen, so a campaign doubles as a gray-failure detection check.
        """
        cobs = getattr(self.cluster, "obs", None)
        if cobs is None:
            return
        raised = self._alert_engine.evaluate(cobs.health.sample())
        self.report.alerts.extend(alert.to_dict() for alert in raised)

    # -- the campaign ----------------------------------------------------------------------

    async def _run(self, events: int) -> None:
        weighted = (
            [self._do_write] * 6
            + [self._do_snapshot] * 3
            + [self._do_crash] * 1
            + [self._do_resume] * 2
            + [self._do_partition] * 1
            + [self._do_heal] * 2
        )
        since_corruption = 0
        for _ in range(events):
            self.report.events += 1
            since_corruption += 1
            if since_corruption > 25 and self.rng.random() < 0.1:
                # A corruption burst voids past evidence: check first,
                # corrupt, then recover before continuing.
                self._check("pre-corruption")
                self._do_corrupt()
                await self._recover_and_check()
                self._evaluate_alerts()
                since_corruption = 0
                continue
            action = self.rng.choice(weighted)
            result = action()
            if result is not None:  # coroutine actions
                await result
            await self.cluster.kernel.sleep(self.rng.uniform(0.5, 3.0))
            self._evaluate_alerts()
        self._do_heal()
        for node in range(self.cluster.config.n):
            if self.cluster.node(node).crashed:
                self.cluster.resume(node)
        await self.cluster.tracker.wait_cycles(4)
        self._check("final")
        self._evaluate_alerts()

    async def _run_live(self, events: int) -> ChaosReport:
        from repro.backend import create_backend

        self.cluster = await create_backend(
            self.backend,
            self.algorithm,
            self._config,
            time_scale=self.time_scale,
        )
        self.injector = self.cluster.inject(seed=self.seed)
        try:
            await self._run(events)
        finally:
            await self.cluster.close()
        return self.report

    def run(self, events: int = 150) -> ChaosReport:
        """Execute the campaign; returns the report."""
        if self.backend == "sim":
            self.cluster.run_until(self._run(events), max_events=None)
            return self.report
        return asyncio.run(self._run_live(events))
