"""Offered-load sweeps: find where a snapshot deployment saturates.

An open-loop sweep drives :func:`~repro.load.driver.run_load` at a
ladder of offered rates and watches where achieved throughput stops
tracking the offer.  Below saturation a healthy system achieves what is
offered and latency sits near the unloaded round-trip; past the **knee**
throughput flattens at the service capacity while open-loop queueing
sends p99 latency diverging.  The knee is the last rung whose achieved
throughput stays within :data:`KNEE_EFFICIENCY` of the offer.

For the default channel delays (0.5–1.5 time units each way) a write is
one quorum round trip ≈ 2 time units, so one serial client per node
sustains ≈ 0.5 op/unit and an ``n``-node cluster saturates near
``n/2`` op/unit aggregate — :func:`default_rate_ladder` straddles that
prediction so the knee is visible in every sweep.

``python -m repro load --sweep`` runs this and serializes the result
into ``BENCH_PR5.json`` (same shape as the other ``BENCH_*.json``
baselines: ``pr``/``description``/``host`` plus the sweep tables).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.config import scenario_config
from repro.errors import ConfigurationError
from repro.load.driver import OPEN, LoadReport, LoadSpec, run_load

__all__ = [
    "KNEE_EFFICIENCY",
    "SweepResult",
    "batch_series",
    "default_rate_ladder",
    "sweep_rates",
    "write_batch_bench",
    "write_bench",
]

#: A rung counts as "keeping up" while achieved ≥ this fraction of offered.
KNEE_EFFICIENCY = 0.9

#: Capacity-relative rungs: the ladder spans 1/8× to 4× the predicted
#: saturation throughput so both the flat region and the knee appear.
_LADDER_FACTORS = (0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0)


def default_rate_ladder(n: int) -> list[float]:
    """Offered rates straddling the predicted capacity ``n/2`` op/unit."""
    capacity = n / 2.0
    return [round(capacity * factor, 4) for factor in _LADDER_FACTORS]


@dataclass(slots=True)
class SweepResult:
    """One offered-load sweep: the ladder's reports plus the knee."""

    backend: str
    algorithm: str
    n: int
    #: Transport batch window the sweep ran with (``None`` = unbatched).
    batch: int | None = None
    points: list[LoadReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every rung's history checked out linearizable."""
        return all(point.ok for point in self.points)

    @property
    def failures(self) -> list[str]:
        """All linearizability violations across the ladder."""
        return [f for point in self.points for f in point.failures]

    @property
    def knee_rate(self) -> float | None:
        """Last offered rate the system kept up with (None: never kept up)."""
        knee = None
        for point in self.points:
            if point.throughput >= KNEE_EFFICIENCY * point.offered_rate:
                knee = point.offered_rate
        return knee

    @property
    def saturated_throughput(self) -> float:
        """Best achieved throughput anywhere on the ladder (the capacity)."""
        return max((point.throughput for point in self.points), default=0.0)

    def rows(self) -> list[dict[str, Any]]:
        """The ladder as flat table rows (what BENCH_PR5.json stores)."""
        return [point.row() for point in self.points]

    def to_dict(self) -> dict[str, Any]:
        """Serializable summary: knee, capacity, and the full ladder."""
        return {
            "backend": self.backend,
            "algorithm": self.algorithm,
            "n": self.n,
            "batch": self.batch,
            "knee_rate": self.knee_rate,
            "saturated_throughput": round(self.saturated_throughput, 3),
            "linearizable": self.ok,
            "points": self.rows(),
        }

    def summary(self) -> str:
        """Multi-line human-readable sweep table."""
        lines = [
            f"offered-load sweep on {self.backend} "
            f"({self.algorithm}, n={self.n}):",
            f"  {'offered':>8} {'achieved':>9} {'p50':>7} {'p99':>8}  keeping up?",
        ]
        for point in self.points:
            keeping_up = (
                point.throughput >= KNEE_EFFICIENCY * point.offered_rate
            )
            lines.append(
                f"  {point.offered_rate:>8g} {point.throughput:>9.2f}"
                f" {point.latency['all']['p50']:>7.1f}"
                f" {point.latency['all']['p99']:>8.1f}"
                f"  {'yes' if keeping_up else 'SATURATED'}"
            )
        knee = self.knee_rate
        lines.append(
            f"  knee at {knee:g} op/unit, capacity "
            f"{self.saturated_throughput:.2f} op/unit, "
            f"{'all linearizable' if self.ok else 'VIOLATIONS'}"
            if knee is not None
            else f"  saturated below {self.points[0].offered_rate:g} op/unit"
            if self.points
            else "  (no points)"
        )
        return "\n".join(lines)


def sweep_rates(
    backend: str = "sim",
    algorithm: str = "ss-nonblocking",
    n: int = 4,
    rates: list[float] | None = None,
    *,
    duration: float = 60.0,
    write_fraction: float = 0.8,
    skew: float = 0.0,
    seed: int = 0,
    delta: float = 2,
    batch: int | None = None,
    time_scale: float = 0.002,
    progress: bool = False,
) -> SweepResult:
    """Run the offered-rate ladder and locate the saturation knee.

    Each rung is an independent open-loop :func:`run_load` pass (fresh
    cluster, same seed) at one offered rate.  ``rates`` defaults to
    :func:`default_rate_ladder`.  ``batch`` sets the transport batch
    window (``ChannelConfig.batch_window``) for every rung.
    """
    rates = rates if rates is not None else default_rate_ladder(n)
    if not rates:
        raise ConfigurationError("sweep needs at least one offered rate")
    result = SweepResult(backend=backend, algorithm=algorithm, n=n, batch=batch)
    for rate in rates:
        spec = LoadSpec(
            mode=OPEN,
            rate=rate,
            duration=duration,
            write_fraction=write_fraction,
            skew=skew,
            seed=seed,
        )
        report = run_load(
            backend=backend,
            algorithm=algorithm,
            config=scenario_config(n=n, seed=seed, delta=delta, batch=batch),
            spec=spec,
            time_scale=time_scale,
        )
        result.points.append(report)
        if progress:
            print(f"  {report.summary()}")
    return result


def batch_series(
    backend: str = "sim",
    n: int = 4,
    *,
    duration: float = 60.0,
    seed: int = 0,
    batch: int = 8,
    time_scale: float = 0.002,
    progress: bool = False,
) -> list[SweepResult]:
    """The PR 10 amortized-batching series: three sweeps on one ladder.

    1. ``ss-nonblocking`` unbatched — the pre-batching baseline whose
       knee sits near 1 op/u at n=4;
    2. ``amortized`` unbatched — operation batching alone (concurrent
       local ops share quorum rounds);
    3. ``amortized`` with a transport batch window — operation *and*
       message coalescing.

    All three run the same offered-rate ladder, seed, and mix, so rows
    compare directly; every rung is linearizability-checked.
    """
    variants: list[tuple[str, int | None]] = [
        ("ss-nonblocking", None),
        ("amortized", None),
        ("amortized", batch),
    ]
    results = []
    for algorithm, window in variants:
        if progress:
            label = f"batch={window}" if window else "unbatched"
            print(f"sweeping {algorithm} ({label}) on {backend!r}…")
        results.append(
            sweep_rates(
                backend=backend,
                algorithm=algorithm,
                n=n,
                duration=duration,
                seed=seed,
                batch=window,
                time_scale=time_scale,
                progress=progress,
            )
        )
    return results


def write_batch_bench(
    path: str | Path,
    sweeps: list[SweepResult],
    extra: dict[str, Any] | None = None,
) -> Path:
    """Write ``BENCH_PR10.json`` in the house baseline-file shape.

    The headline is the best sweep of the series (highest saturated
    throughput — the amortized/batched configuration when it wins).
    """
    import os
    import platform

    path = Path(path)
    best = max(
        sweeps, key=lambda s: s.saturated_throughput, default=None
    ) if sweeps else None
    payload: dict[str, Any] = {
        "pr": 10,
        "description": (
            "Amortized constant-round batching: offered-rate sweeps for "
            "the ss-nonblocking baseline, the amortized variant "
            "(concurrent local ops share quorum rounds), and amortized "
            "plus a transport batch window, all on one ladder.  Every "
            "rung is linearizability-checked; saturated_throughput is "
            "measured capacity in ops per simulated time unit."
        ),
        "host": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
        "sweeps": [sweep.to_dict() for sweep in sweeps],
    }
    if best is not None:
        payload["headline"] = {
            "backend": best.backend,
            "algorithm": best.algorithm,
            "n": best.n,
            "batch": best.batch,
            "knee_rate": best.knee_rate,
            "saturated_throughput": round(best.saturated_throughput, 3),
            "linearizable": all(sweep.ok for sweep in sweeps),
        }
    if extra:
        payload.update(extra)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def write_bench(
    path: str | Path,
    sweeps: list[SweepResult],
    extra: dict[str, Any] | None = None,
) -> Path:
    """Write ``BENCH_PR5.json`` in the house baseline-file shape."""
    import os
    import platform

    path = Path(path)
    best = sweeps[0] if sweeps else None
    payload: dict[str, Any] = {
        "pr": 5,
        "description": (
            "Saturation load generation: open-loop offered-rate sweeps "
            "per backend with achieved throughput and p50/p99 latency per "
            "rung; knee_rate is the last offer the deployment kept up "
            "with (achieved >= 0.9x offered), saturated_throughput its "
            "measured capacity in ops per simulated time unit."
        ),
        "host": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
        "sweeps": [sweep.to_dict() for sweep in sweeps],
    }
    if best is not None:
        payload["headline"] = {
            "backend": best.backend,
            "algorithm": best.algorithm,
            "n": best.n,
            "knee_rate": best.knee_rate,
            "saturated_throughput": round(best.saturated_throughput, 3),
            "linearizable": best.ok,
        }
    if extra:
        payload.update(extra)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
