"""``repro.load``: saturation load generation for snapshot deployments.

Open- and closed-loop workload drivers
(:class:`~repro.load.driver.LoadSpec`, :func:`~repro.load.driver.run_load`)
run concurrent multi-writer/multi-scanner clients against any backend,
with per-operation latency quantiles, a writers:scanners contention dial,
and pipelined clients that keep ``depth`` operations in flight.
:func:`~repro.load.sweep.sweep_rates` ladders the offered rate to locate
the saturation knee, and E17/E18 turn the measurements into registered
experiments.  See ``docs/benchmarking.md`` for the load model and how to
read the outputs.

Quick start::

    from repro.load import LoadSpec, run_load

    report = run_load("sim", "ss-nonblocking", spec=LoadSpec(clients=4, depth=4))
    print(report.summary())          # throughput, p50/p99, linearizable?

or, from the CLI::

    python -m repro load --backend sim --clients 8 --depth 4
    python -m repro load --backend sim --sweep     # writes BENCH_PR5.json
"""

from repro.load.driver import (
    CLOSED,
    OPEN,
    LoadReport,
    LoadSpec,
    parse_mix,
    run_load,
    run_load_campaigns,
)
from repro.load.experiments import e17_throughput_vs_n, e18_delta_vs_throughput
from repro.load.sweep import (
    KNEE_EFFICIENCY,
    SweepResult,
    batch_series,
    default_rate_ladder,
    sweep_rates,
    write_batch_bench,
    write_bench,
)

__all__ = [
    "CLOSED",
    "OPEN",
    "KNEE_EFFICIENCY",
    "LoadReport",
    "LoadSpec",
    "SweepResult",
    "batch_series",
    "default_rate_ladder",
    "e17_throughput_vs_n",
    "e18_delta_vs_throughput",
    "parse_mix",
    "run_load",
    "run_load_campaigns",
    "sweep_rates",
    "write_batch_bench",
    "write_bench",
]
