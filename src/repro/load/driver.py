"""Open- and closed-loop load generation against any cluster backend.

Every harness before this module issued one operation at a time, so the
paper's headline economics — one round trip per operation, throughput
that scales with *concurrent* clients — were never measured.  The load
driver closes that gap:

* **closed loop** — ``clients`` concurrent clients, each keeping
  ``depth`` operations in flight through an
  :class:`~repro.backend.base.OperationPipeline` and submitting the next
  the moment a window slot frees.  Measures the system's service
  capacity.
* **open loop** — operations *arrive* at an offered rate ``rate``
  (seeded-Poisson inter-arrival gaps) regardless of completions, so
  queueing delay becomes visible: past the saturation point latency
  diverges while throughput flattens.  This is the mode the
  :mod:`repro.load.sweep` knee-finder drives.

The **contention dimension** is the operation mix: ``write_fraction``
sets the writers:scanners ratio and ``skew`` concentrates traffic on
low-numbered nodes (a Zipf-like weight ``1/(rank+1)^skew``), which for
the stacked ABD construction is per-key skew — node *i*'s register is
key *i*.  Per-operation latency lands in
:class:`~repro.obs.registry.QuantileHistogram` instruments of a
:class:`~repro.obs.registry.MetricsRegistry` (p50/p95/p99), and the
recorded operation history is checked for linearizability at the end, so
a load run is also a correctness campaign.

On the ``sim`` backend a load run is fully deterministic: same
:class:`LoadSpec` + same seed ⇒ identical operation history.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Any

from repro.analysis.linearizability import check_snapshot_history
from repro.backend.base import run_on_backend
from repro.config import ClusterConfig, scenario_config
from repro.errors import ConfigurationError
from repro.obs.attribution import blame_aggregate, blame_rows, dominant_phases
from repro.obs.observe import Observability, current_session, session
from repro.obs.registry import MetricsRegistry

__all__ = [
    "CLOSED",
    "OPEN",
    "LoadSpec",
    "LoadReport",
    "parse_mix",
    "run_load",
    "run_load_campaigns",
]

CLOSED = "closed"
OPEN = "open"


def parse_mix(mix: str) -> float:
    """``"writers:scanners"`` (e.g. ``"8:2"``) → write fraction."""
    try:
        writers_str, scanners_str = mix.split(":")
        writers, scanners = float(writers_str), float(scanners_str)
    except ValueError:
        raise ConfigurationError(
            f"mix must look like 'writers:scanners' (e.g. '8:2'), got {mix!r}"
        ) from None
    if writers < 0 or scanners < 0 or writers + scanners <= 0:
        raise ConfigurationError(f"mix needs non-negative weights, got {mix!r}")
    return writers / (writers + scanners)


@dataclass(frozen=True, slots=True)
class LoadSpec:
    """One load-generation run, fully described.

    Attributes
    ----------
    mode:
        ``"closed"`` (clients self-clock on completions) or ``"open"``
        (arrivals at ``rate``, independent of completions).
    clients:
        Concurrent clients (closed loop only).
    depth:
        Pipeline depth per closed-loop client — operations each client
        keeps in flight (``1`` = today's serial round-tripping).
    rate:
        Offered load in operations per simulated time unit (open loop
        only).
    duration:
        Length of the submission window in simulated time units; after
        it closes, outstanding operations drain and are still measured.
    write_fraction:
        Probability an operation is a write (the writers:scanners mix;
        see :func:`parse_mix`).
    skew:
        Zipf-like exponent concentrating operations on low node ids
        (``0`` = uniform).  Per-key skew for the stacked construction.
    seed:
        Seeds the workload's own RNG (op kinds, targets, arrival gaps).
        Distinct from the cluster seed so workload and schedule vary
        independently.
    """

    mode: str = CLOSED
    clients: int = 8
    depth: int = 1
    rate: float | None = None
    duration: float = 60.0
    write_fraction: float = 0.8
    skew: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in (CLOSED, OPEN):
            raise ConfigurationError(
                f"mode must be {CLOSED!r} or {OPEN!r}, got {self.mode!r}"
            )
        if self.mode == OPEN and (self.rate is None or self.rate <= 0):
            raise ConfigurationError("open-loop load needs a positive rate")
        if self.clients < 1:
            raise ConfigurationError(f"clients must be >= 1, got {self.clients}")
        if self.depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {self.depth}")
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}"
            )
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError(
                f"write_fraction must be in [0, 1], got {self.write_fraction}"
            )
        if self.skew < 0:
            raise ConfigurationError(f"skew must be >= 0, got {self.skew}")


@dataclass(slots=True)
class LoadReport:
    """Outcome of one load run — the unified campaign report protocol."""

    backend: str
    algorithm: str
    n: int
    spec: LoadSpec
    offered_rate: float | None
    submitted: int
    completed: int
    errors: int
    elapsed: float
    throughput: float
    latency: dict[str, dict[str, float]]
    metrics: dict[str, Any]
    #: Critical-path attribution for the run (``None`` when the cluster
    #: ran unobserved): which node the tail blames, how strongly, where
    #: operation time went, and the full per-node blame rows.
    attribution: dict[str, Any] | None = None
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the saturated history checked out linearizable."""
        return not self.failures

    def quantile(self, kind: str, q: str) -> float:
        """Convenience accessor, e.g. ``report.quantile("write", "p99")``."""
        return self.latency[kind][q]

    def row(self) -> dict[str, Any]:
        """Flatten into one table/JSON row (what the sweep serializes)."""
        return {
            "backend": self.backend,
            "algorithm": self.algorithm,
            "n": self.n,
            "mode": self.spec.mode,
            "offered_rate": self.offered_rate,
            "submitted": self.submitted,
            "completed": self.completed,
            "errors": self.errors,
            "elapsed": round(self.elapsed, 2),
            "throughput": round(self.throughput, 3),
            "p50": round(self.latency["all"]["p50"], 2),
            "p99": round(self.latency["all"]["p99"], 2),
            "write_p50": round(self.latency["write"]["p50"], 2),
            "write_p99": round(self.latency["write"]["p99"], 2),
            "snapshot_p50": round(self.latency["snapshot"]["p50"], 2),
            "snapshot_p99": round(self.latency["snapshot"]["p99"], 2),
            "slowest_node": (
                self.attribution["slowest_node"] if self.attribution else None
            ),
            "blame_share": (
                round(self.attribution["blame_share"], 3)
                if self.attribution
                else None
            ),
            "dominant_phase": (
                self.attribution["dominant_phase"] if self.attribution else None
            ),
            "linearizable": self.ok,
        }

    def summary(self) -> str:
        """One line per run, campaign-style."""
        mode = self.spec.mode
        offered = (
            f" offered {self.offered_rate:g} op/u," if self.offered_rate else ""
        )
        return (
            f"{mode} load on {self.backend} ({self.algorithm}, n={self.n}):"
            f"{offered} {self.completed} ops in {self.elapsed:.1f}u = "
            f"{self.throughput:.2f} op/u, p50 {self.latency['all']['p50']:.1f}u"
            f" p99 {self.latency['all']['p99']:.1f}u, "
            f"{'linearizable' if self.ok else 'VIOLATIONS'}"
        )


class LoadGenerator:
    """Drives one cluster with one :class:`LoadSpec`; collects metrics."""

    def __init__(
        self,
        cluster: Any,
        spec: LoadSpec,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.cluster = cluster
        self.spec = spec
        self.registry = registry if registry is not None else MetricsRegistry()
        self.rng = random.Random(spec.seed)
        n = cluster.config.n
        self._nodes = list(range(n))
        self._weights = [1.0 / (rank + 1) ** spec.skew for rank in range(n)]
        self._in_flight = 0
        self._last_completion = 0.0
        self.submitted = 0
        self.errors = 0

    # -- op drawing --------------------------------------------------------

    def _draw_op(self) -> tuple[str, int]:
        kind = (
            "write"
            if self.rng.random() < self.spec.write_fraction
            else "snapshot"
        )
        node = self.rng.choices(self._nodes, weights=self._weights)[0]
        return kind, node

    # -- measurement -------------------------------------------------------

    def _track(self, task: Any, kind: str) -> None:
        kernel = self.cluster.kernel
        submitted_at = kernel.now
        self.submitted += 1
        self._in_flight += 1
        gauge = self.registry.gauge("load.max_in_flight")
        if self._in_flight > gauge.value:
            gauge.set(self._in_flight)
        hist = self.registry.quantile_histogram(f"load.{kind}_latency")
        overall = self.registry.quantile_histogram("load.latency")

        def _on_done(done: Any) -> None:
            self._in_flight -= 1
            failed = done.cancelled() or done.exception() is not None
            if failed:
                self.errors += 1
                self.registry.counter("load.ops_failed").inc()
                return
            latency = kernel.now - submitted_at
            hist.observe(latency)
            overall.observe(latency)
            self.registry.counter("load.ops_completed").inc()
            self.registry.counter(f"load.{kind}s_completed").inc()
            self._last_completion = kernel.now

        task.add_done_callback(_on_done)

    def _submit(self, kind: str, node: int) -> Any:
        if kind == "write":
            payload = (node, self.submitted)
            task = self.cluster.submit_write(node, payload)
        else:
            task = self.cluster.submit_snapshot(node)
        self._track(task, kind)
        return task

    # -- the two loop disciplines -----------------------------------------

    async def _closed_client(self, deadline: float) -> None:
        kernel = self.cluster.kernel
        pipeline = self.cluster.pipeline(depth=self.spec.depth)
        while kernel.now < deadline:
            try:
                await pipeline.reserve()
            except Exception:  # counted by _track's done callback
                pass
            if kernel.now >= deadline:
                break
            kind, node = self._draw_op()
            pipeline.admit(self._submit(kind, node))
        try:
            await pipeline.drain()
        except Exception:
            pass

    async def _open_generator(self, deadline: float) -> None:
        kernel = self.cluster.kernel
        rate = self.spec.rate
        while True:
            await kernel.sleep(self.rng.expovariate(rate))
            if kernel.now >= deadline:
                return
            kind, node = self._draw_op()
            self._submit(kind, node)

    async def run(self) -> None:
        """Submit for ``spec.duration``, then drain every outstanding op."""
        kernel = self.cluster.kernel
        start = kernel.now
        self._start = start
        self._last_completion = start
        deadline = start + self.spec.duration
        if self.spec.mode == CLOSED:
            clients = [
                kernel.create_task(
                    self._closed_client(deadline), name=f"load-client{i}"
                )
                for i in range(self.spec.clients)
            ]
            for client in clients:
                await client
        else:
            await self._open_generator(deadline)
        # Drain: under FIFO chaining each tail subsumes its predecessors;
        # under concurrent dispatch this is every unfinished task.
        for handle in self.cluster.outstanding_ops():
            try:
                await handle
            except Exception:
                pass

    # -- reporting ---------------------------------------------------------

    def attribution(self) -> dict[str, Any] | None:
        """Critical-path attribution for the driven cluster's operations.

        Reduces the observed spans (this cluster's only) to the blame
        table plus headline fields: the most-blamed node (tie → lower
        id), its blame share, and the phase where operation time went.
        ``None`` when the cluster ran unobserved or nothing attributed.
        """
        cobs = getattr(self.cluster, "obs", None)
        if cobs is None:
            return None
        spans = [
            span
            for span in cobs.session.recorder.spans
            if span.cluster == cobs.index
        ]
        aggregate = blame_aggregate(spans)
        if not aggregate["attributed"]:
            return None
        rows = blame_rows(aggregate)
        top = max(rows, key=lambda row: (row["blamed"], -row["node"]))
        phases = dominant_phases(spans)
        dominant = (
            max(phases.items(), key=lambda item: item[1])[0] if phases else None
        )
        return {
            "attributed": aggregate["attributed"],
            "slowest_node": top["node"],
            "blame_share": top["blame_share"],
            "dominant_phase": dominant,
            "nodes": rows,
        }

    def report(self, backend: str, failures: list[str]) -> LoadReport:
        """Package the run's measurements (call after :meth:`run`)."""

        def stats(name: str) -> dict[str, float]:
            return self.registry.quantile_histogram(name).value

        completed = self.registry.counter("load.ops_completed").value
        elapsed = max(self._last_completion - self._start, 1e-9)
        return LoadReport(
            backend=backend,
            algorithm=self.cluster.algorithm_name,
            n=self.cluster.config.n,
            spec=self.spec,
            offered_rate=self.spec.rate,
            submitted=self.submitted,
            completed=completed,
            errors=self.errors,
            elapsed=elapsed,
            throughput=completed / elapsed,
            latency={
                "all": stats("load.latency"),
                "write": stats("load.write_latency"),
                "snapshot": stats("load.snapshot_latency"),
            },
            metrics=self.registry.collect(),
            attribution=self.attribution(),
            failures=failures,
        )


def run_load(
    backend: str = "sim",
    algorithm: str = "ss-nonblocking",
    config: ClusterConfig | None = None,
    spec: LoadSpec | None = None,
    *,
    time_scale: float = 0.002,
    check: bool = True,
) -> LoadReport:
    """Run one load generation pass on the named backend.

    Deploys a cluster via :func:`~repro.backend.base.run_on_backend`,
    drives it with ``spec`` (default: a closed-loop mixed workload), and
    returns a :class:`LoadReport`.  With ``check`` (the default) the
    recorded operation history is verified well-formed and linearizable;
    violations land in ``report.failures``.

    Every load run is observed: if no ambient obs session is installed
    (``--stats`` installs one) a private session is used, so the
    report's tail-latency attribution (``report.attribution``, the
    ``slowest_node``/``blame_share`` sweep columns) is always populated.
    Observation never draws from the schedule RNG, so the operation
    history is identical either way.
    """
    spec = spec if spec is not None else LoadSpec()
    config = config if config is not None else scenario_config(n=4, delta=2)

    async def body(cluster: Any) -> LoadReport:
        generator = LoadGenerator(cluster, spec)
        await generator.run()
        failures: list[str] = []
        if check:
            cluster.history.validate_well_formed(
                sequential=not cluster.concurrent_clients
            )
            verdict = check_snapshot_history(
                cluster.history.records(), n=cluster.config.n
            )
            if not verdict.ok:
                failures.extend(verdict.violations)
        return generator.report(backend, failures)

    context = (
        session(Observability(trace_messages=False))
        if current_session() is None
        else nullcontext()
    )
    with context:
        return run_on_backend(
            backend,
            algorithm,
            config,
            body,
            time_scale=time_scale,
            max_events=None,
        )


def run_load_campaigns(
    seeds: list[int],
    jobs: int = 1,
    algorithm: str = "ss-nonblocking",
    budget: int = 60,
    backend: str = "sim",
    spec: LoadSpec | None = None,
    n: int = 4,
    delta: float = 2,
    batch: int | None = None,
    time_scale: float = 0.002,
) -> list[LoadReport]:
    """One load run per seed — the unified campaign entry point.

    ``budget`` is the submission-window duration in simulated time
    units.  ``batch`` sets the transport batch window
    (``ChannelConfig.batch_window``; ``None``/1 = unbatched).  Load
    measurements are throughput-sensitive, so runs always execute
    serially; asking for ``--jobs`` > 1 off-sim raises the shared
    capability error.
    """
    from repro.backend import backend_capabilities

    capabilities = backend_capabilities(backend)  # validates the name
    if jobs > 1:
        capabilities.require("process_fanout", f"--jobs {jobs}")
    base = spec if spec is not None else LoadSpec()
    reports = []
    for seed in seeds:
        run_spec = replace(base, seed=seed, duration=float(budget))
        config = scenario_config(n=n, seed=seed, delta=delta, batch=batch)
        reports.append(
            run_load(
                backend=backend,
                algorithm=algorithm,
                config=config,
                spec=run_spec,
                time_scale=time_scale,
            )
        )
    return reports
