"""Load-generation experiments: E17 (throughput vs n) and E18 (δ vs load).

Everything before the load driver measured *unloaded* operation costs —
one client, one round trip at a time.  These two experiments measure the
paper's algorithms as deployed systems under saturation:

* **E17** — closed-loop capacity as the cluster grows, serial
  (``depth=1``) vs pipelined (``depth=4``) clients.  The paper's
  one-round-trip write (Algorithm 1) predicts capacity ≈ ``n/2``
  op/unit with default channel delays; pipelining overlaps the client's
  round trips and should approach it even with few clients.
* **E18** — the δ trade-off under real load: Algorithm 3's δ knob delays
  snapshot helping until δ concurrent writes are observed.  E10 measured
  its *message* cost; here we measure what a saturated mixed workload
  actually experiences — aggregate throughput and snapshot tail latency
  as δ grows.

Both experiments are backend-aware (``--backend asyncio|udp`` runs the
same workload on live substrates) and, like every registered experiment,
pure functions of their seed.
"""

from __future__ import annotations

from repro.config import scenario_config
from repro.load.driver import CLOSED, LoadSpec, run_load

__all__ = ["e17_throughput_vs_n", "e18_delta_vs_throughput"]


def e17_throughput_vs_n(
    backend=None, ns=(2, 4, 8), duration=30.0, seed=0
):
    """E17 / deployment — saturated throughput vs cluster size.

    For each ``n``, drives ``n`` closed-loop clients (80:20
    write:snapshot mix) three times: serial clients (``depth=1``,
    today's one-round-trip-at-a-time behaviour), pipelined clients
    (``depth=4``), and pipelined clients against the ``amortized``
    variant with a transport batch window of 8 — the PR 10 batched row,
    where concurrent local operations share quorum rounds instead of
    paying full message cost each.  ``pipelining_gain`` is the
    depth-4/serial throughput ratio; ``amortized_gain`` is the
    amortized-batched/depth-4 ratio.
    """
    backend = backend or "sim"
    rows = []
    for n in ns:
        def drive(algorithm, depth, batch=None):
            spec = LoadSpec(
                mode=CLOSED,
                clients=n,
                depth=depth,
                duration=duration,
                write_fraction=0.8,
                seed=seed,
            )
            return run_load(
                backend=backend,
                algorithm=algorithm,
                config=scenario_config(n=n, seed=seed, delta=2, batch=batch),
                spec=spec,
            )

        serial = drive("ss-nonblocking", depth=1)
        pipelined = drive("ss-nonblocking", depth=4)
        amortized = drive("amortized", depth=4, batch=8)
        rows.append(
            {
                "backend": backend,
                "n": n,
                "clients": n,
                "throughput_serial": round(serial.throughput, 2),
                "throughput_depth4": round(pipelined.throughput, 2),
                "pipelining_gain": round(
                    pipelined.throughput / max(serial.throughput, 1e-9), 2
                ),
                "throughput_amortized_b8": round(amortized.throughput, 2),
                "amortized_gain": round(
                    amortized.throughput / max(pipelined.throughput, 1e-9), 2
                ),
                "p50_depth4": round(pipelined.latency["all"]["p50"], 1),
                "p99_depth4": round(pipelined.latency["all"]["p99"], 1),
                "p50_amortized_b8": round(
                    amortized.latency["all"]["p50"], 1
                ),
                "linearizable": serial.ok and pipelined.ok and amortized.ok,
            }
        )
    return rows


def e18_delta_vs_throughput(
    backend=None, deltas=(0, 2, 8), n=5, duration=30.0, seed=0
):
    """E18 / Contribution 2 — δ vs throughput and snapshot tails under load.

    Saturated closed-loop mixed workload (70:30 write:snapshot, ``n``
    pipelined clients) against Algorithm 3 (``ss-always``) at several δ.
    Larger δ lets writes run longer before snapshot helping blocks them —
    higher write throughput, longer snapshot tails — the same trade-off
    E10 showed in messages, now in operations per time unit.

    Each δ also runs with a transport batch window of 8 (the PR 10
    batched row): clients here are FIFO-serialized per node, so the
    window mostly coalesces retransmissions and gossip that share an
    instant with operation traffic — the measurement shows transport
    batching is safe (and roughly neutral) for serialized clients, in
    contrast to the ``amortized`` variant's shared-round win in E17.
    """
    backend = backend or "sim"
    rows = []
    for delta in deltas:
        def drive(batch=None):
            spec = LoadSpec(
                mode=CLOSED,
                clients=n,
                depth=2,
                duration=duration,
                write_fraction=0.7,
                seed=seed,
            )
            return run_load(
                backend=backend,
                algorithm="ss-always",
                config=scenario_config(
                    n=n, seed=seed, delta=delta, batch=batch
                ),
                spec=spec,
            )

        report = drive()
        batched = drive(batch=8)
        rows.append(
            {
                "backend": backend,
                "delta": delta,
                "throughput": round(report.throughput, 2),
                "throughput_batch8": round(batched.throughput, 2),
                "write_p50": round(report.latency["write"]["p50"], 1),
                "snapshot_p50": round(report.latency["snapshot"]["p50"], 1),
                "snapshot_p99": round(report.latency["snapshot"]["p99"], 1),
                "linearizable": report.ok and batched.ok,
            }
        )
    return rows
