"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments [ids…]``
    Run the reproduction experiments (all of E1–E15 by default) and
    print their tables.
``figures [names…]``
    Render the paper's Figures 1–3 as ASCII space-time diagrams
    (all by default; names: fig1-upper, fig1-lower, fig2, fig3-upper,
    fig3-lower).
``ablations [ids…]``
    Run the ablation studies (A1–A4 by default): seed-robustness,
    gossip-interval, loss-retransmission, and δ-latency distributions.
``algorithms``
    List the registered snapshot-object algorithms.
``verify [algorithm]``
    Model-check an algorithm (default: every self-stabilizing one) on a
    standard concurrent write/snapshot scenario: explore interleavings
    and check every schedule's history for linearizability.
``chaos [events] [seed]``
    Run a randomized fault campaign (default 150 events): operations,
    crashes, partitions, and corruption bursts with continuous
    linearizability and invariant checking.  ``--seeds K`` runs K
    campaigns at consecutive seeds.
``demo``
    Run a tiny end-to-end demo (write/snapshot/corrupt/recover).

``experiments``, ``ablations``, and ``chaos`` accept ``--jobs N`` to fan
their independent cells out across N worker processes; results merge
deterministically, so parallel output is byte-identical to serial.

The same three commands accept the observability flags (see
``docs/observability.md``):

``--trace-out FILE``
    Capture every cluster the run constructs — operation spans, message
    flow arrows, one track per node — and write a Chrome ``trace_event``
    JSON file viewable at https://ui.perfetto.dev.
``--jsonl-out FILE``
    Write the same session as a JSON-lines event stream (spans, messages,
    metrics) for ad-hoc analysis.
``--stats``
    Print a terminal summary: per-operation table (counts, latency,
    retransmits, messages) plus the full metric catalog.

Capturing runs in-process, so these flags force ``--jobs 1``.  Tracing
never perturbs seeded schedules — results are identical with or without.
"""

from __future__ import annotations

import sys

from repro.core.cluster import ALGORITHMS


def _cmd_experiments(args: list[str]) -> int:
    from repro.harness.experiments import main as run_experiments

    return run_experiments(args)


def _cmd_figures(args: list[str]) -> int:
    from repro.harness.figures import FIGURES, render_figure

    names = args or list(FIGURES)
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        print(f"unknown figures: {unknown}; available: {list(FIGURES)}")
        return 2
    for name in names:
        print(render_figure(name))
        print()
    return 0


def _cmd_ablations(args: list[str]) -> int:
    from repro.harness.ablations import ABLATIONS, run_ablations
    from repro.harness.parallel import extract_jobs
    from repro.harness.report import print_table
    from repro.obs.cli import (
        clamp_jobs_for_capture,
        extract_obs_flags,
        observe_cli,
    )

    obs_flags, args = extract_obs_flags(args)
    jobs, args = extract_jobs(args)
    names = args or sorted(ABLATIONS)
    unknown = [name for name in names if name not in ABLATIONS]
    if unknown:
        print(f"unknown ablations: {unknown}; available: {sorted(ABLATIONS)}")
        return 2
    jobs = clamp_jobs_for_capture(obs_flags, jobs)
    with observe_cli(obs_flags):
        for name, rows in zip(names, run_ablations(names, jobs=jobs)):
            print_table(rows, title=ABLATIONS[name][0])
    return 0


def _cmd_algorithms(_args: list[str]) -> int:
    for name, cls in sorted(ALGORITHMS.items()):
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"{name:24s} {cls.__name__:36s} {doc}")
    return 0


def _cmd_verify(args: list[str]) -> int:
    from repro.verify import explore_snapshot_scenario

    algorithms = args or ["ss-nonblocking", "ss-always"]
    scenario = [
        ("write", 0, "v1", 0.0),
        ("write", 1, "v1", 0.1),
        ("snapshot", 2, None, 0.2),
    ]
    failures = 0
    for algorithm in algorithms:
        for strategy in ("dfs", "random-walk"):
            result = explore_snapshot_scenario(
                algorithm,
                scenario,
                n=3,
                delta=0,
                max_runs=200,
                max_depth=20,
                strategy=strategy,
            )
            print(f"{algorithm:20s} [{strategy:11s}] {result.summary()}")
            failures += len(result.violations)
    return 1 if failures else 0


def _cmd_chaos(args: list[str]) -> int:
    from repro.harness.chaos import run_chaos_campaigns
    from repro.harness.parallel import extract_jobs
    from repro.obs.cli import (
        clamp_jobs_for_capture,
        extract_obs_flags,
        observe_cli,
    )

    obs_flags, args = extract_obs_flags(args)
    jobs, args = extract_jobs(args)
    n_seeds = 1
    rest: list[str] = []
    it = iter(args)
    for arg in it:
        if arg == "--seeds":
            value = next(it, None)
            if value is None:
                raise SystemExit("--seeds requires a value")
            n_seeds = int(value)
        elif arg.startswith("--seeds="):
            n_seeds = int(arg.split("=", 1)[1])
        else:
            rest.append(arg)
    events = int(rest[0]) if rest else 150
    seed = int(rest[1]) if len(rest) > 1 else 0
    jobs = clamp_jobs_for_capture(obs_flags, jobs)
    with observe_cli(obs_flags):
        reports = run_chaos_campaigns(
            list(range(seed, seed + n_seeds)), events=events, jobs=jobs
        )
        ok = True
        for campaign_seed, report in zip(range(seed, seed + n_seeds), reports):
            prefix = f"seed {campaign_seed}: " if n_seeds > 1 else ""
            print(prefix + report.summary())
            for failure in report.failures:
                print("FAILURE:", failure)
            ok = ok and report.ok
    return 0 if ok else 1


def _cmd_demo(_args: list[str]) -> int:
    from repro import ClusterConfig, SnapshotCluster
    from repro.analysis.invariants import definition1_consistent
    from repro.fault import TransientFaultInjector

    cluster = SnapshotCluster("ss-always", ClusterConfig(n=5, delta=2))
    cluster.write_sync(0, b"hello")
    cluster.write_sync(1, b"world")
    print("snapshot:", cluster.snapshot_sync(2).values)
    print("injecting arbitrary state corruption everywhere…")
    TransientFaultInjector(cluster, seed=1).scramble_everything()
    cluster.tracker.reset()
    cluster.run_until(cluster.tracker.wait_cycles(6), max_events=None)
    print("consistent after 6 cycles:", definition1_consistent(cluster).ok)
    cluster.write_sync(0, b"recovered")
    print("post-recovery snapshot:", cluster.snapshot_sync(3).values)
    return 0


_COMMANDS = {
    "experiments": _cmd_experiments,
    "figures": _cmd_figures,
    "ablations": _cmd_ablations,
    "algorithms": _cmd_algorithms,
    "verify": _cmd_verify,
    "chaos": _cmd_chaos,
    "demo": _cmd_demo,
}


def main(argv: list[str] | None = None) -> int:
    """Dispatch ``python -m repro`` subcommands."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command = argv[0]
    handler = _COMMANDS.get(command)
    if handler is None:
        print(f"unknown command {command!r}; choose from {sorted(_COMMANDS)}")
        return 2
    return handler(argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
