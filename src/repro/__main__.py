"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments [ids…]``
    Run the reproduction experiments (all of E1–E20 by default) and
    print their tables.  ``--seeds K`` re-runs each selected experiment
    at K consecutive seeds.  ``--backend {sim,asyncio,udp}`` runs the
    backend-aware experiments (E16–E19) on a chosen runtime.
``figures [names…]``
    Render the paper's Figures 1–3 as ASCII space-time diagrams
    (all by default; names: fig1-upper, fig1-lower, fig2, fig3-upper,
    fig3-lower).
``ablations [ids…]``
    Run the ablation studies (A1–A5 by default): seed-robustness,
    gossip-interval, loss-retransmission, and δ-latency distributions.
    ``--seeds K`` widens each study's per-cell seed sweep to K seeds.
``algorithms``
    List the registered snapshot-object algorithms.

Campaign commands — ``verify``, ``chaos``, ``fuzz``, and ``latency``
share one flag vocabulary (``--seeds K``, ``--seed-start S``,
``--algorithm NAME``, ``--budget N``, ``--jobs N``, ``--backend
{sim,asyncio,udp}``) and one report format (a summary line per seed
plus a ``FAILURE:`` line per violation; exit status 1 when any seed
failed).  ``--backend`` selects the runtime every campaign cluster runs
on: the deterministic simulator (default), a wall-clock asyncio event
loop, or real UDP sockets on loopback (see ``docs/runtimes.md``).
Sim-only capabilities degrade with a clear message — schedule
exploration and fuzz shrinking stay on ``sim``; asking for a sim-only
capability outright (e.g. ``--jobs 2`` on a live backend) raises a
``ConfigurationError`` naming it:

``verify``
    Model-check the standard concurrent write/snapshot scenario: one
    exhaustive-ish DFS pass plus one seeded random-walk exploration per
    seed, checking every schedule's history for linearizability.
    ``--budget`` bounds runs per exploration (default 200).
``chaos``
    Randomized fault campaigns: operations, crashes, partitions, and
    corruption bursts with continuous linearizability and invariant
    checking.  ``--budget`` is events per campaign (default 150).
``fuzz``
    Counterexample-driven fuzzing: each seed draws a full scenario spec
    (config dimensions + event program), executes it with per-phase
    checks, and every failure is automatically shrunk — ddmin over
    events, config minimization, schedule pinning — to a minimal
    deterministic counterexample.  ``--budget`` is events per generated
    spec (default 40); ``--out DIR`` writes counterexample JSON files;
    ``--no-shrink`` records failures unminimized.
``replay FILE``
    Re-execute a counterexample file written by ``fuzz`` and verify it
    reproduces the recorded violation bit-identically (exit 0 exactly
    when it does).  ``--backend NAME`` overrides where the spec re-runs
    (live replays check violation reproduction, not fingerprints).
``latency``
    Measure median per-operation write/snapshot latency and messages
    per operation.  With ``--backend udp`` the same probe runs over
    real sockets, which is how EXPERIMENTS.md's sim-vs-UDP comparison
    is produced.
``load``
    Saturation load generation (see ``docs/benchmarking.md``): drive
    concurrent multi-writer/multi-scanner clients against a deployment
    and report throughput, p50/p95/p99 latency, and a linearizability
    verdict per seed.  ``--clients N`` / ``--depth K`` size the
    closed-loop client pool and its pipeline depth; ``--rate R``
    switches to open-loop arrivals at R ops per time unit; ``--mix W:S``
    sets the writers:scanners ratio and ``--skew X`` concentrates
    traffic on low node ids; ``--n N`` sizes the cluster and
    ``--budget`` is the submission window in simulated time units.
    ``--sweep`` ladders the offered rate to locate the saturation knee
    and writes the result to ``BENCH_PR5.json`` (``--out FILE``
    overrides).  ``--batch N`` coalesces up to N messages per channel
    into one wire bundle (``ChannelConfig.batch_window``; works with
    every mode and backend).  ``--batch-series`` runs the PR 10
    comparison — baseline vs the ``amortized`` variant vs amortized
    plus a transport batch window, one ladder each — and writes
    ``BENCH_PR10.json``.  ``--shards K`` drives the same keyed workload
    against a K-shard fabric instead of one cluster (see
    ``docs/sharding.md``).
``shard``
    Sharded-fabric campaigns (see ``docs/sharding.md``): drive a keyed
    closed-loop workload against ``--shards K`` independent clusters
    behind the consistent-hash router, taking composed cross-shard
    snapshots mid-run and checking every per-shard history *and* the
    composed cuts for linearizability.  ``--skew X`` applies Zipf key
    popularity (hot shards); ``--duration U`` (alias of ``--budget``)
    sets the submission window.  ``--sweep`` runs the E19 scaling ladder
    (K = 1, 2, 4, 8 at fixed n, with the consensus-backed epoch decider
    installed) and writes ``BENCH_PR8.json``
    (``--out FILE`` overrides).  ``chaos --shards K`` likewise runs the
    sharded chaos storm: crashes, online shard splits with live key
    migration, and composed cuts under fire.

``top``
    Live terminal health dashboard: drive a closed-loop workload and
    refresh per-node health states, the blame table (slowest quorum
    responders), and active alerts while it runs (see
    ``docs/observability.md``).  ``--throttle NODE:FACTOR`` makes a
    node limp so the gray-failure detector has something to catch;
    ``--refresh R`` sets the frame interval (simulated time units on
    ``sim``); ``--metrics-port P`` (live backends) serves the registry
    as Prometheus text exposition at ``/metrics`` for the run.
``backends``
    Print the backend capability matrix (which features each of
    ``sim``/``asyncio``/``udp`` provides); ``--json`` emits it as a
    machine-readable document.
``demo``
    Run a tiny end-to-end demo (write/snapshot/corrupt/recover).

``experiments``, ``ablations``, and the campaign commands accept
``--jobs N`` to fan their independent cells out across N worker
processes; results merge deterministically, so parallel output is
byte-identical to serial.

The same commands accept the observability flags (see
``docs/observability.md``):

``--trace-out FILE``
    Capture every cluster the run constructs — operation spans, message
    flow arrows, one track per node — and write a Chrome ``trace_event``
    JSON file viewable at https://ui.perfetto.dev.
``--jsonl-out FILE``
    Write the same session as a JSON-lines event stream (spans, messages,
    metrics) for ad-hoc analysis.
``--stats``
    Print a terminal summary: per-operation table (counts, latency,
    retransmits, messages), the per-node blame table (slowest quorum
    responders), and the full metric catalog including per-node health
    gauges.

Span capture runs in-process, so ``--trace-out``/``--jsonl-out`` force
``--jobs 1``; ``--stats`` merges worker aggregates deterministically and
composes with any ``--jobs N``.  Tracing never perturbs seeded
schedules — results are identical with or without.
"""

from __future__ import annotations

import sys

from repro.core.cluster import ALGORITHMS


def _cmd_experiments(args: list[str]) -> int:
    from repro.harness.experiments import main as run_experiments

    return run_experiments(args)


def _extract_shards(argv: list[str]) -> tuple[int | None, list[str]]:
    """Split ``--shards K`` out of an argv list (None when absent)."""
    shards: int | None = None
    rest: list[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--shards" or arg.startswith("--shards="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if value is None:
                raise SystemExit("--shards requires a value")
            try:
                shards = int(value)
            except ValueError:
                raise SystemExit(f"--shards must be an integer, got {value!r}")
            if shards < 1:
                raise SystemExit(f"--shards must be >= 1, got {shards}")
        else:
            rest.append(arg)
    return shards, rest


def _extract_batch(argv: list[str]) -> tuple[int | None, list[str]]:
    """Split ``--batch N`` out of an argv list (None when absent)."""
    batch: int | None = None
    rest: list[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--batch" or arg.startswith("--batch="):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if value is None:
                raise SystemExit("--batch requires a value")
            try:
                batch = int(value)
            except ValueError:
                raise SystemExit(f"--batch must be an integer, got {value!r}")
            if batch < 1:
                raise SystemExit(f"--batch must be >= 1, got {batch}")
        else:
            rest.append(arg)
    return batch, rest


def _cmd_figures(args: list[str]) -> int:
    from repro.harness.figures import FIGURES, render_figure

    names = args or list(FIGURES)
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        print(f"unknown figures: {unknown}; available: {list(FIGURES)}")
        return 2
    for name in names:
        print(render_figure(name))
        print()
    return 0


def _cmd_ablations(args: list[str]) -> int:
    from repro.harness.ablations import ABLATIONS, run_ablations
    from repro.harness.campaign import extract_campaign_flags
    from repro.harness.parallel import extract_jobs
    from repro.harness.report import print_table
    from repro.obs.cli import (
        clamp_jobs_for_capture,
        extract_obs_flags,
        observe_cli,
    )

    obs_flags, args = extract_obs_flags(args)
    jobs, args = extract_jobs(args)
    options, args = extract_campaign_flags(args, default_budget=1)
    names = args or sorted(ABLATIONS)
    unknown = [name for name in names if name not in ABLATIONS]
    if unknown:
        print(f"unknown ablations: {unknown}; available: {sorted(ABLATIONS)}")
        return 2
    seeds = len(options.seeds) if len(options.seeds) > 1 else None
    jobs = clamp_jobs_for_capture(obs_flags, jobs)
    with observe_cli(obs_flags):
        for name, rows in zip(
            names, run_ablations(names, jobs=jobs, seeds=seeds)
        ):
            print_table(rows, title=ABLATIONS[name][0])
    return 0


def _cmd_algorithms(_args: list[str]) -> int:
    for name, cls in sorted(ALGORITHMS.items()):
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"{name:24s} {cls.__name__:36s} {doc}")
    return 0


def _cmd_verify(args: list[str]) -> int:
    from repro.harness.campaign import (
        extract_backend,
        extract_campaign_flags,
        reject_removed_spellings,
    )
    from repro.harness.parallel import extract_jobs
    from repro.obs.cli import (
        clamp_jobs_for_capture,
        extract_obs_flags,
        observe_cli,
    )
    from repro.verify.explorer import (
        STANDARD_SCENARIO,
        explore_consensus_decision,
        explore_snapshot_scenario,
        run_verify_campaigns,
    )

    obs_flags, args = extract_obs_flags(args)
    jobs, args = extract_jobs(args)
    backend, args = extract_backend(args, default="sim")
    options, rest = extract_campaign_flags(args, default_budget=200)
    reject_removed_spellings(rest, "--algorithm NAME (one per run)")
    if options.algorithm is not None:
        algorithms = [options.algorithm]
    else:
        algorithms = ["ss-nonblocking", "ss-always"]
    if backend != "sim":
        print(
            f"note: schedule-exploring DFS pass is sim-only; on "
            f"{backend!r} each seed drives a live concurrent workload "
            f"and checks its history for linearizability",
            file=sys.stderr,
        )
    jobs = clamp_jobs_for_capture(obs_flags, jobs)
    ok = True
    with observe_cli(obs_flags):
        for algorithm in algorithms:
            if backend == "sim":
                dfs = explore_snapshot_scenario(
                    algorithm,
                    list(STANDARD_SCENARIO),
                    n=3,
                    delta=0,
                    max_runs=options.budget,
                    max_depth=20,
                    strategy="dfs",
                )
                print(f"{algorithm:20s} [dfs        ] {dfs.summary()}")
                ok = ok and dfs.ok
            results = run_verify_campaigns(
                options.seeds,
                jobs=jobs,
                algorithm=algorithm,
                budget=options.budget,
                backend=backend,
            )
            for seed, result in zip(options.seeds, results):
                label = (
                    "random-walk" if backend == "sim" else "live"
                )
                if len(options.seeds) > 1:
                    label = f"{'walk' if backend == 'sim' else 'live'} s={seed}"
                print(f"{algorithm:20s} [{label:11s}] {result.summary()}")
                for failure in result.failures:
                    print("FAILURE:", failure)
                ok = ok and result.ok
        if backend == "sim":
            for strategy in ("dfs", "random-walk"):
                result = explore_consensus_decision(
                    n=3,
                    max_runs=options.budget,
                    max_depth=20,
                    strategy=strategy,
                )
                print(f"{'consensus':20s} [{strategy:11s}] {result.summary()}")
                for failure in result.failures:
                    print("FAILURE:", failure)
                ok = ok and result.ok
    return 0 if ok else 1


def _cmd_chaos(args: list[str]) -> int:
    from repro.harness.campaign import (
        extract_backend,
        extract_campaign_flags,
        print_reports,
        reject_removed_spellings,
    )
    from repro.harness.chaos import run_chaos_campaigns
    from repro.harness.parallel import extract_jobs
    from repro.obs.cli import (
        clamp_jobs_for_capture,
        extract_obs_flags,
        observe_cli,
    )

    obs_flags, args = extract_obs_flags(args)
    jobs, args = extract_jobs(args)
    backend, args = extract_backend(args, default="sim")
    shards, args = _extract_shards(args)
    options, rest = extract_campaign_flags(args, default_budget=150)
    reject_removed_spellings(rest, "--budget N / --seed-start S")
    jobs = clamp_jobs_for_capture(obs_flags, jobs)
    if shards is not None:
        from repro.shard import run_shard_chaos_campaigns

        algorithm = options.algorithm or "ss-nonblocking"
        with observe_cli(obs_flags):
            reports = run_shard_chaos_campaigns(
                options.seeds,
                shards=shards,
                algorithm=algorithm,
                budget=options.budget,
                backend=backend,
            )
            ok = print_reports(options.seeds, reports)
        return 0 if ok else 1
    algorithm = options.algorithm or "ss-always"
    with observe_cli(obs_flags):
        reports = run_chaos_campaigns(
            options.seeds,
            budget=options.budget,
            algorithm=algorithm,
            jobs=jobs,
            backend=backend,
        )
        ok = print_reports(options.seeds, reports)
    return 0 if ok else 1


def _cmd_fuzz(args: list[str]) -> int:
    from repro.fuzz import run_fuzz_campaign
    from repro.harness.campaign import (
        extract_backend,
        extract_campaign_flags,
        print_reports,
        reject_removed_spellings,
    )
    from repro.harness.parallel import extract_jobs
    from repro.obs.cli import (
        clamp_jobs_for_capture,
        extract_obs_flags,
        observe_cli,
    )

    obs_flags, args = extract_obs_flags(args)
    jobs, args = extract_jobs(args)
    backend, args = extract_backend(args, default="sim")
    options, rest = extract_campaign_flags(args, default_budget=40)
    out_dir: str | None = None
    shrink = True
    it = iter(rest)
    leftover: list[str] = []
    for arg in it:
        if arg == "--out":
            out_dir = next(it, None)
            if out_dir is None:
                raise SystemExit("--out requires a directory path")
        elif arg.startswith("--out="):
            out_dir = arg.split("=", 1)[1]
        elif arg == "--no-shrink":
            shrink = False
        else:
            leftover.append(arg)
    reject_removed_spellings(leftover)
    if leftover:
        raise SystemExit(f"fuzz: unexpected arguments {leftover}")
    algorithm = options.algorithm or "ss-always"
    jobs = clamp_jobs_for_capture(obs_flags, jobs)
    with observe_cli(obs_flags):
        reports = run_fuzz_campaign(
            options.seeds,
            jobs=jobs,
            algorithm=algorithm,
            budget=options.budget,
            out_dir=out_dir,
            shrink=shrink,
            backend=backend,
        )
        ok = print_reports(options.seeds, reports)
    return 0 if ok else 1


def _cmd_replay(args: list[str]) -> int:
    from repro.fuzz import replay_counterexample
    from repro.harness.campaign import extract_backend
    from repro.obs.cli import extract_obs_flags, observe_cli

    obs_flags, args = extract_obs_flags(args)
    backend, args = extract_backend(args)
    if len(args) != 1:
        raise SystemExit(
            "usage: python -m repro replay [--backend NAME] "
            "<counterexample.json>"
        )
    with observe_cli(obs_flags):
        result = replay_counterexample(args[0], backend=backend)
        print(result.summary())
        for failure in result.outcome.failures:
            print("FAILURE:", failure)
    return 0 if result.ok else 1


def _cmd_latency(args: list[str]) -> int:
    from repro.harness.campaign import (
        extract_backend,
        extract_campaign_flags,
        print_reports,
        reject_removed_spellings,
    )
    from repro.harness.latency import run_latency_campaigns
    from repro.harness.parallel import extract_jobs
    from repro.obs.cli import (
        clamp_jobs_for_capture,
        extract_obs_flags,
        observe_cli,
    )

    obs_flags, args = extract_obs_flags(args)
    jobs, args = extract_jobs(args)
    backend, args = extract_backend(args, default="sim")
    options, rest = extract_campaign_flags(args, default_budget=16)
    reject_removed_spellings(rest)
    if rest:
        raise SystemExit(f"latency: unexpected arguments {rest}")
    algorithm = options.algorithm or "ss-nonblocking"
    jobs = clamp_jobs_for_capture(obs_flags, jobs)
    with observe_cli(obs_flags):
        reports = run_latency_campaigns(
            options.seeds,
            jobs=jobs,
            algorithm=algorithm,
            budget=options.budget,
            backend=backend,
        )
        ok = print_reports(options.seeds, reports)
    return 0 if ok else 1


def _cmd_load(args: list[str]) -> int:
    from repro.harness.campaign import (
        extract_backend,
        extract_campaign_flags,
        print_reports,
        reject_removed_spellings,
    )
    from repro.harness.parallel import extract_jobs
    from repro.load import (
        LoadSpec,
        batch_series,
        parse_mix,
        run_load_campaigns,
        sweep_rates,
        write_batch_bench,
        write_bench,
    )
    from repro.obs.cli import (
        clamp_jobs_for_capture,
        extract_obs_flags,
        observe_cli,
    )

    obs_flags, args = extract_obs_flags(args)
    jobs, args = extract_jobs(args)
    backend, args = extract_backend(args, default="sim")
    shards, args = _extract_shards(args)
    batch, args = _extract_batch(args)
    # --duration is load's natural spelling of the shared --budget knob
    # (the submission window in simulated time units); both are accepted.
    args = [
        "--budget" + arg.removeprefix("--duration") if
        arg == "--duration" or arg.startswith("--duration=") else arg
        for arg in args
    ]
    options, rest = extract_campaign_flags(args, default_budget=60)
    clients, depth, n = 8, 4, 4
    rate: float | None = None
    write_fraction, skew = 0.8, 0.0
    sweep = False
    series = False
    out: str | None = None
    it = iter(rest)
    leftover: list[str] = []
    for arg in it:
        if arg == "--sweep":
            sweep = True
        elif arg == "--batch-series":
            series = True
        elif arg in ("--clients", "--depth", "--rate", "--mix", "--skew",
                     "--n", "--out"):
            value = next(it, None)
            if value is None:
                raise SystemExit(f"{arg} requires a value")
            if arg == "--clients":
                clients = int(value)
            elif arg == "--depth":
                depth = int(value)
            elif arg == "--rate":
                rate = float(value)
            elif arg == "--mix":
                write_fraction = parse_mix(value)
            elif arg == "--skew":
                skew = float(value)
            elif arg == "--n":
                n = int(value)
            else:
                out = value
        else:
            leftover.append(arg)
    reject_removed_spellings(leftover)
    if leftover:
        raise SystemExit(f"load: unexpected arguments {leftover}")
    algorithm = options.algorithm or "ss-nonblocking"
    jobs = clamp_jobs_for_capture(obs_flags, jobs)
    if shards is not None:
        from repro.shard import ShardLoadSpec, run_shard_load_campaigns

        spec = ShardLoadSpec(
            mode="open" if rate is not None else "closed",
            clients=clients,
            depth=depth,
            rate=rate,
            duration=float(options.budget),
            write_fraction=write_fraction,
            skew=skew,
        )
        with observe_cli(obs_flags):
            reports = run_shard_load_campaigns(
                options.seeds,
                shards=shards,
                algorithm=algorithm,
                budget=options.budget,
                backend=backend,
                spec=spec,
                n=n,
                batch=batch,
            )
            ok = print_reports(options.seeds, reports)
        return 0 if ok else 1
    with observe_cli(obs_flags):
        if series:
            results = batch_series(
                backend=backend,
                n=n,
                duration=float(options.budget),
                seed=options.seeds[0],
                batch=batch if batch is not None else 8,
                progress=True,
            )
            for result in results:
                print(result.summary())
                for failure in result.failures:
                    print("FAILURE:", failure)
            path = write_batch_bench(out or "BENCH_PR10.json", results)
            print(f"wrote {path}")
            return 0 if all(result.ok for result in results) else 1
        if sweep:
            result = sweep_rates(
                backend=backend,
                algorithm=algorithm,
                n=n,
                duration=float(options.budget),
                write_fraction=write_fraction,
                skew=skew,
                seed=options.seeds[0],
                batch=batch,
            )
            print(result.summary())
            for failure in result.failures:
                print("FAILURE:", failure)
            path = write_bench(out or "BENCH_PR5.json", [result])
            print(f"wrote {path}")
            return 0 if result.ok else 1
        spec = LoadSpec(
            mode="open" if rate is not None else "closed",
            clients=clients,
            depth=depth,
            rate=rate,
            write_fraction=write_fraction,
            skew=skew,
        )
        reports = run_load_campaigns(
            options.seeds,
            jobs=jobs,
            algorithm=algorithm,
            budget=options.budget,
            backend=backend,
            spec=spec,
            n=n,
            batch=batch,
        )
        ok = print_reports(options.seeds, reports)
    return 0 if ok else 1


def _cmd_shard(args: list[str]) -> int:
    from repro.harness.campaign import (
        extract_backend,
        extract_campaign_flags,
        print_reports,
        reject_removed_spellings,
    )
    from repro.shard import (
        ShardLoadSpec,
        run_shard_load_campaigns,
        shard_scaling_series,
        write_shard_bench,
    )

    backend, args = extract_backend(args, default="sim")
    shards, args = _extract_shards(args)
    args = [
        "--budget" + arg.removeprefix("--duration") if
        arg == "--duration" or arg.startswith("--duration=") else arg
        for arg in args
    ]
    options, rest = extract_campaign_flags(args, default_budget=60)
    sweep = False
    skew = 0.0
    out: str | None = None
    it = iter(rest)
    leftover: list[str] = []
    for arg in it:
        if arg == "--sweep":
            sweep = True
        elif arg in ("--skew", "--out"):
            value = next(it, None)
            if value is None:
                raise SystemExit(f"{arg} requires a value")
            if arg == "--skew":
                skew = float(value)
            else:
                out = value
        else:
            leftover.append(arg)
    reject_removed_spellings(leftover)
    if leftover:
        raise SystemExit(f"shard: unexpected arguments {leftover}")
    algorithm = options.algorithm or "ss-nonblocking"
    if sweep:
        print(f"E19 scaling series on {backend!r} ({algorithm})…")
        reports = shard_scaling_series(
            backend=backend,
            algorithm=algorithm,
            duration=float(options.budget),
            seed=options.seeds[0],
            progress=True,
        )
        path = write_shard_bench(out or "BENCH_PR8.json", reports)
        print(f"wrote {path}")
        return 0 if all(report.ok for report in reports) else 1
    spec = ShardLoadSpec(skew=skew, duration=float(options.budget))
    reports = run_shard_load_campaigns(
        options.seeds,
        shards=shards if shards is not None else 4,
        algorithm=algorithm,
        budget=options.budget,
        backend=backend,
        spec=spec,
    )
    ok = print_reports(options.seeds, reports)
    return 0 if ok else 1


def _cmd_top(args: list[str]) -> int:
    from repro.obs.top import run_top

    return run_top(args)


def _cmd_backends(args: list[str]) -> int:
    from repro.backend import (
        CAPABILITY_NOTES,
        backend_capabilities,
        backend_names,
    )

    names = backend_names()
    if "--json" in args:
        import json

        payload = {
            "backends": {
                name: backend_capabilities(name).describe() for name in names
            },
            "notes": dict(CAPABILITY_NOTES),
        }
        print(json.dumps(payload, indent=2))
        return 0
    if args:
        raise SystemExit(f"backends: unexpected arguments {args}")
    width = max(len(c) for c in CAPABILITY_NOTES)
    header = "capability".ljust(width) + "".join(
        f"  {name:>7s}" for name in names
    )
    print(header)
    print("-" * len(header))
    flags = {name: backend_capabilities(name).describe() for name in names}
    for capability in CAPABILITY_NOTES:
        row = capability.ljust(width)
        for name in names:
            mark = "yes" if flags[name][capability] else "-"
            row += f"  {mark:>7s}"
        print(row + f"  ({CAPABILITY_NOTES[capability]})")
    return 0


def _cmd_demo(_args: list[str]) -> int:
    from repro import ClusterConfig, SimBackend
    from repro.analysis.invariants import definition1_consistent
    from repro.fault import TransientFaultInjector

    cluster = SimBackend("ss-always", ClusterConfig(n=5, delta=2))
    cluster.write_sync(0, b"hello")
    cluster.write_sync(1, b"world")
    print("snapshot:", cluster.snapshot_sync(2).values)
    print("injecting arbitrary state corruption everywhere…")
    TransientFaultInjector(cluster, seed=1).scramble_everything()
    cluster.tracker.reset()
    cluster.run_until(cluster.tracker.wait_cycles(6), max_events=None)
    print("consistent after 6 cycles:", definition1_consistent(cluster).ok)
    cluster.write_sync(0, b"recovered")
    print("post-recovery snapshot:", cluster.snapshot_sync(3).values)
    return 0


_COMMANDS = {
    "experiments": _cmd_experiments,
    "figures": _cmd_figures,
    "ablations": _cmd_ablations,
    "algorithms": _cmd_algorithms,
    "verify": _cmd_verify,
    "chaos": _cmd_chaos,
    "fuzz": _cmd_fuzz,
    "replay": _cmd_replay,
    "latency": _cmd_latency,
    "load": _cmd_load,
    "shard": _cmd_shard,
    "top": _cmd_top,
    "backends": _cmd_backends,
    "demo": _cmd_demo,
}


def main(argv: list[str] | None = None) -> int:
    """Dispatch ``python -m repro`` subcommands."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command = argv[0]
    handler = _COMMANDS.get(command)
    if handler is None:
        print(f"unknown command {command!r}; choose from {sorted(_COMMANDS)}")
        return 2
    return handler(argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
