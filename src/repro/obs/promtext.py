"""Prometheus text exposition for the metric registry.

Renders a collected metric snapshot in the Prometheus text format
(``text/plain; version=0.0.4``) and serves it over a minimal asyncio
HTTP endpoint, so a live run on the UDP backend can be scraped by any
Prometheus-compatible agent while chaos is in progress.

Mapping rules:

* dotted names become underscore names under the ``repro_`` prefix
  (``net.messages_total`` → ``repro_net_messages_total``);
* per-node health gauges (``health.<signal>.c<i>.n<j>``) become one
  metric per signal with ``cluster``/``node`` labels
  (``repro_health_state{cluster="0",node="3"}``);
* histogram-valued instruments render as Prometheus summaries:
  ``_count``/``_sum`` plus one ``{quantile="…"}`` sample per estimate.

No third-party client library is involved — the format is plain text
and the server is ``asyncio.start_server`` on loopback.
"""

from __future__ import annotations

import asyncio
import re
from typing import Any, Callable

__all__ = ["prometheus_text", "MetricsExposition", "CONTENT_TYPE"]

#: The Prometheus text exposition content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_HEALTH = re.compile(r"^health\.([a-z_]+)\.c(\d+)\.n(\d+)$")
_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def _mangle(name: str) -> str:
    return "repro_" + _INVALID.sub("_", name)


def _format_value(value: float) -> str:
    if value != value:  # NaN never leaves the renderer
        return "0"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def prometheus_text(values: dict[str, Any]) -> str:
    """Render one ``MetricsRegistry.collect()`` snapshot as exposition text."""
    scalars: list[tuple[str, str, float]] = []
    health: dict[str, list[tuple[str, str, float]]] = {}
    summaries: list[tuple[str, dict]] = []
    for name, value in sorted(values.items()):
        if isinstance(value, dict):
            summaries.append((name, value))
            continue
        match = _HEALTH.match(name)
        if match is not None:
            signal, cluster, node = match.groups()
            health.setdefault(signal, []).append((cluster, node, value))
        else:
            scalars.append((name, _mangle(name), value))
    lines: list[str] = []
    for name, mangled, value in scalars:
        lines.append(f"# TYPE {mangled} gauge")
        lines.append(f"{mangled} {_format_value(value)}")
    for signal in sorted(health):
        mangled = _mangle(f"health.{signal}")
        lines.append(f"# TYPE {mangled} gauge")
        for cluster, node, value in health[signal]:
            lines.append(
                f'{mangled}{{cluster="{cluster}",node="{node}"}} '
                f"{_format_value(value)}"
            )
    for name, summary in summaries:
        mangled = _mangle(name)
        lines.append(f"# TYPE {mangled} summary")
        for key, quantile in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
            if key in summary:
                lines.append(
                    f'{mangled}{{quantile="{quantile}"}} '
                    f"{_format_value(summary[key])}"
                )
        lines.append(f"{mangled}_count {_format_value(summary.get('count', 0))}")
        lines.append(f"{mangled}_sum {_format_value(summary.get('sum', 0.0))}")
    return "\n".join(lines) + "\n"


class MetricsExposition:
    """A loopback HTTP endpoint serving ``render()`` as exposition text.

    ``render`` is called per scrape (typically
    ``lambda: prometheus_text(obs.collect())``), so the response always
    reflects the live registry.  Must be started from a running asyncio
    event loop — i.e. on the live backends; the simulator has no loop to
    serve from (its clock is virtual).
    """

    def __init__(self, render: Callable[[], str]) -> None:
        self._render = render
        self._server: asyncio.AbstractServer | None = None
        self.host: str | None = None
        self.port: int | None = None

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind and serve; ``port=0`` picks a free port.  Returns the address."""
        self._server = await asyncio.start_server(self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    @property
    def url(self) -> str:
        """The scrape URL (valid after :meth:`start`)."""
        return f"http://{self.host}:{self.port}/metrics"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            # Drain the request line and headers; any GET path is served.
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            body = self._render().encode("utf-8")
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: " + CONTENT_TYPE.encode("ascii") + b"\r\n"
                b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
                b"Connection: close\r\n"
                b"\r\n" + body
            )
            await writer.drain()
        finally:
            writer.close()

    async def stop(self) -> None:
        """Stop serving (idempotent)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
