"""The observability session: spans + metrics + message trace, wired in.

One :class:`Observability` object is a *session*: it owns a
:class:`~repro.obs.spans.SpanRecorder`, a
:class:`~repro.obs.registry.MetricsRegistry`, and one
:class:`ClusterObs` per attached cluster.  Attaching a cluster

* records its network traffic into a per-cluster
  :class:`~repro.analysis.trace.MessageTrace` (the causal send/deliver
  edges the Chrome exporter turns into flow arrows),
* opens a run-level root span that every operation span nests under,
* hands the kernel a :class:`KernelStats` struct and every process a
  :class:`ProcessObs` struct — the plain-integer hooks the hot paths
  update behind an ``obs is not None`` test.

Sessions can be installed as *ambient* via :func:`session`, in which
case every :class:`~repro.core.cluster.SnapshotCluster` constructed
inside the ``with`` block attaches itself automatically — this is how
``--trace-out`` observes clusters that experiment runners build
internally.

Determinism contract: nothing in this module (or in the hooks it
installs) draws from a kernel RNG or schedules kernel events.  Hooks
append to lists and increment integers only, so enabling observability
cannot perturb a seeded schedule — ``tests/test_determinism_regression``
asserts the golden fingerprints hold with tracing on.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro.analysis.trace import MessageTrace
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import ABORTED, OK, Span, SpanRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.cluster import SnapshotCluster

__all__ = [
    "KernelStats",
    "ProcessObs",
    "ClusterObs",
    "Observability",
    "session",
    "current_session",
]


class KernelStats:
    """Plain-integer kernel instrumentation (batches, timer pool).

    Attached as ``kernel.obs``; the dispatch loop and ``sleep`` update it
    behind a single ``obs is not None`` test.  Event counts and queue
    depth come from the kernel's own attributes at collect time.
    """

    __slots__ = (
        "batches",
        "batch_events",
        "largest_batch",
        "timer_pool_hits",
        "timer_pool_misses",
    )

    def __init__(self) -> None:
        self.batches = 0
        self.batch_events = 0
        self.largest_batch = 0
        self.timer_pool_hits = 0
        self.timer_pool_misses = 0

    def record_batch(self, size: int) -> None:
        """Account one same-instant dispatch batch of ``size`` events."""
        self.batches += 1
        self.batch_events += size
        if size > self.largest_batch:
            self.largest_batch = size


class ProcessObs:
    """Per-process stabilization/retry counters, attached as ``process.obs``.

    The heal counters are the paper's *corrupted-state detections*: each
    one increments when a self-stabilizing cleanup line actually changed
    state (evidence that a transient fault, restart, or stale message had
    left an inconsistency) rather than merely re-asserting an invariant
    that already held.
    """

    __slots__ = (
        "_owner",
        "node_id",
        "retransmits",
        "ts_heals",
        "sns_heals",
        "vc_clears",
        "task_repairs",
        "reset_invocations",
    )

    def __init__(self, owner: "ClusterObs", node_id: int) -> None:
        self._owner = owner
        self.node_id = node_id
        self.retransmits = 0
        self.ts_heals = 0
        self.sns_heals = 0
        self.vc_clears = 0
        self.task_repairs = 0
        self.reset_invocations = 0

    @property
    def detections(self) -> int:
        """Total corrupted-state detections across all heal classes."""
        return self.ts_heals + self.sns_heals + self.vc_clears + self.task_repairs

    def retransmit(self) -> None:
        """Account one quorum-loop retransmission (a repeat broadcast)."""
        self.retransmits += 1
        span = self._owner.active_span(self.node_id)
        if span is not None:
            span.retransmits += 1

    def phase(self, label: str) -> None:
        """Record a phase transition on the node's active operation span."""
        span = self._owner.active_span(self.node_id)
        if span is not None:
            span.phases.append((self._owner.cluster.kernel.now, label))


class ClusterObs:
    """Everything the session knows about one attached cluster."""

    def __init__(
        self,
        session: "Observability",
        cluster: "SnapshotCluster",
        index: int,
        trace_messages: bool = True,
    ) -> None:
        self.session = session
        self.cluster = cluster
        self.index = index
        self.trace: MessageTrace | None = (
            MessageTrace(cluster.network) if trace_messages else None
        )
        if cluster.kernel.obs is None:
            cluster.kernel.obs = KernelStats()
        self.kernel_stats = cluster.kernel.obs
        self.process_obs: list[ProcessObs] = []
        for process in cluster.processes:
            pobs = ProcessObs(self, process.node_id)
            process.obs = pobs
            self.process_obs.append(pobs)
        #: node id -> stack of (span, window_cm, window_holder) for the
        #: operations currently open on that node (a node may run one
        #: write and one snapshot concurrently).
        self._active: dict[int, list[tuple[Span, Any, Any]]] = {}
        self.root = session.recorder.begin(
            name="run",
            cluster=index,
            node=None,
            algorithm=cluster.algorithm_name,
            start=cluster.kernel.now,
        )

    # -- span lifecycle --------------------------------------------------------

    def active_span(self, node_id: int) -> Span | None:
        """The innermost open operation span on ``node_id``, if any."""
        stack = self._active.get(node_id)
        return stack[-1][0] if stack else None

    def begin_op(self, node_id: int, name: str, op_id: int) -> Span:
        """Open an operation span and its traffic-attribution window."""
        span = self.session.recorder.begin(
            name=name,
            cluster=self.index,
            node=node_id,
            algorithm=self.cluster.algorithm_name,
            start=self.cluster.kernel.now,
            parent_id=self.root.span_id,
            op_id=op_id,
        )
        window_cm = self.cluster.metrics.window()
        holder = window_cm.__enter__()
        self._active.setdefault(node_id, []).append((span, window_cm, holder))
        return span

    def end_op(self, span: Span, status: str = OK) -> None:
        """Close an operation span, folding in its traffic window."""
        stack = self._active.get(span.node, [])
        for position, (candidate, window_cm, holder) in enumerate(stack):
            if candidate is span:
                del stack[position]
                window_cm.__exit__(None, None, None)
                stats = holder.stats
                span.messages_by_kind = dict(stats.messages_by_kind)
                span.message_bytes = stats.total_bytes
                break
        self.session.recorder.end(
            span, end=self.cluster.kernel.now, status=status
        )

    # -- metric contribution ---------------------------------------------------

    def contribute(
        self, totals: dict[str, float], seen_kernels: set[int]
    ) -> None:
        """Add this cluster's pull-style metric values into ``totals``.

        ``seen_kernels`` deduplicates kernels shared across clusters
        (reconfiguration runs two clusters on one timeline).
        """
        cluster = self.cluster
        kernel = cluster.kernel
        if id(kernel) not in seen_kernels:
            seen_kernels.add(id(kernel))
            # Live kernels (asyncio/udp backends) have no event counter,
            # dispatch heap, or timer pool — the loop owns those — so the
            # sim-only gauges contribute zero there.
            _add(
                totals,
                "kernel.events_dispatched",
                getattr(kernel, "events_processed", 0),
            )
            _add(totals, "kernel.queue_depth", len(getattr(kernel, "_heap", ())))
            _add(
                totals,
                "kernel.timer_pool_size",
                len(getattr(kernel, "_timer_pool", ())),
            )
            stats = kernel.obs
            if stats is not None:
                _add(totals, "kernel.batches", stats.batches)
                _add(totals, "kernel.batched_events", stats.batch_events)
                _add(totals, "kernel.timer_pool_hits", stats.timer_pool_hits)
                _add(totals, "kernel.timer_pool_misses", stats.timer_pool_misses)
                totals["kernel.largest_batch"] = max(
                    totals.get("kernel.largest_batch", 0), stats.largest_batch
                )
        snap = cluster.metrics.snapshot()
        _add(totals, "net.messages_total", snap.total_messages)
        _add(totals, "net.bytes_total", snap.total_bytes)
        for kind, count in snap.messages_by_kind.items():
            _add(totals, f"net.messages.{kind}", count)
        _add(totals, "net.dropped_loss", snap.dropped_loss)
        _add(totals, "net.dropped_capacity", snap.dropped_capacity)
        _add(totals, "net.duplicated", snap.duplicated)
        _add(totals, "net.in_flight", cluster.network.in_flight_total())
        _add(
            totals,
            "stabilization.gossip_rounds",
            sum(p.iterations_completed for p in cluster.processes),
        )
        _add(
            totals,
            "stabilization.corrupted_state_detections",
            sum(p.detections for p in self.process_obs),
        )
        _add(totals, "stabilization.ts_heals", sum(p.ts_heals for p in self.process_obs))
        _add(totals, "stabilization.sns_heals", sum(p.sns_heals for p in self.process_obs))
        _add(totals, "stabilization.vc_clears", sum(p.vc_clears for p in self.process_obs))
        _add(
            totals,
            "stabilization.task_repairs",
            sum(p.task_repairs for p in self.process_obs),
        )
        _add(
            totals,
            "stabilization.reset_invocations",
            sum(p.reset_invocations for p in self.process_obs),
        )
        _add(
            totals,
            "stabilization.resets_completed",
            sum(getattr(p, "resets_completed", 0) for p in cluster.processes),
        )
        _add(
            totals,
            "quorum.retransmits",
            sum(p.retransmits for p in self.process_obs),
        )


def _add(totals: dict[str, float], name: str, value: float) -> None:
    totals[name] = totals.get(name, 0) + value


class Observability:
    """One observability session: registry + span recorder + clusters."""

    def __init__(self, trace_messages: bool = True) -> None:
        self.registry = MetricsRegistry()
        self.recorder = SpanRecorder()
        self.clusters: list[ClusterObs] = []
        self._trace_messages = trace_messages

    def attach(self, cluster: "SnapshotCluster") -> ClusterObs:
        """Observe a cluster (idempotent: re-attaching returns the existing)."""
        if cluster.obs is not None:
            return cluster.obs
        cobs = ClusterObs(
            self, cluster, len(self.clusters), trace_messages=self._trace_messages
        )
        self.clusters.append(cobs)
        cluster.obs = cobs
        return cobs

    def collect(self) -> dict[str, Any]:
        """Pull every metric source and return ``{name: value}``.

        Cluster-derived values land in gauges (summed across clusters,
        except ``kernel.largest_batch`` which takes the max); values
        pushed directly into the registry (e.g. by E07/E08) pass through
        untouched.
        """
        totals: dict[str, float] = {}
        seen_kernels: set[int] = set()
        for cobs in self.clusters:
            cobs.contribute(totals, seen_kernels)
        ops = self.recorder.ops()
        totals["ops.total"] = len(ops)
        totals["ops.completed"] = sum(1 for s in ops if s.status == OK)
        totals["ops.aborted"] = sum(1 for s in ops if s.status == ABORTED)
        totals["ops.open"] = sum(1 for s in ops if s.end is None)
        totals["ops.retransmits"] = sum(s.retransmits for s in ops)
        for name, value in totals.items():
            self.registry.gauge(name).set(value)
        return self.registry.collect()

    def finish(self) -> None:
        """Close every still-open span at its cluster's current sim time.

        Open operation spans keep status ``"open"`` (they genuinely did
        not finish); run roots close ``"ok"``.
        """
        for cobs in self.clusters:
            now = cobs.cluster.kernel.now
            for stack in list(cobs._active.values()):
                for span, window_cm, _holder in list(stack):
                    window_cm.__exit__(None, None, None)
                    span.end = now
                stack.clear()
            for span in self.recorder.spans:
                if span.cluster == cobs.index and span.end is None:
                    span.end = now
            if cobs.root.status == "open":
                cobs.root.status = OK

    # -- exporter front doors (implementations in repro.obs.export) ------------

    def chrome_trace(self) -> dict:
        """The session as a Chrome ``trace_event`` JSON object."""
        from repro.obs.export import chrome_trace

        return chrome_trace(self)

    def jsonl(self) -> str:
        """The session as a JSON-lines event stream."""
        from repro.obs.export import jsonl

        return jsonl(self)

    def summary(self) -> str:
        """The session as a terminal summary (operations + metrics tables)."""
        from repro.obs.export import summary

        return summary(self)


#: Stack of ambient sessions; clusters constructed while one is installed
#: attach to the innermost.
_SESSIONS: list[Observability] = []


def current_session() -> Observability | None:
    """The innermost ambient session, or ``None``."""
    return _SESSIONS[-1] if _SESSIONS else None


@contextmanager
def session(obs: Observability | None = None) -> Iterator[Observability]:
    """Install an ambient session for the duration of the ``with`` block."""
    if obs is None:
        obs = Observability()
    _SESSIONS.append(obs)
    try:
        yield obs
    finally:
        _SESSIONS.pop()
