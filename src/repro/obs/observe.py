"""The observability session: spans + metrics + message trace, wired in.

One :class:`Observability` object is a *session*: it owns a
:class:`~repro.obs.spans.SpanRecorder`, a
:class:`~repro.obs.registry.MetricsRegistry`, and one
:class:`ClusterObs` per attached cluster.  Attaching a cluster

* records its network traffic into a per-cluster
  :class:`~repro.analysis.trace.MessageTrace` (the causal send/deliver
  edges the Chrome exporter turns into flow arrows),
* opens a run-level root span that every operation span nests under,
* hands the kernel a :class:`KernelStats` struct and every process a
  :class:`ProcessObs` struct — the plain-integer hooks the hot paths
  update behind an ``obs is not None`` test.

Sessions can be installed as *ambient* via :func:`session`, in which
case every :class:`~repro.core.cluster.SimBackend` constructed
inside the ``with`` block attaches itself automatically — this is how
``--trace-out`` observes clusters that experiment runners build
internally.

Determinism contract: nothing in this module (or in the hooks it
installs) draws from a kernel RNG or schedules kernel events.  Hooks
append to lists and increment integers only, so enabling observability
cannot perturb a seeded schedule — ``tests/test_determinism_regression``
asserts the golden fingerprints hold with tracing on.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro.analysis.trace import MessageTrace
from repro.obs.attribution import QuorumRound, blame_aggregate, merge_blame
from repro.obs.health import STATE_CODES, HealthMonitor, NodeVitals
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import ABORTED, OK, Span, SpanRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backend.sim import SimBackend

__all__ = [
    "KernelStats",
    "ProcessObs",
    "ClusterObs",
    "Observability",
    "session",
    "current_session",
]


class KernelStats:
    """Plain-integer kernel instrumentation (batches, timer pool).

    Attached as ``kernel.obs``; the dispatch loop and ``sleep`` update it
    behind a single ``obs is not None`` test.  Event counts and queue
    depth come from the kernel's own attributes at collect time.
    """

    __slots__ = (
        "batches",
        "batch_events",
        "largest_batch",
        "timer_pool_hits",
        "timer_pool_misses",
    )

    def __init__(self) -> None:
        self.batches = 0
        self.batch_events = 0
        self.largest_batch = 0
        self.timer_pool_hits = 0
        self.timer_pool_misses = 0

    def record_batch(self, size: int) -> None:
        """Account one same-instant dispatch batch of ``size`` events."""
        self.batches += 1
        self.batch_events += size
        if size > self.largest_batch:
            self.largest_batch = size


class ProcessObs:
    """Per-process stabilization/retry counters, attached as ``process.obs``.

    The heal counters are the paper's *corrupted-state detections*: each
    one increments when a self-stabilizing cleanup line actually changed
    state (evidence that a transient fault, restart, or stale message had
    left an inconsistency) rather than merely re-asserting an invariant
    that already held.
    """

    __slots__ = (
        "_owner",
        "node_id",
        "retransmits",
        "ts_heals",
        "sns_heals",
        "vc_clears",
        "task_repairs",
        "reset_invocations",
        "consensus_rounds",
        "consensus_decides",
        "consensus_heals",
        "consensus_recycled",
        "_rounds",
    )

    def __init__(self, owner: "ClusterObs", node_id: int) -> None:
        self._owner = owner
        self.node_id = node_id
        self.retransmits = 0
        self.ts_heals = 0
        self.sns_heals = 0
        self.vc_clears = 0
        self.task_repairs = 0
        self.reset_invocations = 0
        #: Consensus-layer counters (:mod:`repro.consensus`): binary
        #: round transitions, multivalued decides, corrupted-state
        #: repairs, and whole-instance recycles.  The heals stay *out*
        #: of :attr:`detections` — that sum drives the health monitor's
        #: corrupt-suspect classification, which is calibrated on the
        #: snapshot algorithms' own cleanup lines.
        self.consensus_rounds = 0
        self.consensus_decides = 0
        self.consensus_heals = 0
        self.consensus_recycled = 0
        #: Recent quorum rounds per awaited ack kind (bounded FIFO).
        #: Replies attribute to the *oldest* round still missing that
        #: sender, so a straggler's ack for round k is timed against
        #: round k even when the requester is several rounds ahead —
        #: that is how a limping node's true latency gets measured at
        #: all (its replies land after each quorum completed).
        self._rounds: dict[str, deque[QuorumRound]] = {}

    @property
    def detections(self) -> int:
        """Total corrupted-state detections across all heal classes."""
        return self.ts_heals + self.sns_heals + self.vc_clears + self.task_repairs

    def retransmit(self) -> None:
        """Account one quorum-loop retransmission (a repeat broadcast)."""
        self.retransmits += 1
        span = self._owner.active_span(self.node_id)
        if span is not None:
            span.retransmits += 1

    def phase(self, label: str) -> None:
        """Record a phase transition on the node's active operation span."""
        span = self._owner.active_span(self.node_id)
        if span is not None:
            span.phases.append((self._owner.cluster.kernel.now, label))

    # -- quorum attribution ----------------------------------------------------

    #: How many recent rounds per ack kind stay open for late replies.
    #: Must cover the straggler gap: at delay factor ``f`` a limping
    #: node's ack lands roughly ``f × mean_delay / op_interval`` rounds
    #: behind; replies older than the window attribute to the oldest
    #: retained round (still a *large* latency, so blame still lands on
    #: the straggler, just slightly under-measured).
    ROUND_WINDOW = 8

    def begin_round(self, kind: str, threshold: int) -> QuorumRound:
        """Open a quorum round awaiting ``kind`` replies (collector entry).

        The round attaches to the node's active operation span (if any)
        and enters the node's recent-rounds window for its kind; the
        oldest round falls out once the window is full.
        """
        owner = self._owner
        round_ = QuorumRound(
            kind=kind,
            node=self.node_id,
            start=owner.cluster.kernel.now,
            threshold=threshold,
        )
        window = self._rounds.get(kind)
        if window is None:
            window = self._rounds[kind] = deque(maxlen=self.ROUND_WINDOW)
        window.append(round_)
        span = owner.active_span(self.node_id)
        if span is not None:
            span.rounds.append(round_)
        return round_

    def on_reply(self, sender: int, kind: str, now: float) -> None:
        """Attribute one arriving message to a recent round of its kind.

        Called from the deliver path for *every* arriving packet behind
        an ``obs is not None`` test; non-ack kinds miss the dict lookup
        and return immediately.  The reply lands in the oldest windowed
        round still missing this sender (FIFO matching — each request
        draws one reply per responder), so duplicates fall through to
        the round they retransmitted for and true duplicates are
        dropped.  Self-loopback replies are timed for attribution but
        excluded from the responder's vitals (they measure the
        loopback, not the node's service time).
        """
        window = self._rounds.get(kind)
        if window is None:
            return
        for round_ in window:
            if sender not in round_.replies:
                latency = now - round_.start
                if latency < 0.0:
                    return
                round_.replies[sender] = latency
                if sender != self.node_id:
                    self._owner.vitals[sender].record_reply(latency, now)
                return


class ClusterObs:
    """Everything the session knows about one attached cluster."""

    def __init__(
        self,
        session: "Observability",
        cluster: "SimBackend",
        index: int,
        trace_messages: bool = True,
    ) -> None:
        self.session = session
        self.cluster = cluster
        self.index = index
        #: Optional human label for this cluster in exports (the sharded
        #: fabric sets ``"shard<K>"`` so blame/health rows name shards).
        self.label: str | None = None
        self.trace: MessageTrace | None = (
            MessageTrace(cluster.network) if trace_messages else None
        )
        if cluster.kernel.obs is None:
            cluster.kernel.obs = KernelStats()
        self.kernel_stats = cluster.kernel.obs
        self.process_obs: list[ProcessObs] = []
        for process in cluster.processes:
            pobs = ProcessObs(self, process.node_id)
            process.obs = pobs
            self.process_obs.append(pobs)
        #: Per-node reply-path accumulators feeding the health monitor.
        self.vitals: list[NodeVitals] = [
            NodeVitals(process.node_id) for process in cluster.processes
        ]
        self.health = HealthMonitor(self)
        #: node id -> stack of (span, window_cm, window_holder) for the
        #: operations currently open on that node (a node may run one
        #: write and one snapshot concurrently).
        self._active: dict[int, list[tuple[Span, Any, Any]]] = {}
        self.root = session.recorder.begin(
            name="run",
            cluster=index,
            node=None,
            algorithm=cluster.algorithm_name,
            start=cluster.kernel.now,
        )

    # -- span lifecycle --------------------------------------------------------

    def active_span(self, node_id: int) -> Span | None:
        """The innermost open operation span on ``node_id``, if any."""
        stack = self._active.get(node_id)
        return stack[-1][0] if stack else None

    def begin_op(self, node_id: int, name: str, op_id: int) -> Span:
        """Open an operation span and its traffic-attribution window."""
        span = self.session.recorder.begin(
            name=name,
            cluster=self.index,
            node=node_id,
            algorithm=self.cluster.algorithm_name,
            start=self.cluster.kernel.now,
            parent_id=self.root.span_id,
            op_id=op_id,
        )
        window_cm = self.cluster.metrics.window()
        holder = window_cm.__enter__()
        self._active.setdefault(node_id, []).append((span, window_cm, holder))
        return span

    def end_op(self, span: Span, status: str = OK) -> None:
        """Close an operation span, folding in its traffic window."""
        stack = self._active.get(span.node, [])
        for position, (candidate, window_cm, holder) in enumerate(stack):
            if candidate is span:
                del stack[position]
                window_cm.__exit__(None, None, None)
                stats = holder.stats
                span.messages_by_kind = dict(stats.messages_by_kind)
                span.message_bytes = stats.total_bytes
                span.batch_bundles = stats.batches
                span.batch_messages = stats.batched_messages
                break
        self.session.recorder.end(
            span, end=self.cluster.kernel.now, status=status
        )

    # -- metric contribution ---------------------------------------------------

    def contribute(
        self, totals: dict[str, float], seen_kernels: set[int]
    ) -> None:
        """Add this cluster's pull-style metric values into ``totals``.

        ``seen_kernels`` deduplicates kernels shared across clusters
        (reconfiguration runs two clusters on one timeline).
        """
        cluster = self.cluster
        kernel = cluster.kernel
        if id(kernel) not in seen_kernels:
            seen_kernels.add(id(kernel))
            # Live kernels (asyncio/udp backends) have no event counter,
            # dispatch heap, or timer pool — the loop owns those — so the
            # sim-only gauges contribute zero there.
            _add(
                totals,
                "kernel.events_dispatched",
                getattr(kernel, "events_processed", 0),
            )
            _add(totals, "kernel.queue_depth", len(getattr(kernel, "_heap", ())))
            _add(
                totals,
                "kernel.timer_pool_size",
                len(getattr(kernel, "_timer_pool", ())),
            )
            stats = kernel.obs
            if stats is not None:
                _add(totals, "kernel.batches", stats.batches)
                _add(totals, "kernel.batched_events", stats.batch_events)
                _add(totals, "kernel.timer_pool_hits", stats.timer_pool_hits)
                _add(totals, "kernel.timer_pool_misses", stats.timer_pool_misses)
                totals["kernel.largest_batch"] = max(
                    totals.get("kernel.largest_batch", 0), stats.largest_batch
                )
        snap = cluster.metrics.snapshot()
        _add(totals, "net.messages_total", snap.total_messages)
        _add(totals, "net.bytes_total", snap.total_bytes)
        for kind, count in snap.messages_by_kind.items():
            _add(totals, f"net.messages.{kind}", count)
        _add(totals, "net.dropped_loss", snap.dropped_loss)
        _add(totals, "net.dropped_capacity", snap.dropped_capacity)
        _add(totals, "net.duplicated", snap.duplicated)
        _add(totals, "net.batches", snap.batches)
        _add(totals, "net.batched_messages", snap.batched_messages)
        _add(totals, "net.in_flight", cluster.network.in_flight_total())
        _add(
            totals,
            "stabilization.gossip_rounds",
            sum(p.iterations_completed for p in cluster.processes),
        )
        _add(
            totals,
            "stabilization.corrupted_state_detections",
            sum(p.detections for p in self.process_obs),
        )
        _add(totals, "stabilization.ts_heals", sum(p.ts_heals for p in self.process_obs))
        _add(totals, "stabilization.sns_heals", sum(p.sns_heals for p in self.process_obs))
        _add(totals, "stabilization.vc_clears", sum(p.vc_clears for p in self.process_obs))
        _add(
            totals,
            "stabilization.task_repairs",
            sum(p.task_repairs for p in self.process_obs),
        )
        _add(
            totals,
            "stabilization.reset_invocations",
            sum(p.reset_invocations for p in self.process_obs),
        )
        _add(
            totals,
            "stabilization.resets_completed",
            sum(getattr(p, "resets_completed", 0) for p in cluster.processes),
        )
        _add(
            totals,
            "consensus.rounds",
            sum(p.consensus_rounds for p in self.process_obs),
        )
        _add(
            totals,
            "consensus.decides",
            sum(p.consensus_decides for p in self.process_obs),
        )
        _add(
            totals,
            "consensus.heals",
            sum(p.consensus_heals for p in self.process_obs),
        )
        _add(
            totals,
            "consensus.recycled",
            sum(p.consensus_recycled for p in self.process_obs),
        )
        _add(
            totals,
            "quorum.retransmits",
            sum(p.retransmits for p in self.process_obs),
        )


def _add(totals: dict[str, float], name: str, value: float) -> None:
    totals[name] = totals.get(name, 0) + value


class Observability:
    """One observability session: registry + span recorder + clusters."""

    def __init__(self, trace_messages: bool = True) -> None:
        self.registry = MetricsRegistry()
        self.recorder = SpanRecorder()
        self.clusters: list[ClusterObs] = []
        self._trace_messages = trace_messages
        # Aggregates absorbed from worker sessions (``--stats --jobs N``
        # ships each worker's portable snapshot back to the parent).
        self._absorbed_totals: dict[str, float] = {}
        self._absorbed_ops: dict[str, dict] = {}
        self._absorbed_blame: dict = {"attributed": 0, "nodes": {}}
        self._absorbed_health: list[list[dict]] = []

    def attach(self, cluster: "SimBackend") -> ClusterObs:
        """Observe a cluster (idempotent: re-attaching returns the existing)."""
        if cluster.obs is not None:
            return cluster.obs
        cobs = ClusterObs(
            self, cluster, len(self.clusters), trace_messages=self._trace_messages
        )
        self.clusters.append(cobs)
        cluster.obs = cobs
        return cobs

    def _totals(self) -> dict[str, float]:
        """Cluster-derived metric totals, live clusters plus absorbed."""
        totals: dict[str, float] = {}
        seen_kernels: set[int] = set()
        for cobs in self.clusters:
            cobs.contribute(totals, seen_kernels)
        for name, value in self._absorbed_totals.items():
            if name == "kernel.largest_batch":
                totals[name] = max(totals.get(name, 0), value)
            else:
                _add(totals, name, value)
        return totals

    @staticmethod
    def _empty_op_group() -> dict:
        return {
            "count": 0,
            "ok": 0,
            "aborted": 0,
            "open": 0,
            "retransmits": 0,
            "messages": 0,
            "duration_sum": 0.0,
            "duration_count": 0,
            "max_time": 0.0,
        }

    def op_aggregates(self) -> dict[str, dict]:
        """Per-operation-name aggregates, live spans plus absorbed workers."""
        groups: dict[str, dict] = {}
        for span in self.recorder.ops():
            group = groups.setdefault(span.name, self._empty_op_group())
            group["count"] += 1
            if span.status == OK:
                group["ok"] += 1
            elif span.status == ABORTED:
                group["aborted"] += 1
            if span.end is None:
                group["open"] += 1
            group["retransmits"] += span.retransmits
            group["messages"] += sum(span.messages_by_kind.values())
            duration = span.duration
            if duration is not None:
                group["duration_sum"] += duration
                group["duration_count"] += 1
                if duration > group["max_time"]:
                    group["max_time"] = duration
        for name, absorbed in self._absorbed_ops.items():
            group = groups.setdefault(name, self._empty_op_group())
            for key, value in absorbed.items():
                if key == "max_time":
                    group[key] = max(group[key], value)
                else:
                    group[key] += value
        return dict(sorted(groups.items()))

    def blame(self) -> dict:
        """The session's merged blame aggregate (live spans + absorbed)."""
        aggregate = blame_aggregate(self.recorder.spans)
        merge_blame(aggregate, self._absorbed_blame)
        return aggregate

    def health_reports(self) -> list[tuple[int, list[dict]]]:
        """``(cluster_index, node_health_dicts)`` for every observed cluster.

        Live clusters are sampled now; clusters absorbed from worker
        sessions follow, indexed after the live ones — in the serial
        case and the ``--jobs N`` case alike, cluster indices end up in
        cell order, so merged ``--stats`` output is deterministic.
        """
        reports: list[tuple[int, list[dict]]] = []
        for cobs in self.clusters:
            report = cobs.health.sample()
            reports.append(
                (cobs.index, [health.to_dict() for health in report.nodes])
            )
        offset = len(self.clusters)
        for position, nodes in enumerate(self._absorbed_health):
            reports.append((offset + position, nodes))
        return reports

    def collect(self) -> dict[str, Any]:
        """Pull every metric source and return ``{name: value}``.

        Cluster-derived values land in gauges (summed across clusters,
        except ``kernel.largest_batch`` which takes the max); values
        pushed directly into the registry (e.g. by E07/E08) pass through
        untouched.  Per-node health gauges (``health.<signal>.c<i>.n<j>``)
        are refreshed from the health monitors on every collect.
        """
        totals = self._totals()
        groups = self.op_aggregates()
        totals["ops.total"] = sum(g["count"] for g in groups.values())
        totals["ops.completed"] = sum(g["ok"] for g in groups.values())
        totals["ops.aborted"] = sum(g["aborted"] for g in groups.values())
        totals["ops.open"] = sum(g["open"] for g in groups.values())
        totals["ops.retransmits"] = sum(
            g["retransmits"] for g in groups.values()
        )
        for index, nodes in self.health_reports():
            for health in nodes:
                base = f"c{index}.n{health['node']}"
                totals[f"health.state.{base}"] = health["state_code"]
                totals[f"health.service_ewma.{base}"] = health["service_ewma"]
                totals[f"health.replies.{base}"] = health["replies"]
                totals[f"health.retransmit_rate.{base}"] = health[
                    "retransmit_rate"
                ]
                totals[f"health.queue_depth.{base}"] = health["queue_depth"]
                totals[f"health.detections.{base}"] = health["detections"]
        for name, value in totals.items():
            self.registry.gauge(name).set(value)
        return self.registry.collect()

    # -- parallel-worker merge (``--stats`` under ``--jobs N``) ----------------

    def portable(self) -> dict:
        """A picklable snapshot of this session's aggregates.

        Spans and message traces do **not** travel (they are why trace
        capture still forces serial execution); what does is everything
        ``--stats`` prints: metric totals, per-op aggregates, the blame
        aggregate, per-cluster health reports, and the registry state.
        Call :meth:`finish` first so open spans have durations.
        """
        # ``health.*`` gauge names embed this worker's *local* cluster
        # indices (a mid-run ``collect()`` — e.g. E07 reading detections —
        # writes them into the registry); the parent rebuilds them from
        # the ``health`` lists under its own merged indices, so shipping
        # the stale names would leave phantom rows behind.
        registry_state = {
            name: state
            for name, state in self.registry.state().items()
            if not name.startswith("health.")
        }
        return {
            "totals": self._totals(),
            "ops": self.op_aggregates(),
            "blame": self.blame(),
            "health": [nodes for _index, nodes in self.health_reports()],
            "registry": registry_state,
        }

    def absorb(self, portable: dict) -> None:
        """Fold one worker session's :meth:`portable` snapshot into this one.

        Callers merge snapshots in cell-index order; every combination
        rule here (sum / max / last-write via the registry) is
        order-insensitive except gauge last-write, so the merged result
        is deterministic for a fixed merge order.
        """
        for name, value in portable["totals"].items():
            if name == "kernel.largest_batch":
                self._absorbed_totals[name] = max(
                    self._absorbed_totals.get(name, 0), value
                )
            else:
                self._absorbed_totals[name] = (
                    self._absorbed_totals.get(name, 0) + value
                )
        for name, absorbed in portable["ops"].items():
            group = self._absorbed_ops.setdefault(name, self._empty_op_group())
            for key, value in absorbed.items():
                if key == "max_time":
                    group[key] = max(group[key], value)
                else:
                    group[key] += value
        merge_blame(self._absorbed_blame, portable["blame"])
        self._absorbed_health.extend(portable["health"])
        self.registry.merge_state(portable["registry"])

    def finish(self) -> None:
        """Close every still-open span at its cluster's current sim time.

        Open operation spans keep status ``"open"`` (they genuinely did
        not finish); run roots close ``"ok"``.
        """
        for cobs in self.clusters:
            now = cobs.cluster.kernel.now
            for stack in list(cobs._active.values()):
                for span, window_cm, _holder in list(stack):
                    window_cm.__exit__(None, None, None)
                    span.end = now
                stack.clear()
            for span in self.recorder.spans:
                if span.cluster == cobs.index and span.end is None:
                    span.end = now
            if cobs.root.status == "open":
                cobs.root.status = OK

    # -- exporter front doors (implementations in repro.obs.export) ------------

    def chrome_trace(self) -> dict:
        """The session as a Chrome ``trace_event`` JSON object."""
        from repro.obs.export import chrome_trace

        return chrome_trace(self)

    def jsonl(self) -> str:
        """The session as a JSON-lines event stream."""
        from repro.obs.export import jsonl

        return jsonl(self)

    def summary(self) -> str:
        """The session as a terminal summary (operations + metrics tables)."""
        from repro.obs.export import summary

        return summary(self)


#: Stack of ambient sessions; clusters constructed while one is installed
#: attach to the innermost.
_SESSIONS: list[Observability] = []


def current_session() -> Observability | None:
    """The innermost ambient session, or ``None``."""
    return _SESSIONS[-1] if _SESSIONS else None


@contextmanager
def session(obs: Observability | None = None) -> Iterator[Observability]:
    """Install an ambient session for the duration of the ``with`` block."""
    if obs is None:
        obs = Observability()
    _SESSIONS.append(obs)
    try:
        yield obs
    finally:
        _SESSIONS.pop()
