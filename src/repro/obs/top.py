"""``python -m repro top``: a live terminal health dashboard.

Drives a closed-loop workload against any backend and refreshes a
terminal frame while it runs: per-node health states (from the
:class:`~repro.obs.health.HealthMonitor`), the blame table (slowest
quorum responders, from :mod:`repro.obs.attribution`), and the active
alerts (from :class:`~repro.obs.alerts.AlertEngine`).  With
``--throttle NODE:FACTOR`` the dashboard doubles as a gray-failure
demo: the throttled node drifts to ``limping`` and tops the blame
table within a few refresh intervals.

Rendering is split so it stays testable: :func:`render_frame` is a pure
function of the session state (golden-testable, no terminal involved);
:func:`run_top` owns the workload, the refresh loop, and the screen.

On the ``sim`` backend the refresh interval is *simulated* time — the
whole run completes in milliseconds of wall clock and frames print as
the virtual clock passes each tick, fully deterministic for a seed.  On
the live backends (``asyncio``/``udp``) frames track the wall clock
through the kernel's ``time_scale``, and ``--metrics-port`` additionally
serves the registry as Prometheus text exposition
(:mod:`repro.obs.promtext`) for the duration of the run.
"""

from __future__ import annotations

import sys
from typing import Any

from repro.errors import ConfigurationError
from repro.obs.alerts import AlertEngine, default_rules
from repro.obs.attribution import blame_rows
from repro.obs.observe import Observability, session

__all__ = ["render_frame", "run_top", "parse_throttle"]

#: ANSI clear-screen + cursor-home, used between frames on a tty.
_CLEAR = "\x1b[2J\x1b[H"


def render_frame(
    obs: Observability,
    engine: AlertEngine | None = None,
    *,
    time: float = 0.0,
    backend: str = "",
) -> str:
    """Render one dashboard frame from the session's current state.

    Pure with respect to the terminal: samples the health monitors and
    blame aggregate, formats the tables, and returns the frame as a
    string (the caller decides how to display it).
    """
    from repro.harness.report import format_table

    values = obs.collect()
    header = (
        f"repro top — backend={backend or '?'} t={time:.2f} "
        f"ops={int(values.get('ops.completed', 0))}"
        f"/{int(values.get('ops.total', 0))} "
        f"msgs={int(values.get('net.messages_total', 0))} "
        f"retransmits={int(values.get('ops.retransmits', 0))}"
    )
    parts = [header, "=" * len(header)]
    health_rows = []
    for index, nodes in obs.health_reports():
        for health in nodes:
            health_rows.append(
                {
                    "cluster": index,
                    "node": health["node"],
                    "state": health["state"],
                    "service_ewma": health["service_ewma"],
                    "replies": health["replies"],
                    "retransmit_rate": health["retransmit_rate"],
                    "queue_depth": health["queue_depth"],
                    "detections": health["detections"],
                }
            )
    parts.append("")
    parts.append(format_table(health_rows, title="node health"))
    rows = blame_rows(obs.blame())
    if any(row["replies"] or row["blamed"] for row in rows):
        parts.append("")
        parts.append(
            format_table(rows, title="blame (slowest quorum responder)")
        )
    parts.append("")
    if engine is not None:
        active = engine.active()
        if active:
            parts.append("alerts:")
            for alert in active:
                parts.append(
                    f"  [{alert.severity.upper():8s}] {alert.rule} "
                    f"node={alert.node} — {alert.message}"
                )
        else:
            parts.append("alerts: (none)")
    return "\n".join(parts)


def parse_throttle(value: str) -> tuple[int, float]:
    """Parse one ``NODE:FACTOR`` throttle flag value."""
    try:
        node_str, factor_str = value.split(":")
        return int(node_str), float(factor_str)
    except ValueError:
        raise ConfigurationError(
            f"--throttle wants NODE:FACTOR (e.g. '3:12'), got {value!r}"
        ) from None


def run_top(args: list[str]) -> int:
    """The ``python -m repro top`` command body."""
    from repro.backend import backend_class, backend_names
    from repro.backend.base import run_on_backend
    from repro.config import scenario_config
    from repro.load.driver import LoadSpec, LoadGenerator

    backend = "sim"
    n, seed, algorithm = 5, 1, "ss-nonblocking"
    duration, refresh = 60.0, 10.0
    clients = 4
    throttles: list[tuple[int, float]] = []
    metrics_port: int | None = None
    plain = False
    it = iter(args)
    for arg in it:
        if arg == "--plain":
            plain = True
            continue
        if arg in ("--backend", "--n", "--seed", "--algorithm", "--budget",
                   "--refresh", "--clients", "--throttle", "--metrics-port"):
            value = next(it, None)
            if value is None:
                raise SystemExit(f"{arg} requires a value")
            if arg == "--backend":
                backend = value
            elif arg == "--n":
                n = int(value)
            elif arg == "--seed":
                seed = int(value)
            elif arg == "--algorithm":
                algorithm = value
            elif arg == "--budget":
                duration = float(value)
            elif arg == "--refresh":
                refresh = float(value)
            elif arg == "--clients":
                clients = int(value)
            elif arg == "--throttle":
                throttles.append(parse_throttle(value))
            else:
                metrics_port = int(value)
        else:
            raise SystemExit(f"top: unexpected argument {arg!r}")
    if backend not in backend_names():
        raise SystemExit(
            f"unknown backend {backend!r}; choose from {backend_names()}"
        )
    if refresh <= 0:
        raise SystemExit(f"--refresh must be positive, got {refresh}")
    simulated = backend_class(backend).capabilities.simulated_time
    if metrics_port is not None and simulated:
        raise SystemExit(
            "--metrics-port needs a live backend (asyncio or udp): the "
            "simulator has no event loop to serve scrapes from"
        )
    clear = sys.stdout.isatty() and not plain
    obs = Observability(trace_messages=False)
    engine = AlertEngine(default_rules())
    spec = LoadSpec(
        clients=clients, depth=2, duration=duration, seed=seed
    )

    async def body(cluster: Any) -> None:
        kernel = cluster.kernel
        for node_id, factor in throttles:
            cluster.throttle(node_id, factor)
        exposition = None
        if metrics_port is not None:
            from repro.obs.promtext import MetricsExposition, prometheus_text

            exposition = MetricsExposition(
                lambda: prometheus_text(obs.collect())
            )
            host, port = await exposition.start(port=metrics_port)
            print(f"serving metrics at http://{host}:{port}/metrics")
        generator = LoadGenerator(cluster, spec)
        workload = kernel.create_task(generator.run(), name="top-load")
        try:
            deadline = kernel.now + duration
            while kernel.now < deadline:
                await kernel.sleep(min(refresh, deadline - kernel.now))
                engine.evaluate_session(obs)
                frame = render_frame(
                    obs, engine, time=kernel.now, backend=backend
                )
                print((_CLEAR if clear else "") + frame, flush=True)
            await workload
        finally:
            if exposition is not None:
                await exposition.stop()
        engine.evaluate_session(obs)
        frame = render_frame(obs, engine, time=kernel.now, backend=backend)
        print((_CLEAR if clear else "") + frame, flush=True)

    with session(obs):
        run_on_backend(
            backend,
            algorithm,
            scenario_config(n=n, seed=seed),
            body,
            max_events=None,
        )
    raised = engine.history
    if raised:
        print()
        print(f"{len(raised)} alert(s) raised over the run:")
        for alert in raised:
            resolved = (
                f" (resolved t={alert.resolved_at:.2f})"
                if alert.resolved_at is not None
                else ""
            )
            print(
                f"  t={alert.time:.2f} [{alert.severity}] {alert.rule} "
                f"node={alert.node}{resolved}"
            )
    return 0
