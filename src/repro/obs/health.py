"""Gray-failure health scoring: healthy / limping / crashed / corrupt-suspect.

Quorum algorithms mask a slow node so well that nothing fails — ops
complete, invariants hold — while every operation's tail quietly absorbs
the straggler.  This module turns the passive signals the quorum layer
already records into an online *diagnosis*:

* :class:`NodeVitals` — per-node accumulators fed from the reply path
  (EWMA service time, reply counts, last-reply recency) plus sampled
  requester-side retransmit rates and queue depth;
* :class:`HealthMonitor` — a pull-style detector over one cluster's
  vitals that classifies each node at sample time.

Classification is deliberately *distinct* from the stabilization
layer's corruption gossip: ``corrupt-suspect`` fires **only** when the
node's self-stabilizing cleanup counters (``ProcessObs.detections``)
actually moved — evidence of repaired state — never from slowness.  A
slow node can only ever be ``limping``; a silent one ``crashed``.

Thresholds are relative (peer medians) and time-scale aware (multiples
of the cluster's retransmit interval), so the same detector works on
the simulated clock and on wall-clock backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.observe import ClusterObs

__all__ = [
    "HEALTHY",
    "LIMPING",
    "CRASHED",
    "CORRUPT_SUSPECT",
    "STATE_CODES",
    "NodeVitals",
    "NodeHealth",
    "HealthReport",
    "HealthMonitor",
]

#: Health states, ordered by severity.  ``STATE_CODES`` gives the gauge
#: encoding used by the registry / Prometheus exposition.
HEALTHY = "healthy"
LIMPING = "limping"
CRASHED = "crashed"
CORRUPT_SUSPECT = "corrupt-suspect"
STATE_CODES = {HEALTHY: 0, LIMPING: 1, CRASHED: 2, CORRUPT_SUSPECT: 3}


class NodeVitals:
    """Hot-path accumulators for one node (plain floats behind slots).

    ``record_reply`` is called from the requester's deliver path behind
    an ``obs is not None`` test; it does one EWMA update and two stores —
    no allocation, no RNG, no kernel events (determinism contract).
    Self-loopback replies are excluded by the caller: they measure the
    zero-cost loopback, not the node's service time.
    """

    __slots__ = ("node_id", "service_ewma", "replies", "last_reply")

    #: EWMA smoothing: each new sample contributes 20%.
    ALPHA = 0.2

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.service_ewma: float | None = None
        self.replies = 0
        self.last_reply: float | None = None

    def record_reply(self, latency: float, now: float) -> None:
        """Fold one request→reply latency observed towards this node."""
        if self.service_ewma is None:
            self.service_ewma = latency
        else:
            self.service_ewma += self.ALPHA * (latency - self.service_ewma)
        self.replies += 1
        self.last_reply = now


@dataclass(slots=True)
class NodeHealth:
    """One node's classification and the signals that produced it."""

    node: int
    state: str
    service_ewma: float
    replies: int
    #: Time since the node's last observed reply (``inf`` if never).
    silence: float
    #: Requester-side retransmits per time unit since the last sample.
    retransmit_rate: float
    #: Operations currently open on the node.
    queue_depth: int
    #: Total corrupted-state detections (stabilization heal counters).
    detections: int

    def to_dict(self) -> dict:
        """A JSON-ready view (``silence`` maps ``inf`` to ``None``)."""
        return {
            "node": self.node,
            "state": self.state,
            "state_code": STATE_CODES[self.state],
            "service_ewma": self.service_ewma,
            "replies": self.replies,
            "silence": self.silence if self.silence != float("inf") else None,
            "retransmit_rate": self.retransmit_rate,
            "queue_depth": self.queue_depth,
            "detections": self.detections,
        }


@dataclass(slots=True)
class HealthReport:
    """One monitor sample: per-node classifications at a point in time."""

    time: float
    nodes: list[NodeHealth] = field(default_factory=list)

    def state_of(self, node: int) -> str:
        """The classified state of ``node`` in this sample."""
        return self.nodes[node].state

    def in_state(self, state: str) -> list[int]:
        """Node ids currently classified as ``state``, sorted."""
        return [h.node for h in self.nodes if h.state == state]

    def to_dict(self) -> dict:
        """A JSON-ready view of the whole sample."""
        return {
            "time": self.time,
            "nodes": [h.to_dict() for h in self.nodes],
        }


class HealthMonitor:
    """Classifies every node of one cluster from its recorded vitals.

    Pull-style: :meth:`sample` reads the vitals and per-process counters
    accumulated since the previous sample and returns a
    :class:`HealthReport`; nothing runs between samples, so the
    simulation hot path pays zero for an attached monitor.
    """

    #: A node is limping when its EWMA service time exceeds this factor
    #: times the median of its peers' (given ``MIN_SAMPLES`` replies).
    LIMP_FACTOR = 3.0
    #: Replies needed before a node's EWMA is trusted for classification.
    MIN_SAMPLES = 3
    #: A node is crashed when it has been silent this many times longer
    #: than the median peer *and* longer than the absolute floor below.
    CRASH_FACTOR = 5.0
    #: Absolute silence floor, in multiples of the retransmit interval
    #: (prevents flapping before traffic ramps up).
    SILENCE_FLOOR_INTERVALS = 4.0
    #: How long a corruption detection keeps a node corrupt-suspect, in
    #: multiples of the gossip interval.
    SUSPECT_WINDOW_INTERVALS = 10.0

    def __init__(self, cobs: "ClusterObs") -> None:
        self._cobs = cobs
        config = cobs.cluster.config
        self._silence_floor = self.SILENCE_FLOOR_INTERVALS * config.retransmit_interval
        self._suspect_window = self.SUSPECT_WINDOW_INTERVALS * config.gossip_interval
        n = config.n
        self._last_detections = [0] * n
        self._last_retransmits = [0] * n
        self._last_sample_time: float | None = None
        self._last_report: HealthReport | None = None
        #: Last time each node's detection counters moved (-inf = never).
        self._last_detection_bump = [float("-inf")] * n

    def sample(self, now: float | None = None) -> HealthReport:
        """Classify every node at time ``now`` (default: the kernel clock).

        Idempotent per timestamp: re-sampling at the same clock reading
        returns the cached report, so a dashboard tick that evaluates
        alerts *and* renders a frame reads one consistent classification
        (and rate-style deltas are not zeroed by the second read).
        """
        cobs = self._cobs
        if now is None:
            now = cobs.cluster.kernel.now
        if now == self._last_sample_time and self._last_report is not None:
            return self._last_report
        elapsed = (
            now - self._last_sample_time
            if self._last_sample_time is not None
            else now
        )
        vitals = cobs.vitals
        silences = [
            (now - v.last_reply) if v.last_reply is not None else float("inf")
            for v in vitals
        ]
        report = HealthReport(time=now)
        for pobs, v in zip(cobs.process_obs, vitals):
            node = v.node_id
            detections = pobs.detections
            if detections > self._last_detections[node]:
                self._last_detection_bump[node] = now
            self._last_detections[node] = detections
            retransmit_delta = pobs.retransmits - self._last_retransmits[node]
            self._last_retransmits[node] = pobs.retransmits
            peer_silences = [s for i, s in enumerate(silences) if i != node]
            peer_ewmas = [
                w.service_ewma
                for w in vitals
                if w.node_id != node
                and w.service_ewma is not None
                and w.replies >= self.MIN_SAMPLES
            ]
            state = HEALTHY
            silence = silences[node]
            finite_peers = [s for s in peer_silences if s != float("inf")]
            # A node that has *never* replied gets a longer absolute grace
            # (CRASH_FACTOR × the silence floor) before being declared
            # crashed: a heavily throttled node's first replies arrive
            # late, and flagging it crashed before they can would
            # misclassify a limper during ramp-up.
            never_replied = silence == float("inf")
            if finite_peers and (
                (
                    never_replied
                    and now > self.CRASH_FACTOR * self._silence_floor
                )
                or (
                    not never_replied
                    and silence > self._silence_floor
                    and silence
                    > self.CRASH_FACTOR * max(median(finite_peers), 1e-12)
                )
            ):
                state = CRASHED
            elif now - self._last_detection_bump[node] <= self._suspect_window:
                state = CORRUPT_SUSPECT
            elif (
                peer_ewmas
                and v.replies >= self.MIN_SAMPLES
                and v.service_ewma is not None
                and v.service_ewma
                > self.LIMP_FACTOR * max(median(peer_ewmas), 1e-12)
            ):
                state = LIMPING
            report.nodes.append(
                NodeHealth(
                    node=node,
                    state=state,
                    service_ewma=v.service_ewma or 0.0,
                    replies=v.replies,
                    silence=silence,
                    retransmit_rate=(
                        retransmit_delta / elapsed if elapsed > 0 else 0.0
                    ),
                    queue_depth=len(cobs._active.get(node, ())),
                    detections=detections,
                )
            )
        self._last_sample_time = now
        self._last_report = report
        return report
