"""A lightweight metric registry: counters, gauges, and histograms.

The registry is the sink for everything the observability layer measures
— kernel dispatch statistics, network depth/drops, stabilization heal
counters — plus anything experiment code wants to publish itself (E07/E08
push ``stabilization.recovery_cycles`` here).  Instruments are created on
first use and addressed by dotted names (``kernel.events_dispatched``,
``net.dropped_loss``, …; the full catalog is in ``docs/observability.md``).

Design constraints, inherited from the determinism contract:

* instruments are plain Python numbers behind ``__slots__`` — updating
  one never allocates per-update, draws RNG, or schedules kernel events;
* pull-style values (queue depth, in-flight packets) are produced by
  *collector* callbacks run only at :meth:`MetricsRegistry.collect`
  time, so the simulation hot path pays nothing for them.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "QuantileHistogram",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        return self._value

    def state(self) -> dict[str, Any]:
        """A portable snapshot of this instrument (see ``MetricsRegistry.state``)."""
        return {"type": "counter", "value": self._value}

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold a portable snapshot into this counter (counts sum)."""
        self._value += state["value"]


class Gauge:
    """A value that can go up and down (depth, cycles, last-seen)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self._value = value

    @property
    def value(self) -> float:
        """The most recently set value."""
        return self._value

    def state(self) -> dict[str, Any]:
        """A portable snapshot of this instrument (see ``MetricsRegistry.state``)."""
        return {"type": "gauge", "value": self._value}

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold a portable snapshot into this gauge (last write wins)."""
        self._value = state["value"]


class Histogram:
    """A streaming summary: count, sum, min, max (no buckets, no lists).

    Exposed as a dict (``{"count", "sum", "min", "max", "mean"}``) so the
    exporters can serialize it without a schema of their own.
    """

    __slots__ = ("name", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str) -> None:
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        if self._count == 0:
            self._min = self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        self._count += 1
        self._sum += value

    @property
    def value(self) -> dict[str, float]:
        """The summary statistics of the samples observed so far."""
        count = self._count
        return {
            "count": count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self._sum / count if count else 0.0,
        }

    def state(self) -> dict[str, Any]:
        """A portable snapshot of this instrument (see ``MetricsRegistry.state``)."""
        return {
            "type": "histogram",
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
        }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold a portable snapshot into this histogram (summaries combine)."""
        if state["count"] == 0:
            return
        if self._count == 0:
            self._min = state["min"]
            self._max = state["max"]
        else:
            self._min = min(self._min, state["min"])
            self._max = max(self._max, state["max"])
        self._count += state["count"]
        self._sum += state["sum"]


class QuantileHistogram:
    """A log-bucketed histogram with quantile estimates (p50/p95/p99).

    The load driver needs tail latencies, which the streaming
    :class:`Histogram` cannot provide (it keeps no distribution).  This
    instrument buckets samples geometrically (±2.5% relative error per
    bucket at the default growth factor), so memory stays bounded and —
    like every registry instrument — recording never draws RNG or
    schedules kernel events, preserving the determinism contract.

    ``value`` extends the plain histogram's summary with ``p50``, ``p95``
    and ``p99``, so the exporters serialize it with no schema changes.
    """

    __slots__ = ("name", "_growth", "_buckets", "_count", "_sum", "_min", "_max")

    #: Relative bucket width: consecutive bucket boundaries differ by 5%.
    GROWTH = 1.05

    def __init__(self, name: str) -> None:
        self.name = name
        self._growth = math.log(self.GROWTH)
        self._buckets: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        """Record one sample (negative samples clamp to zero)."""
        if value < 0.0:
            value = 0.0
        if self._count == 0:
            self._min = self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        self._count += 1
        self._sum += value
        index = 0 if value < 1e-9 else int(math.log(value) / self._growth) + 1
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) of the samples.

        Edge cases are exact, never ``NaN``: an empty histogram reports
        ``0.0``, a single observation is returned verbatim, ``q=0`` is the
        observed minimum and ``q=1`` the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        if self._count == 1 or q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        rank = max(1, math.ceil(q * self._count))
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                if index == 0:
                    return max(self._min, 0.0)
                # Geometric midpoint of the bucket, clamped to the
                # observed range so estimates never leave [min, max].
                mid = math.exp((index - 0.5) * self._growth)
                return min(max(mid, self._min), self._max)
        return self._max  # pragma: no cover - rank <= count always hits

    @property
    def count(self) -> int:
        """Number of samples observed so far."""
        return self._count

    @property
    def value(self) -> dict[str, float]:
        """Summary statistics plus the three standard tail quantiles."""
        count = self._count
        return {
            "count": count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self._sum / count if count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def state(self) -> dict[str, Any]:
        """A portable snapshot of this instrument (see ``MetricsRegistry.state``).

        Buckets serialize as sorted ``[index, count]`` pairs so the
        snapshot is JSON- and pickle-safe and merge order is fixed.
        """
        return {
            "type": "quantile_histogram",
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "buckets": [[i, self._buckets[i]] for i in sorted(self._buckets)],
        }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold a portable snapshot into this histogram (buckets merge)."""
        if state["count"] == 0:
            return
        if self._count == 0:
            self._min = state["min"]
            self._max = state["max"]
        else:
            self._min = min(self._min, state["min"])
            self._max = max(self._max, state["max"])
        self._count += state["count"]
        self._sum += state["sum"]
        for index, count in state["buckets"]:
            self._buckets[index] = self._buckets.get(index, 0) + count


class MetricsRegistry:
    """Named instruments plus pull-style collector callbacks.

    ``counter``/``gauge``/``histogram``/``quantile_histogram`` are
    get-or-create: asking for the same name twice returns the same
    instrument; asking for it with a different instrument type raises
    :class:`ObservabilityError`.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    def _get_or_create(self, name: str, cls: type) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif type(instrument) is not cls:
            raise ObservabilityError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, requested {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(name, Histogram)

    def quantile_histogram(self, name: str) -> QuantileHistogram:
        """Get or create the quantile histogram ``name``."""
        return self._get_or_create(name, QuantileHistogram)

    def add_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Register a callback run at :meth:`collect` time.

        Collectors sample current system state (queue depth, in-flight
        packets) into gauges — the pull half of the registry, costing the
        hot path nothing.
        """
        self._collectors.append(collector)

    def collect(self) -> dict[str, Any]:
        """Run every collector, then snapshot all instruments by name."""
        for collector in self._collectors:
            collector(self)
        return {
            name: instrument.value
            for name, instrument in sorted(self._instruments.items())
        }

    #: Snapshot ``type`` tag -> instrument class, for :meth:`merge_state`.
    _STATE_TYPES: dict[str, type] = {
        "counter": Counter,
        "gauge": Gauge,
        "histogram": Histogram,
        "quantile_histogram": QuantileHistogram,
    }

    def state(self) -> dict[str, dict[str, Any]]:
        """A portable, mergeable snapshot of every instrument.

        The snapshot is plain dicts/lists (pickle- and JSON-safe), keyed
        by instrument name, each entry carrying a ``type`` tag.  Feed it
        to another registry's :meth:`merge_state` to combine runs — this
        is how ``--stats`` survives ``--jobs N`` (worker registries merge
        into the parent's).  Collectors are *not* run; call
        :meth:`collect` first if pull-style gauges should be included.
        """
        return {
            name: self._instruments[name].state()
            for name in sorted(self._instruments)
        }

    def merge_state(self, state: dict[str, dict[str, Any]]) -> None:
        """Fold a :meth:`state` snapshot into this registry.

        Counters sum, gauges take the incoming value (last write wins),
        histograms merge their summaries/buckets.  Entries are applied in
        sorted-name order so repeated merges are deterministic; merging a
        snapshot into an instrument of a different type raises
        :class:`ObservabilityError`.
        """
        for name in sorted(state):
            entry = state[name]
            cls = self._STATE_TYPES.get(entry["type"])
            if cls is None:
                raise ObservabilityError(
                    f"metric {name!r}: unknown snapshot type {entry['type']!r}"
                )
            self._get_or_create(name, cls).merge_state(entry)

    def value(self, name: str) -> Any:
        """Read one instrument's current value (no collector pass)."""
        try:
            return self._instruments[name].value
        except KeyError:
            raise ObservabilityError(f"no metric named {name!r}") from None

    def names(self) -> list[str]:
        """The names of all instruments created so far, sorted."""
        return sorted(self._instruments)
