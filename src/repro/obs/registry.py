"""A lightweight metric registry: counters, gauges, and histograms.

The registry is the sink for everything the observability layer measures
— kernel dispatch statistics, network depth/drops, stabilization heal
counters — plus anything experiment code wants to publish itself (E07/E08
push ``stabilization.recovery_cycles`` here).  Instruments are created on
first use and addressed by dotted names (``kernel.events_dispatched``,
``net.dropped_loss``, …; the full catalog is in ``docs/observability.md``).

Design constraints, inherited from the determinism contract:

* instruments are plain Python numbers behind ``__slots__`` — updating
  one never allocates per-update, draws RNG, or schedules kernel events;
* pull-style values (queue depth, in-flight packets) are produced by
  *collector* callbacks run only at :meth:`MetricsRegistry.collect`
  time, so the simulation hot path pays nothing for them.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ObservabilityError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        return self._value


class Gauge:
    """A value that can go up and down (depth, cycles, last-seen)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self._value = value

    @property
    def value(self) -> float:
        """The most recently set value."""
        return self._value


class Histogram:
    """A streaming summary: count, sum, min, max (no buckets, no lists).

    Exposed as a dict (``{"count", "sum", "min", "max", "mean"}``) so the
    exporters can serialize it without a schema of their own.
    """

    __slots__ = ("name", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str) -> None:
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        if self._count == 0:
            self._min = self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        self._count += 1
        self._sum += value

    @property
    def value(self) -> dict[str, float]:
        """The summary statistics of the samples observed so far."""
        count = self._count
        return {
            "count": count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self._sum / count if count else 0.0,
        }


class MetricsRegistry:
    """Named instruments plus pull-style collector callbacks.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for the
    same name twice returns the same instrument; asking for it with a
    different instrument type raises :class:`ObservabilityError`.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    def _get_or_create(self, name: str, cls: type) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif type(instrument) is not cls:
            raise ObservabilityError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, requested {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(name, Histogram)

    def add_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Register a callback run at :meth:`collect` time.

        Collectors sample current system state (queue depth, in-flight
        packets) into gauges — the pull half of the registry, costing the
        hot path nothing.
        """
        self._collectors.append(collector)

    def collect(self) -> dict[str, Any]:
        """Run every collector, then snapshot all instruments by name."""
        for collector in self._collectors:
            collector(self)
        return {
            name: instrument.value
            for name, instrument in sorted(self._instruments.items())
        }

    def value(self, name: str) -> Any:
        """Read one instrument's current value (no collector pass)."""
        try:
            return self._instruments[name].value
        except KeyError:
            raise ObservabilityError(f"no metric named {name!r}") from None

    def names(self) -> list[str]:
        """The names of all instruments created so far, sorted."""
        return sorted(self._instruments)
