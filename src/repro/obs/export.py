"""Exporters: Chrome ``trace_event`` JSON, JSONL stream, terminal summary.

Chrome trace layout (loadable in Perfetto or ``about://tracing``):

* one *process* per attached cluster (pid = cluster index), one *thread*
  per node (tid = node id) plus a ``run`` track (tid = n) for the
  run-level root span;
* operation spans are complete slices (``ph: "X"``), phase transitions
  are thread-scoped instants (``ph: "i"``);
* every network send/deliver is a small slice on its node's track, and
  matched send/deliver pairs are joined by flow arrows (``ph: "s"`` /
  ``ph: "f"``).  Pairs are matched FIFO per ``(src, dst, kind)`` — exact
  for per-kind-FIFO channels, approximate under reordering; duplicated
  deliveries render as slices without an arrow, lost sends leave an
  unterminated flow start (both harmless to the viewers).

Timescale: 1 simulated time unit is rendered as 1 ms (``ts`` is in
microseconds, so ``ts = time * 1000``).
"""

from __future__ import annotations

import json
from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.observe import Observability

__all__ = ["chrome_trace", "jsonl", "summary"]

#: Simulated time units -> trace microseconds (1 unit = 1 ms).
TIME_SCALE = 1000.0
#: Width of the send/deliver marker slices, in microseconds.
MSG_SLICE_US = 40.0


def chrome_trace(obs: "Observability") -> dict:
    """Build the session's Chrome ``trace_event`` JSON object."""
    events: list[dict] = []
    flow_id = 0
    for cobs in obs.clusters:
        pid = cobs.index
        cluster = cobs.cluster
        n = cluster.config.n
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {
                    "name": (
                        f"{cobs.label or f'cluster{pid}'} "
                        f"({cluster.algorithm_name})"
                    )
                },
            }
        )
        for tid in range(n):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"p{tid}"},
                }
            )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": n,
                "args": {"name": "run"},
            }
        )
        if cobs.trace is None:
            continue
        pending: dict[tuple[int, int, str], deque[int]] = {}
        for event in cobs.trace.events:
            ts = event.time * TIME_SCALE
            if event.event == "send":
                flow_id += 1
                pending.setdefault(
                    (event.src, event.dst, event.kind), deque()
                ).append(flow_id)
                events.append(
                    {
                        "name": event.kind,
                        "cat": "msg",
                        "ph": "X",
                        "ts": ts,
                        "dur": MSG_SLICE_US,
                        "pid": pid,
                        "tid": event.src,
                        "args": {"dst": event.dst},
                    }
                )
                events.append(
                    {
                        "name": event.kind,
                        "cat": "msg-flow",
                        "ph": "s",
                        "ts": ts,
                        "pid": pid,
                        "tid": event.src,
                        "id": flow_id,
                    }
                )
            elif event.event == "deliver":
                events.append(
                    {
                        "name": event.kind,
                        "cat": "msg",
                        "ph": "X",
                        "ts": ts,
                        "dur": MSG_SLICE_US,
                        "pid": pid,
                        "tid": event.dst,
                        "args": {"src": event.src},
                    }
                )
                queue = pending.get((event.src, event.dst, event.kind))
                if queue:
                    events.append(
                        {
                            "name": event.kind,
                            "cat": "msg-flow",
                            "ph": "f",
                            "bp": "e",
                            "ts": ts,
                            "pid": pid,
                            "tid": event.dst,
                            "id": queue.popleft(),
                        }
                    )
            else:  # a caller-inserted mark
                events.append(
                    {
                        "name": event.kind,
                        "cat": "mark",
                        "ph": "i",
                        "s": "t",
                        "ts": ts,
                        "pid": pid,
                        "tid": event.src,
                    }
                )
    from repro.obs.attribution import attribute_op

    for span in obs.recorder.spans:
        cobs = obs.clusters[span.cluster]
        tid = span.node if span.node is not None else cobs.cluster.config.n
        end = span.end if span.end is not None else cobs.cluster.kernel.now
        args = {
            "op_id": span.op_id,
            "status": span.status,
            "retransmits": span.retransmits,
            "messages_by_kind": dict(span.messages_by_kind),
            "message_bytes": span.message_bytes,
        }
        if span.batch_bundles:
            args["batching"] = {
                "bundles": span.batch_bundles,
                "messages": span.batch_messages,
            }
        if span.rounds:
            record = attribute_op(span)
            if record is not None:
                args["attribution"] = {
                    "slowest_responder": record.slowest_responder,
                    "slowest_latency": record.slowest_latency,
                    "completer": record.completer,
                    "dominant_phase": record.dominant_phase,
                    "rounds": record.rounds,
                }
        events.append(
            {
                "name": span.name,
                "cat": "op" if span.parent_id is not None else "run",
                "ph": "X",
                "ts": span.start * TIME_SCALE,
                "dur": max((end - span.start) * TIME_SCALE, 1.0),
                "pid": span.cluster,
                "tid": tid,
                "args": args,
            }
        )
        for time, label in span.phases:
            events.append(
                {
                    "name": label,
                    "cat": "phase",
                    "ph": "i",
                    "s": "t",
                    "ts": time * TIME_SCALE,
                    "pid": span.cluster,
                    "tid": tid,
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "time_scale": "1 simulated unit = 1 ms",
            "clusters": [
                {
                    "index": cobs.index,
                    **({"label": cobs.label} if cobs.label else {}),
                    "algorithm": cobs.cluster.algorithm_name,
                    "n": cobs.cluster.config.n,
                }
                for cobs in obs.clusters
            ],
            "health": [
                {"cluster": index, "nodes": nodes}
                for index, nodes in obs.health_reports()
            ],
        },
    }


def jsonl(obs: "Observability") -> str:
    """The session as newline-delimited JSON (one event object per line)."""
    lines = [
        json.dumps(
            {
                "type": "session",
                "clusters": [
                    {
                        "index": cobs.index,
                        **({"label": cobs.label} if cobs.label else {}),
                        "algorithm": cobs.cluster.algorithm_name,
                        "n": cobs.cluster.config.n,
                    }
                    for cobs in obs.clusters
                ],
            }
        )
    ]
    for span in obs.recorder.spans:
        lines.append(json.dumps({"type": "span", **span.to_dict()}))
    for cobs in obs.clusters:
        if cobs.trace is None:
            continue
        for event in cobs.trace.events:
            lines.append(
                json.dumps(
                    {
                        "type": "message",
                        "cluster": cobs.index,
                        "event": event.event,
                        "time": event.time,
                        "src": event.src,
                        "dst": event.dst,
                        "kind": event.kind,
                    }
                )
            )
    for index, nodes in obs.health_reports():
        lines.append(
            json.dumps({"type": "health", "cluster": index, "nodes": nodes})
        )
    for name, value in obs.collect().items():
        lines.append(json.dumps({"type": "metric", "name": name, "value": value}))
    return "\n".join(lines) + "\n"


def summary(obs: "Observability") -> str:
    """Terminal tables: per-operation statistics plus the metric registry."""
    from repro.harness.report import format_table

    from repro.obs.attribution import blame_rows

    parts = []
    groups = obs.op_aggregates()
    if groups:
        rows = []
        for name, group in groups.items():
            counted = group["duration_count"]
            rows.append(
                {
                    "op": name,
                    "count": group["count"],
                    "ok": group["ok"],
                    "aborted": group["aborted"],
                    "mean_time": (
                        group["duration_sum"] / counted if counted else None
                    ),
                    "max_time": group["max_time"] if counted else None,
                    "retransmits": group["retransmits"],
                    "messages": group["messages"],
                }
            )
        parts.append(format_table(rows, title="operations"))
    blame = blame_rows(obs.blame())
    if any(row["replies"] or row["blamed"] for row in blame):
        parts.append(
            format_table(blame, title="blame (slowest quorum responder)")
        )
    values = obs.collect()
    scalar_rows = [
        {"metric": name, "value": value}
        for name, value in values.items()
        if not isinstance(value, dict)
    ]
    if scalar_rows:
        parts.append(format_table(scalar_rows, title="metrics"))
    histogram_lines = [
        f"{name}: {value}"
        for name, value in values.items()
        if isinstance(value, dict)
    ]
    if histogram_lines:
        parts.append("histograms\n==========\n" + "\n".join(histogram_lines))
    return "\n\n".join(parts) if parts else "(no observability data)"
